"""E19: single-link-failure sweeps — FRR-on vs FRR-off loss curves.

For every switch-switch link of a fabric, the sweep scripts one failure
window (``[fail_epoch, fail_epoch + down_epochs)`` in scheduler epochs),
drives continuous flows across the link from both directions, and runs
the identical schedule twice: once with the backup next-hop column
installed (``frr=True``) and once without.  The per-link outcome pair —
``packets_lost`` and ``time_to_recover`` — is the paper-shaped result:
with FRR the switch adjacent to the cut falls over to its precomputed
backup inside the packet walk (losing at most the in-flight packets on
the failed hop — zero in this transaction-level model), while without
it every packet of every crossing flow blackholes until the link heals.

Flow selection is deterministic: crossing host pairs are computed from
the pinned BFS forwarding paths, restricted to pairs whose rerouting
switch actually has a loop-free backup for the destination (the
``protected`` set — coverage is reported honestly per link), and capped
per link with both crossing directions represented.  Links that carry
no pinned traffic (common in a fat-tree, where BFS tie-breaking leaves
equal-cost links idle) are reported with ``swept_pairs == 0`` and no
runs.

Everything folds into a :class:`SweepReport` whose fingerprint covers
only order-independent observables — including each underlying
:class:`~repro.fabric.scheduler.FabricReport` fingerprint — so the same
``(topology, seed, window)`` sweep is byte-identical across reruns and
shard counts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Optional, Union

from repro.fabric.scheduler import FLAP_EPOCH_TICKS, LinkSchedule
from repro.fabric.shard import run_sharded
from repro.fabric.topo import FabricSpec, FabricTopology, get_topology
from repro.fabric.workload import Flow, WorkloadSpec
from repro.frr.backup import _bfs, compute_backups

#: Frame size used by sweep flows (mid-sized UDP, nothing special).
SWEEP_FRAME_SIZE = 256


@dataclass(frozen=True)
class LinkResult:
    """One swept link's FRR-on / FRR-off outcome pair."""

    link: str  #: ``"a:pa~b:pb"`` — the cut cable
    crossing_pairs: int  #: ordered host pairs whose pinned path crosses it
    protected_pairs: int  #: crossing pairs whose rerouting switch has a backup
    swept_pairs: int  #: pairs actually carried as flows (capped)
    attempted: int = 0
    lost_frr_on: int = 0
    lost_frr_off: int = 0
    recover_epochs_frr_on: int = 0  #: epochs from failure to last loss
    recover_epochs_frr_off: int = 0
    reroutes: int = 0  #: total frr_reroute decisions in the on run
    loss_curve_on: tuple = ()  #: ((epoch, packets_lost), ...)
    loss_curve_off: tuple = ()
    fingerprint_on: str = ""
    fingerprint_off: str = ""
    #: Device-side blackhole counters (``frr_blackhole`` decisions), the
    #: ground truth the receiver-attributed numbers are checked against.
    blackholed_frr_on: int = 0
    blackholed_frr_off: int = 0
    #: Receiver-side (INT) attribution: reroutes seen in delivered
    #: stamps, blackholes inferred from sequence gaps, the failed links
    #: named by rerouting stamps' dead-port masks, and the
    #: receiver-observed loss curves per epoch.
    int_reroutes: int = 0
    int_blackholes_on: int = 0
    int_blackholes_off: int = 0
    int_failed_links: tuple = ()
    int_loss_curve_on: tuple = ()
    int_loss_curve_off: tuple = ()

    def as_dict(self) -> dict:
        return {
            "link": self.link,
            "crossing_pairs": self.crossing_pairs,
            "protected_pairs": self.protected_pairs,
            "swept_pairs": self.swept_pairs,
            "attempted": self.attempted,
            "lost_frr_on": self.lost_frr_on,
            "lost_frr_off": self.lost_frr_off,
            "recover_epochs_frr_on": self.recover_epochs_frr_on,
            "recover_epochs_frr_off": self.recover_epochs_frr_off,
            "reroutes": self.reroutes,
            "loss_curve_on": [list(p) for p in self.loss_curve_on],
            "loss_curve_off": [list(p) for p in self.loss_curve_off],
            "fingerprint_on": self.fingerprint_on,
            "fingerprint_off": self.fingerprint_off,
            "blackholed_frr_on": self.blackholed_frr_on,
            "blackholed_frr_off": self.blackholed_frr_off,
            "int_reroutes": self.int_reroutes,
            "int_blackholes_on": self.int_blackholes_on,
            "int_blackholes_off": self.int_blackholes_off,
            "int_failed_links": list(self.int_failed_links),
            "int_loss_curve_on": [list(p) for p in self.int_loss_curve_on],
            "int_loss_curve_off": [list(p) for p in self.int_loss_curve_off],
        }


@dataclass
class SweepReport:
    """The outcome of one single-link-failure sweep (E19)."""

    topology: str
    seed: int
    fail_epoch: int
    down_epochs: int
    epochs: int
    pairs_per_link: int
    packets_per_epoch: int
    max_links: Optional[int] = None
    shards: int = 1
    elapsed_s: float = 0.0
    links: list[LinkResult] = field(default_factory=list)
    #: Whether sweep flows carried INT trailers (receiver attribution).
    int_enabled: bool = True

    # -- aggregates ----------------------------------------------------
    def swept(self) -> list[LinkResult]:
        """The links that actually carried sweep flows."""
        return [link for link in self.links if link.swept_pairs]

    @property
    def packets_lost_frr_on(self) -> int:
        return sum(link.lost_frr_on for link in self.links)

    @property
    def packets_lost_frr_off(self) -> int:
        return sum(link.lost_frr_off for link in self.links)

    @property
    def reroutes(self) -> int:
        return sum(link.reroutes for link in self.links)

    def healthy(self) -> bool:
        """The FRR claim, link by link: on every link that carries
        traffic, FRR loses strictly fewer packets than no-FRR and
        recovers within one scheduler epoch — and the receiver-side INT
        attribution agrees exactly with the device counters."""
        swept = self.swept()
        return bool(swept) and all(
            link.lost_frr_on < link.lost_frr_off
            and link.recover_epochs_frr_on <= 1
            for link in swept
        ) and self.int_consistent()

    def int_consistent(self) -> bool:
        """Receiver-attributed numbers == device-counter numbers.

        Per swept link: stamps' reroute count equals the ``frr_reroute``
        decision total, sequence-gap blackholes equal the
        ``frr_blackhole`` decision totals (both runs), and the
        receiver-observed loss curves match the scheduler's epoch
        ledger.  Trivially True when the sweep ran without INT.
        """
        if not self.int_enabled:
            return True
        return all(
            link.int_reroutes == link.reroutes
            and link.int_blackholes_on == link.blackholed_frr_on
            and link.int_blackholes_off == link.blackholed_frr_off
            and link.int_loss_curve_on == link.loss_curve_on
            and link.int_loss_curve_off == link.loss_curve_off
            for link in self.swept()
        )

    # -- the determinism contract --------------------------------------
    def signature(self) -> dict:
        return {
            "topology": self.topology,
            "seed": self.seed,
            "fail_epoch": self.fail_epoch,
            "down_epochs": self.down_epochs,
            "epochs": self.epochs,
            "pairs_per_link": self.pairs_per_link,
            "packets_per_epoch": self.packets_per_epoch,
            "max_links": self.max_links,
            "int_enabled": self.int_enabled,
            "links": [link.as_dict()
                      for link in sorted(self.links, key=lambda l: l.link)],
        }

    def fingerprint(self) -> str:
        canon = json.dumps(self.signature(), sort_keys=True,
                           separators=(",", ":"))
        return sha256(canon.encode()).hexdigest()

    def as_dict(self, per_link: bool = False) -> dict:
        out = {
            "topology": self.topology,
            "seed": self.seed,
            "fail_epoch": self.fail_epoch,
            "down_epochs": self.down_epochs,
            "epochs": self.epochs,
            "pairs_per_link": self.pairs_per_link,
            "packets_per_epoch": self.packets_per_epoch,
            "max_links": self.max_links,
            "shards": self.shards,
            "elapsed_s": round(self.elapsed_s, 6),
            "links_total": len(self.links),
            "links_swept": len(self.swept()),
            "packets_lost_frr_on": self.packets_lost_frr_on,
            "packets_lost_frr_off": self.packets_lost_frr_off,
            "reroutes": self.reroutes,
            "int_enabled": self.int_enabled,
            "int_consistent": self.int_consistent(),
            "healthy": self.healthy(),
            "fingerprint": self.fingerprint(),
        }
        if per_link:
            out["links"] = [link.as_dict()
                            for link in sorted(self.links,
                                               key=lambda l: l.link)]
        return out


# ----------------------------------------------------------------------
# Crossing-pair computation (pure functions of the topology graph)
# ----------------------------------------------------------------------
def _forwarding_trees(topology: FabricTopology) -> dict[str, dict]:
    """Per destination host, the BFS parent map learn() programmed from."""
    return {
        name: _bfs(topology.network, topology.hosts[name].device)[1]
        for name in topology.host_names()
    }


def _crossing_pairs(
    topology: FabricTopology,
    trees: dict[str, dict],
    backups: dict[tuple[str, str], int],
    a_dev: str,
    b_dev: str,
) -> tuple[list[tuple[str, str, str]], list[tuple[str, str, str]]]:
    """Host pairs whose pinned path crosses the (a_dev, b_dev) cable.

    Returns ``(crossing, protected)`` lists of ``(src, dst, rerouting
    switch)``; the rerouting switch is the link endpoint that forwards
    across the cut, and a pair is protected when that switch holds a
    backup for the destination.
    """
    pair = {a_dev, b_dev}
    crossing: list[tuple[str, str, str]] = []
    protected: list[tuple[str, str, str]] = []
    for dst in topology.host_names():
        parent = trees[dst]
        for src in topology.host_names():
            if src == dst:
                continue
            device = topology.hosts[src].device
            while parent[device] is not None:
                up = parent[device]
                if {device, up} == pair:
                    crossing.append((src, dst, device))
                    if (device, dst) in backups:
                        protected.append((src, dst, device))
                    break
                device = up
    return crossing, protected


def _select_pairs(
    protected: list[tuple[str, str, str]], cap: int
) -> list[tuple[str, str]]:
    """Cap the swept pairs, keeping both crossing directions represented.

    Pairs are grouped by their rerouting switch (one group per link
    direction that carries traffic) and drawn round-robin from the
    sorted groups — deterministic, and a cut is always exercised from
    every side that can recover.
    """
    groups: dict[str, list[tuple[str, str]]] = {}
    for src, dst, via in sorted(protected):
        groups.setdefault(via, []).append((src, dst))
    queues = [groups[via] for via in sorted(groups)]
    chosen: list[tuple[str, str]] = []
    while len(chosen) < cap and any(queues):
        for queue in queues:
            if queue and len(chosen) < cap:
                chosen.append(queue.pop(0))
    return chosen


def _link_flows(
    pairs: list[tuple[str, str]], epochs: int, packets_per_epoch: int,
    int_enabled: bool = True,
) -> list[Flow]:
    """Continuous streams spanning the whole sweep window."""
    gap = max(1, FLAP_EPOCH_TICKS // packets_per_epoch)
    packets = epochs * packets_per_epoch
    return [
        Flow(
            flow_id=index,
            src=src,
            dst=dst,
            frame_size=SWEEP_FRAME_SIZE,
            packets=packets,
            response_packets=0,
            start_tick=index,
            gap_ticks=gap,
            int_enabled=int_enabled,
        )
        for index, (src, dst) in enumerate(pairs)
    ]


def _recover_epochs(loss_by_epoch: dict[int, int], fail_epoch: int) -> int:
    """Epochs from the failure to the last lossy epoch (0 = no loss)."""
    lossy = [epoch for epoch in loss_by_epoch if epoch >= fail_epoch]
    return (max(lossy) - fail_epoch + 1) if lossy else 0


def _int_loss_curve(int_summary: dict) -> tuple:
    """The receiver's loss curve, epoch keys back to ints for compare
    against the scheduler's device-side ``loss_by_epoch`` ledger."""
    return tuple(sorted(
        (int(epoch), count)
        for epoch, count in int_summary.get("loss_by_epoch", {}).items()
    ))


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    topology: Union[str, FabricSpec],
    *,
    seed: int = 0,
    fail_epoch: int = 2,
    down_epochs: int = 2,
    epochs: int = 6,
    pairs_per_link: int = 2,
    packets_per_epoch: int = 2,
    max_links: Optional[int] = None,
    shards: int = 1,
    parallel: bool = False,
    int_enabled: bool = True,
) -> SweepReport:
    """Sweep every switch-switch link of a fabric through one failure.

    ``topology`` is a preset name or a :class:`FabricSpec`.  Each swept
    link runs the identical scripted failure window twice — FRR-on and
    FRR-off — over the same deterministic crossing flows; ``max_links``
    truncates the (sorted) link list for smoke runs.  The report's
    fingerprint is a pure function of every argument except ``shards``
    and ``parallel``.

    With ``int_enabled`` (the default) every sweep flow carries an INT
    trailer, and each :class:`LinkResult` also reports the *receiver's*
    view — reroutes counted from stamps, blackholes from sequence gaps,
    the failed link named by the stamps' dead-port masks — which
    :meth:`SweepReport.int_consistent` (folded into ``healthy()``)
    requires to agree exactly with the device counters.
    """
    spec = get_topology(topology) if isinstance(topology, str) else topology
    if fail_epoch < 0 or down_epochs < 1:
        raise ValueError("fail_epoch must be >= 0 and down_epochs >= 1")
    if fail_epoch + down_epochs >= epochs:
        raise ValueError("the failure window must close before the sweep ends")
    if pairs_per_link < 1 or packets_per_epoch < 1:
        raise ValueError("pairs_per_link and packets_per_epoch must be >= 1")

    started = time.perf_counter()
    # One reference build for the pure graph computations; the runs
    # themselves rebuild fresh replicas via run_sharded.
    reference = spec.build()
    reference.learn()
    trees = _forwarding_trees(reference)
    backups = compute_backups(reference)

    links = reference.links()
    if max_links is not None:
        links = links[:max_links]

    results: list[LinkResult] = []
    for a_dev, a_port, b_dev, b_port in links:
        label = f"{a_dev}:{a_port}~{b_dev}:{b_port}"
        crossing, protected = _crossing_pairs(
            reference, trees, backups, a_dev, b_dev
        )
        pairs = _select_pairs(protected, pairs_per_link)
        if not pairs:
            results.append(LinkResult(
                link=label,
                crossing_pairs=len(crossing),
                protected_pairs=len(protected),
                swept_pairs=0,
            ))
            continue
        flows = _link_flows(pairs, epochs, packets_per_epoch, int_enabled)
        workload = WorkloadSpec(
            pattern="uniform",
            flows=len(flows),
            seed=seed,
            packets_per_flow=epochs * packets_per_epoch,
            window_ticks=epochs * FLAP_EPOCH_TICKS,
        )
        schedule = LinkSchedule(
            ((a_dev, b_dev, fail_epoch, fail_epoch + down_epochs),)
        )
        on = run_sharded(
            spec, workload, None, shards=shards, parallel=parallel,
            flows=flows, frr=True, link_schedule=schedule,
        )
        off = run_sharded(
            spec, workload, None, shards=shards, parallel=parallel,
            flows=flows, frr=False, link_schedule=schedule,
        )
        # With INT flows both runs carry receiver summaries; without,
        # int_summary is None and the int_* fields stay at their zeros.
        int_on = on.int_summary or {}
        int_off = off.int_summary or {}
        results.append(LinkResult(
            link=label,
            crossing_pairs=len(crossing),
            protected_pairs=len(protected),
            swept_pairs=len(pairs),
            attempted=on.attempted,
            lost_frr_on=on.lost,
            lost_frr_off=off.lost,
            recover_epochs_frr_on=_recover_epochs(
                on.loss_by_epoch, fail_epoch
            ),
            recover_epochs_frr_off=_recover_epochs(
                off.loss_by_epoch, fail_epoch
            ),
            reroutes=sum(on.device_reroutes.values()),
            loss_curve_on=tuple(sorted(on.loss_by_epoch.items())),
            loss_curve_off=tuple(sorted(off.loss_by_epoch.items())),
            fingerprint_on=on.fingerprint(),
            fingerprint_off=off.fingerprint(),
            blackholed_frr_on=sum(on.device_blackholed.values()),
            blackholed_frr_off=sum(off.device_blackholed.values()),
            int_reroutes=sum(int_on.get("reroutes", {}).values()),
            int_blackholes_on=int_on.get("blackholes", 0),
            int_blackholes_off=int_off.get("blackholes", 0),
            int_failed_links=tuple(sorted(int_on.get("reroute_links", {}))),
            int_loss_curve_on=_int_loss_curve(int_on),
            int_loss_curve_off=_int_loss_curve(int_off),
        ))

    return SweepReport(
        topology=spec.key,
        seed=seed,
        fail_epoch=fail_epoch,
        down_epochs=down_epochs,
        epochs=epochs,
        pairs_per_link=pairs_per_link,
        packets_per_epoch=packets_per_epoch,
        max_links=max_links,
        shards=shards,
        elapsed_s=time.perf_counter() - started,
        links=results,
        int_enabled=int_enabled,
    )
