"""Data-plane fast reroute (S23).

Felix-style failure response: instead of detecting a dead link in
software and repairing tables a repair-epoch later (the S18/S20 path),
every switch carries a precomputed *backup next-hop column* next to its
FDB and a per-port liveness bitmap — so when a primary port loses link,
the very next packet falls over to the backup inside the same lookup,
with zero controller involvement.

- :mod:`repro.frr.backup` computes loop-free backup next-hops from the
  fabric's BFS trees and installs them on the switches.
- :mod:`repro.frr.sweep` runs the E19 single-link-failure sweeps and
  folds the per-link loss/recovery curves into a fingerprinted
  :class:`~repro.frr.sweep.SweepReport`.
"""

from repro.frr.backup import backup_coverage, compute_backups, install_backups
from repro.frr.sweep import LinkResult, SweepReport, run_sweep

__all__ = [
    "backup_coverage",
    "compute_backups",
    "install_backups",
    "LinkResult",
    "SweepReport",
    "run_sweep",
]
