"""Loop-free backup next-hop computation (fast reroute, S23).

For every (switch, destination host) pair the fabric's :meth:`learn`
phase pinned a primary FDB port, this module picks — where one exists —
a *backup* port that is provably loop-free under the single failure it
protects against: the switch's primary link toward that host.

The candidate rules mirror IP fast-reroute's loop-free alternates,
specialised to the unit-cost BFS trees ``learn()`` programs from.  Let
``v`` be the protecting switch, ``e`` the destination's edge switch,
``d(x)`` the BFS distance from ``x`` to ``e``, and ``w`` a neighbor of
``v`` reachable over a port other than the primary:

- **LFA** — ``d(w) <= d(v)``: ``w``'s own BFS-tree path to ``e`` visits
  exactly one node per distance level and never reaches level ``d(v)``
  below ``w``, so it cannot pass through ``v`` (or cross ``v``'s failed
  primary link).
- **U-turn** — ``d(w) == d(v) + 1`` and ``parent(w) != v``: the packet
  steps one level *away* from the destination, but ``w``'s tree path
  comes back down through ``parent(w)``, the only node it visits at
  level ``d(v)`` — which is not ``v``, so again no loop.  U-turn
  candidates are ranked by a second BFS rooted at ``e`` in the graph
  with the failed link removed (the true post-failure distance).

A neighbor with ``parent(w) == v`` routes *through* ``v`` and would
ping-pong on the dead link; it is never installed.  Where no candidate
survives, no backup is installed and the lookup reports an honest
``frr_blackhole`` — the same partial-coverage reality hardware LFA
deployments live with.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.fabric.topo import FabricTopology
    from repro.testenv.topology import Network


def _bfs(
    net: "Network", root: str, skip_pair: Optional[frozenset] = None
) -> tuple[dict[str, int], dict[str, Optional[str]]]:
    """BFS over the device graph, sorted-port order — learn()'s walk.

    Returns ``(dist, parent)`` maps from ``root``.  ``skip_pair`` is an
    unordered device pair whose cable(s) are treated as cut (the second,
    post-failure BFS).
    """
    dist: dict[str, int] = {root: 0}
    parent: dict[str, Optional[str]] = {root: None}
    frontier = deque([root])
    while frontier:
        device = frontier.popleft()
        for _, (peer, _) in sorted(net.neighbors(device).items()):
            if skip_pair is not None and frozenset((device, peer)) == skip_pair:
                continue
            if peer in dist:
                continue
            dist[peer] = dist[device] + 1
            parent[peer] = device
            frontier.append(peer)
    return dist, parent


def compute_backups(topology: "FabricTopology") -> dict[tuple[str, str], int]:
    """Pick a loop-free backup port per (switch, host) where one exists.

    Returns ``{(switch, host_name): backup_port_index}``.  Pure function
    of the topology graph — deterministic across reruns and shards.
    """
    net = topology.network
    backups: dict[tuple[str, str], int] = {}
    for name in topology.host_names():
        host = topology.hosts[name]
        root = host.device
        dist, parent = _bfs(net, root)
        for v in net.device_names():
            if v == root:
                # The edge switch forwards onto the host's own edge
                # port; that is not a fabric cable, so nothing the
                # sweep can cut and nothing to protect.
                continue
            primary_peer = parent[v]
            second_dist: Optional[dict[str, int]] = None
            candidates: list[tuple[int, int, int]] = []
            for local, (w, _) in sorted(net.neighbors(v).items()):
                if w == primary_peer:
                    # The primary port — and any parallel cable to the
                    # same peer, which the failure model cuts together.
                    continue
                if dist[w] <= dist[v]:
                    candidates.append((0, dist[w], local))
                elif parent.get(w) != v:
                    if second_dist is None:
                        second_dist = _bfs(
                            net, root, frozenset((v, primary_peer))
                        )[0]
                    if w in second_dist:
                        candidates.append((1, second_dist[w], local))
            if candidates:
                backups[(v, name)] = min(candidates)[2]
    return backups


def install_backups(topology: "FabricTopology") -> int:
    """Write the computed backup column onto every switch.

    Returns the number of entries installed.  Raises if any switch's
    backup table rejects an entry (table full).
    """
    from repro.fabric.topo import FabricError

    if not getattr(topology, "_learned", False):
        raise FabricError("install_backups() requires a learned topology")
    net = topology.network
    installed = 0
    for (device, name), port in sorted(compute_backups(topology).items()):
        host = topology.hosts[name]
        if not net.device(device).install_backup_mac(host.mac, port):
            raise FabricError(
                f"backup table full installing {name} on {device}"
            )
        installed += 1
    return installed


def backup_coverage(topology: "FabricTopology") -> float:
    """Fraction of protectable (switch, host) pairs that got a backup.

    The denominator is every pair where the switch is not the host's
    own edge switch (those forward onto an uncuttable edge port).
    """
    net = topology.network
    protectable = sum(
        1
        for name in topology.host_names()
        for device in net.device_names()
        if device != topology.hosts[name].device
    )
    if protectable == 0:
        return 1.0
    return len(compute_backups(topology)) / protectable
