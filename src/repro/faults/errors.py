"""Typed exception hierarchy for the fault layer and the recovery paths.

Everything derives from :class:`FaultError`, which is itself a
``RuntimeError`` so pre-existing ``except RuntimeError`` call sites —
notably the regression runner — keep catching these without change.
The split matters to callers: :class:`FaultInjected` is the *injection*
side (a seeded fault fired at an instrumented site), while
:class:`DriverTimeout` / :class:`RingWedged` are the *recovery* side (a
bounded retry or watchdog gave up).
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base of every fault-layer and recovery-path error."""


class FaultInjected(FaultError):
    """An injected fault fired at an instrumented site.

    Raised by injector hooks to model failures that present as errors to
    software — e.g. an MMIO read that times out on the PCIe link.  The
    ``site`` attribute names the injection point (``"mmio"``, ...).
    """

    def __init__(self, site: str, message: str):
        super().__init__(message)
        self.site = site


class DriverTimeout(FaultError):
    """A bounded driver retry/poll loop exhausted its budget.

    The replacement for hanging: where the driver used to be able to
    spin forever on a ring with zero posted completions, it now raises
    this after ``max_polls`` attempts.
    """


class RingWedged(FaultError):
    """A descriptor ring is wedged beyond what the watchdog will repair."""


class MmioWriteError(FaultError):
    """A verified MMIO write never landed within its retry budget.

    Posted writes are fire-and-forget on the bus, so the only way
    software learns a table or control register write was lost is to
    read it back.  The driver's verified-write path does exactly that;
    this error is its bounded-retry giving up — the control-plane twin
    of :class:`DriverTimeout`.
    """


class DriverError(FaultError):
    """Driver misconfiguration (e.g. register access with no project
    attached behind BAR0) — not injected, not transient."""


class NonQuiescent(FaultError):
    """A harness run failed to drain or quiesce within its safety bounds."""
