"""Arms a fault session's decision streams onto live model instances.

The models expose passive hook points (``EthernetMacModel.corrupt``,
``DmaEngine.fault_hook``, ``AxiLiteInterconnect.read_fault_hook``,
``OutputQueues.pressure_hook``); the injector is the only thing that
wires them, so a design with no plan armed runs exactly the clean path.
``disarm()`` restores every hook it replaced, making the injector safe
to use as a context manager around a single run.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.faults.errors import FaultInjected
from repro.faults.plan import FaultPlan, FaultSession


class FaultInjector:
    """Installs one session's streams into MACs, DMA, AXI4-Lite and OQs."""

    def __init__(self, session: FaultSession):
        self.session = session
        self._restores: list[Callable[[], None]] = []

    # -- individual sites ----------------------------------------------
    def arm_mac(self, mac: Any) -> None:
        """Wire-mangle hook: per-frame bit flips and link flaps."""
        previous = mac.corrupt
        mac.corrupt = self.session.mangle_wire
        self._restores.append(lambda: setattr(mac, "corrupt", previous))

    def arm_dma(self, dma: Any) -> None:
        """Descriptor stalls, dropped completions, lost doorbells."""
        previous = dma.fault_hook
        dma.fault_hook = self.session.dma_fault
        self._restores.append(lambda: setattr(dma, "fault_hook", previous))

    def arm_interconnect(self, interconnect: Any) -> None:
        """AXI4-Lite read timeouts, surfaced as :class:`FaultInjected`."""
        session = self.session

        def hook(addr: int) -> None:
            if session.mmio_read_faults():
                raise FaultInjected(
                    "mmio", f"MMIO read at {addr:#x} timed out (injected)"
                )

        previous = interconnect.read_fault_hook
        interconnect.read_fault_hook = hook
        self._restores.append(
            lambda: setattr(interconnect, "read_fault_hook", previous)
        )

        def write_hook(addr: int, value: int) -> Optional[int]:
            outcome = session.ctrl_write()
            if outcome == "drop":
                return None
            if outcome == "corrupt":
                # Deterministic mangle: flip the low bit so readback
                # mismatches without needing another RNG draw.
                return value ^ 0x1
            return value

        prev_write = interconnect.write_fault_hook
        interconnect.write_fault_hook = write_hook
        self._restores.append(
            lambda: setattr(interconnect, "write_fault_hook", prev_write)
        )

    def arm_output_queues(self, oq: Any) -> None:
        """Pressure spikes: phantom occupancy on enqueue decisions."""
        previous = oq.pressure_hook
        oq.pressure_hook = self.session.oq_pressure
        self._restores.append(lambda: setattr(oq, "pressure_hook", previous))

    # -- aggregates ------------------------------------------------------
    def arm_board(self, board: Any) -> None:
        """Arm every MAC and the DMA engine of a NetFpgaSume board."""
        for mac in board.macs:
            self.arm_mac(mac)
        self.arm_dma(board.dma)

    def arm_project(self, project: Any) -> None:
        """Arm a reference pipeline's control plane and output queues.

        Also attaches the session to ``project.datapath_faults`` so the
        flow-cache fast path bypasses itself while data-path sites are
        armed — a cache hit must never skip a per-packet fault draw.
        """
        self.arm_interconnect(project.interconnect)
        self.arm_output_queues(project.oq)
        previous = getattr(project, "datapath_faults", None)
        if hasattr(project, "datapath_faults"):
            project.datapath_faults = self.session
            self._restores.append(
                lambda: setattr(project, "datapath_faults", previous)
            )

    def disarm(self) -> None:
        """Restore every hook this injector replaced (LIFO)."""
        while self._restores:
            self._restores.pop()()

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc: object) -> None:
        self.disarm()


def inject(plan: FaultPlan, *, board: Any = None, project: Any = None) -> FaultInjector:
    """Open a session on ``plan`` and arm it in one call."""
    injector = FaultInjector(plan.session())
    if board is not None:
        injector.arm_board(board)
    if project is not None:
        injector.arm_project(project)
    return injector
