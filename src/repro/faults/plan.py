"""Seeded, reproducible fault plans.

A :class:`FaultPlan` is a *description*: which sites fault, at what
rates, with what burst bounds.  Opening a :class:`FaultSession` turns it
into deterministic per-site decision streams — each site gets its own
``random.Random`` seeded from ``sha256(seed, site)``, so the schedule
depends only on ``(seed, spec)`` and never on Python's salted ``hash()``
or on how other sites interleave.  Two sessions from the same plan
produce bit-identical schedules; that is what lets the unified test
environment run the *same* fault plan against the ``sim`` and ``hw``
targets and demand identical recovery counters.

The four sites mirror how real boards fail:

``link``  bit flips (FCS failures at the peer MAC) and link flaps on the
          wire — recoverable by retransmission;
``dma``   descriptor-fetch stalls, dropped RX completion write-backs
          (the classic wedged-ring symptom) and lost TX doorbells —
          recoverable by the driver watchdog;
``mmio``  AXI4-Lite register reads timing out on the PCIe round trip —
          recoverable by bounded retry with backoff;
``oq``    output-queue pressure spikes (phantom occupancy) — absorbed as
          counted drops / early ECN marks, never a wedge.

Burst bounds make recovery *provable*: a spec's ``max_burst`` caps how
many consecutive faults a site may emit, so any retry budget larger than
the burst is guaranteed to succeed — unless the plan explicitly allows
permanent loss (``lose_rate``), which the harness then accounts as clean,
counted loss.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

SITES = (
    "link", "dma_rx", "dma_tx", "dma_db", "mmio", "oq",
    # Control-plane sites (the resilience subsystem's fault surface):
    # posted register writes, soft device resets, per-port link flaps.
    "ctrl_wr", "ctrl_rst", "ctrl_flap",
    # Data-plane link-state sites (the fast-reroute subsystem's fault
    # surface): whether a fabric cable loses light this epoch, and for
    # how many epochs it stays dark.
    "link_down", "link_up",
    # Shard-executor sites (the supervised fabric executor's fault
    # surface): whether a worker process crashes, wedges, or returns a
    # corrupted result.  Drawn once per (shard, attempt) launch.
    "shard_crash", "shard_hang", "shard_corrupt",
)


def derive_seed(seed: int, *parts: object) -> int:
    """A process-stable sub-seed (built-in ``hash`` is salted; sha256 is not).

    Any decision stream that must be independent of draw *order* — the
    fabric engine's per-flow wire faults, per-(host, epoch) link flaps —
    derives its own seed from the plan seed plus an identity tuple, so
    the outcome is a pure function of ``(seed, parts)`` no matter how
    work is interleaved or sharded across processes.
    """
    text = ":".join([str(seed), *(str(p) for p in parts)])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _site_seed(seed: int, site: str) -> int:
    return derive_seed(seed, site)


def _check_rates(*rates: float) -> None:
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate {rate} outside [0, 1]")
    if sum(rates) > 1.0:
        raise ValueError(f"fault rates sum to {sum(rates)} > 1")


@dataclass(frozen=True)
class LinkFaultSpec:
    """Wire-level faults applied per transfer attempt."""

    drop_rate: float = 0.0  # link flap: the frame vanishes on the wire
    corrupt_rate: float = 0.0  # bit flip: the frame fails FCS at the peer
    lose_rate: float = 0.0  # permanent loss: retransmission cannot rescue it
    max_burst: int = 3  # consecutive recoverable faults before forced delivery
    max_attempts: int = 8  # per-frame retransmit budget at the harness

    def __post_init__(self) -> None:
        _check_rates(self.drop_rate, self.corrupt_rate, self.lose_rate)
        if self.max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        if self.max_attempts <= self.max_burst:
            raise ValueError("max_attempts must exceed max_burst or no retry can win")


@dataclass(frozen=True)
class DmaFaultSpec:
    """DMA-engine faults: stalls, dropped completions, lost doorbells."""

    stall_rate: float = 0.0
    stall_ns: float = 20_000.0
    drop_completion_rate: float = 0.0  # RX write-back lost -> head-of-line wedge
    drop_doorbell_rate: float = 0.0  # TX doorbell MMIO lost -> engine never kicks
    max_burst: int = 1

    def __post_init__(self) -> None:
        _check_rates(self.stall_rate, self.drop_completion_rate)
        _check_rates(self.drop_doorbell_rate)
        if self.stall_ns < 0:
            raise ValueError("stall_ns must be non-negative")
        if self.max_burst < 1:
            raise ValueError("max_burst must be >= 1")


@dataclass(frozen=True)
class MmioFaultSpec:
    """AXI4-Lite read timeouts, burst-bounded so bounded retry succeeds."""

    timeout_rate: float = 0.0
    max_burst: int = 2

    def __post_init__(self) -> None:
        _check_rates(self.timeout_rate)
        if self.max_burst < 1:
            raise ValueError("max_burst must be >= 1")


@dataclass(frozen=True)
class OqFaultSpec:
    """Output-queue pressure spikes: phantom occupancy on enqueue."""

    spike_rate: float = 0.0
    spike_bytes: int = 48 * 1024

    def __post_init__(self) -> None:
        _check_rates(self.spike_rate)
        if self.spike_bytes <= 0:
            raise ValueError("spike_bytes must be positive")


@dataclass(frozen=True)
class CtrlFaultSpec:
    """Control-plane faults: the ways management software loses the device.

    ``write_drop_rate`` / ``write_corrupt_rate`` fault *posted* register
    and table writes — the write completes from the host's point of view
    but never lands (or lands mangled) in hardware.  Burst-bounded, so a
    verified-write retry budget larger than ``max_burst`` always wins.
    ``reset_rate`` is drawn once per soak epoch: a soft device reset that
    wipes the volatile tables while software state survives.
    ``flap_rate`` is drawn per (epoch, port): the port's link goes down
    for the epoch and its traffic is counted as flap loss, never
    silently blackholed.
    """

    write_drop_rate: float = 0.0
    write_corrupt_rate: float = 0.0
    reset_rate: float = 0.0
    flap_rate: float = 0.0
    max_burst: int = 2

    def __post_init__(self) -> None:
        _check_rates(self.write_drop_rate, self.write_corrupt_rate)
        _check_rates(self.reset_rate)
        _check_rates(self.flap_rate)
        if self.max_burst < 1:
            raise ValueError("max_burst must be >= 1")


@dataclass(frozen=True)
class LinkStateSpec:
    """Fabric cable failures: link goes dark for whole epochs.

    Unlike :class:`CtrlFaultSpec`'s per-(host, epoch) edge flaps, these
    cut *switch-switch* cables — the failure fast reroute protects
    against.  ``down_rate`` is drawn once per (link, epoch) from the
    ``link_down`` site; a firing link stays dark for a duration drawn
    from the ``link_up`` site in ``[min_down_epochs, max_down_epochs]``.
    """

    down_rate: float = 0.0
    min_down_epochs: int = 1
    max_down_epochs: int = 4

    def __post_init__(self) -> None:
        _check_rates(self.down_rate)
        if self.min_down_epochs < 1:
            raise ValueError("min_down_epochs must be >= 1")
        if self.max_down_epochs < self.min_down_epochs:
            raise ValueError("max_down_epochs must be >= min_down_epochs")


@dataclass(frozen=True)
class ShardFaultSpec:
    """Shard-executor faults: the ways a worker process loses a shard.

    These sites perturb *how* a sharded fabric run executes, never
    *what* it computes: the supervised executor retries, falls back
    inline, or re-runs corrupted shards, so the merged report is
    byte-identical to a clean run's.  One action is drawn per
    ``(shard, attempt)`` launch from derived sub-seeds —
    ``plan.derived("shard", index, attempt)`` — so the crash schedule
    is a pure function of the chaos seed, independent of timing.

    ``crash_rate``   the worker exits without a result (OOM-kill, segv);
    ``hang_rate``    the worker wedges — heartbeats stop, work never
                     finishes — until the supervisor kills it;
    ``corrupt_rate`` the worker's result is mangled in the result
                     channel (detected at the merge boundary by the
                     fingerprint/partition integrity checks).
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rates(self.crash_rate)
        _check_rates(self.hang_rate)
        _check_rates(self.corrupt_rate)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of faults across the platform's sites."""

    name: str
    seed: int = 0
    link: Optional[LinkFaultSpec] = None
    dma: Optional[DmaFaultSpec] = None
    mmio: Optional[MmioFaultSpec] = None
    oq: Optional[OqFaultSpec] = None
    ctrl: Optional[CtrlFaultSpec] = None
    link_state: Optional[LinkStateSpec] = None
    shard: Optional[ShardFaultSpec] = None

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def derived(self, *parts: object) -> "FaultPlan":
        """The same specs under a sub-seed bound to ``parts``.

        ``plan.derived("fabric", flow_id).session()`` gives every flow
        its own deterministic decision stream: draws for one flow never
        perturb another's, which is what keeps a sharded fabric run's
        fault schedule identical to the single-process one.
        """
        return self.with_seed(derive_seed(self.seed, *parts))

    def session(self) -> "FaultSession":
        """Open a fresh deterministic decision stream for one run."""
        return FaultSession(self)


@dataclass(frozen=True)
class FaultReport:
    """Snapshot of one session: what fired, what was recovered, what was lost."""

    plan: str
    seed: int
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def frames_lost(self) -> int:
        return self.counters.get("link_lost", 0)

    @property
    def retransmits(self) -> int:
        return self.counters.get("link_retransmits", 0)


class FaultSession:
    """Runtime state of one plan execution: per-site RNGs, bursts, counters.

    All draws are deterministic functions of ``(plan.seed, site, draw
    index)``; consulting one site never perturbs another.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = {site: random.Random(_site_seed(plan.seed, site)) for site in SITES}
        self._burst = {site: 0 for site in SITES}
        self.counters: Counter[str] = Counter()
        #: Telemetry hook: ``hook(site, outcome)`` called for every fault
        #: decision that actually fires.  Observation only — it must not
        #: (and cannot) perturb the decision streams.
        self.on_fault: Optional[Callable[[str, str], None]] = None

    def _notify(self, site: str, outcome: str) -> None:
        if self.on_fault is not None:
            self.on_fault(site, outcome)

    # -- shared draw machinery -----------------------------------------
    def _draw(self, site: str, fault_rate: float, max_burst: int) -> bool:
        """One burst-bounded biased coin for ``site``; True means fault."""
        fault = self._rng[site].random() < fault_rate
        if fault and self._burst[site] >= max_burst:
            fault = False  # burst cap: force the site to behave
        self._burst[site] = self._burst[site] + 1 if fault else 0
        return fault

    # -- link ----------------------------------------------------------
    def link_attempt(self) -> str:
        """One wire transfer attempt: 'deliver' | 'drop' | 'corrupt' | 'lose'."""
        spec = self.plan.link
        if spec is None:
            return "deliver"
        r = self._rng["link"].random()
        if r < spec.lose_rate:
            outcome = "lose"
        elif r < spec.lose_rate + spec.drop_rate:
            outcome = "drop"
        elif r < spec.lose_rate + spec.drop_rate + spec.corrupt_rate:
            outcome = "corrupt"
        else:
            outcome = "deliver"
        if outcome in ("drop", "corrupt"):
            if self._burst["link"] >= spec.max_burst:
                outcome = "deliver"
            else:
                self._burst["link"] += 1
        if outcome == "deliver":
            self._burst["link"] = 0
        self.counters[f"link_{outcome}"] += 1
        if outcome != "deliver":
            self._notify("link", outcome)
        return outcome

    def link_transfer(self) -> bool:
        """A full transfer with retransmission: True iff eventually delivered.

        Models the harness contract: up to ``max_attempts`` tries, each
        drop/corrupt answered by a counted retransmit.  Returns False
        only on permanent loss ('lose', or an exhausted budget — which
        the burst cap makes impossible unless the plan allows loss).
        """
        spec = self.plan.link
        if spec is None:
            return True
        for attempt in range(spec.max_attempts):
            outcome = self.link_attempt()
            if outcome == "deliver":
                self.counters["link_retransmits"] += attempt
                return True
            if outcome == "lose":
                break
        self.counters["link_lost"] += 1
        return False

    def mangle_wire(self, on_wire: bytes) -> Optional[bytes]:
        """MAC tx-mangle hook: corrupt (bit flip) or drop (None) a frame."""
        spec = self.plan.link
        if spec is None:
            return on_wire
        outcome = self.link_attempt()
        if outcome in ("drop", "lose"):
            return None
        if outcome == "corrupt" and on_wire:
            at = self._rng["link"].randrange(len(on_wire))
            flipped = bytearray(on_wire)
            flipped[at] ^= 0x01
            return bytes(flipped)
        return on_wire

    # -- dma -----------------------------------------------------------
    def dma_fault(self, site: str) -> tuple[str, float]:
        """Decision for a :class:`~repro.board.pcie.DmaEngine` site.

        ``site`` is 'rx_completion' | 'tx_fetch' | 'doorbell'; returns
        ``(outcome, stall_ns)`` with outcome 'ok' | 'drop' | 'stall'.
        """
        spec = self.plan.dma
        if spec is None:
            return ("ok", 0.0)
        if site == "rx_completion":
            r = self._rng["dma_rx"].random()
            if r < spec.drop_completion_rate:
                if self._capped("dma_rx", spec.max_burst):
                    return ("ok", 0.0)  # burst cap forced this one through
                self.counters["dma_completion_dropped"] += 1
                self._notify("dma_rx", "drop")
                return ("drop", 0.0)
            if r < spec.drop_completion_rate + spec.stall_rate:
                self.counters["dma_stalls"] += 1
                self._notify("dma_rx", "stall")
                return ("stall", spec.stall_ns)
            return ("ok", 0.0)
        if site == "tx_fetch":
            if self._draw("dma_tx", spec.stall_rate, spec.max_burst):
                self.counters["dma_stalls"] += 1
                self._notify("dma_tx", "stall")
                return ("stall", spec.stall_ns)
            return ("ok", 0.0)
        if site == "doorbell":
            if self._draw("dma_db", spec.drop_doorbell_rate, spec.max_burst):
                self.counters["dma_doorbell_dropped"] += 1
                self._notify("dma_db", "drop")
                return ("drop", 0.0)
            return ("ok", 0.0)
        raise ValueError(f"unknown DMA fault site {site!r}")

    def _capped(self, site: str, max_burst: int) -> bool:
        """Track a burst; True when the cap forces this fault off."""
        if self._burst[site] >= max_burst:
            self._burst[site] = 0
            return True
        self._burst[site] += 1
        return False

    # -- mmio ----------------------------------------------------------
    def mmio_read_faults(self) -> bool:
        """True when this MMIO read should time out."""
        spec = self.plan.mmio
        if spec is None:
            return False
        fault = self._draw("mmio", spec.timeout_rate, spec.max_burst)
        if fault:
            self.counters["mmio_timeouts"] += 1
            self._notify("mmio", "timeout")
        return fault

    # -- control plane ---------------------------------------------------
    def ctrl_write(self) -> str:
        """One posted control-register write: 'ok' | 'drop' | 'corrupt'.

        Burst-bounded like the wire: after ``max_burst`` consecutive
        faulted writes the next one is forced through, so any verified-
        write retry budget exceeding the burst is guaranteed to land.
        """
        spec = self.plan.ctrl
        if spec is None:
            return "ok"
        r = self._rng["ctrl_wr"].random()
        if r < spec.write_drop_rate:
            outcome = "drop"
        elif r < spec.write_drop_rate + spec.write_corrupt_rate:
            outcome = "corrupt"
        else:
            outcome = "ok"
        if outcome != "ok":
            if self._burst["ctrl_wr"] >= spec.max_burst:
                outcome = "ok"
            else:
                self._burst["ctrl_wr"] += 1
        if outcome == "ok":
            self._burst["ctrl_wr"] = 0
        else:
            self.counters[f"ctrl_write_{outcome}"] += 1
            self._notify("ctrl_wr", outcome)
        return outcome

    def device_reset_faults(self) -> bool:
        """True when this epoch suffers a soft device reset (tables wiped)."""
        spec = self.plan.ctrl
        if spec is None:
            return False
        fault = self._rng["ctrl_rst"].random() < spec.reset_rate
        if fault:
            self.counters["ctrl_resets"] += 1
            self._notify("ctrl_rst", "reset")
        return fault

    def link_flap_faults(self) -> bool:
        """True when this (epoch, port) draw flaps the link down."""
        spec = self.plan.ctrl
        if spec is None:
            return False
        fault = self._rng["ctrl_flap"].random() < spec.flap_rate
        if fault:
            self.counters["ctrl_flaps"] += 1
            self._notify("ctrl_flap", "flap")
        return fault

    # -- data-plane link state -------------------------------------------
    def link_down_faults(self) -> bool:
        """True when this (link, epoch) draw cuts the cable."""
        spec = self.plan.link_state
        if spec is None:
            return False
        fault = self._rng["link_down"].random() < spec.down_rate
        if fault:
            self.counters["link_down_events"] += 1
            self._notify("link_down", "down")
        return fault

    def link_down_epochs(self) -> int:
        """How many epochs a cut cable stays dark (>= 1)."""
        spec = self.plan.link_state
        if spec is None:
            return 0
        return self._rng["link_up"].randint(
            spec.min_down_epochs, spec.max_down_epochs
        )

    # -- shard executor ---------------------------------------------------
    def shard_fault(self) -> Optional[str]:
        """The chaos action for one ``(shard, attempt)`` worker launch.

        Returns ``None`` (healthy launch) or one of ``'crash'``,
        ``'hang'``, ``'corrupt'``.  Each action draws from its own
        site stream, checked in severity order, so the schedule for
        one action never perturbs another's.  The supervisor opens a
        fresh derived session per launch, making the whole chaos
        schedule a pure function of ``(seed, shard, attempt)``.
        """
        spec = self.plan.shard
        if spec is None:
            return None
        if self._rng["shard_crash"].random() < spec.crash_rate:
            self.counters["shard_crashes"] += 1
            self._notify("shard_crash", "crash")
            return "crash"
        if self._rng["shard_hang"].random() < spec.hang_rate:
            self.counters["shard_hangs"] += 1
            self._notify("shard_hang", "hang")
            return "hang"
        if self._rng["shard_corrupt"].random() < spec.corrupt_rate:
            self.counters["shard_corrupt_results"] += 1
            self._notify("shard_corrupt", "corrupt")
            return "corrupt"
        return None

    # -- output queues --------------------------------------------------
    def oq_pressure(self) -> int:
        """Phantom backlog bytes to add to this enqueue decision."""
        spec = self.plan.oq
        if spec is None:
            return 0
        if self._rng["oq"].random() < spec.spike_rate:
            self.counters["oq_spikes"] += 1
            self._notify("oq", "spike")
            return spec.spike_bytes
        return 0

    # -- reporting -------------------------------------------------------
    def report(self) -> FaultReport:
        return FaultReport(self.plan.name, self.plan.seed, dict(self.counters))


# ----------------------------------------------------------------------
# Named plan registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[int], FaultPlan]] = {}


def register_plan(name: str, factory: Callable[[int], FaultPlan]) -> None:
    """Register ``factory(seed) -> FaultPlan`` under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"fault plan {name!r} already registered")
    _REGISTRY[name] = factory


def get_plan(name: str, seed: int = 0) -> FaultPlan:
    """Instantiate a named plan with the given seed."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; available: {available_plans()}"
        ) from None
    return factory(seed)


def available_plans() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


register_plan(
    "lossy-link",
    lambda seed: FaultPlan(
        "lossy-link", seed,
        link=LinkFaultSpec(drop_rate=0.20, corrupt_rate=0.15, max_burst=3, max_attempts=8),
    ),
)
register_plan(
    "black-hole",
    lambda seed: FaultPlan(
        "black-hole", seed,
        link=LinkFaultSpec(drop_rate=0.10, lose_rate=0.25, max_burst=2, max_attempts=6),
    ),
)
register_plan(
    "wedged-ring",
    lambda seed: FaultPlan(
        "wedged-ring", seed,
        dma=DmaFaultSpec(drop_completion_rate=1.0, max_burst=1),
    ),
)
register_plan(
    "stalled-dma",
    lambda seed: FaultPlan(
        "stalled-dma", seed,
        dma=DmaFaultSpec(stall_rate=0.30, stall_ns=25_000.0, max_burst=4),
    ),
)
register_plan(
    "flaky-mmio",
    lambda seed: FaultPlan(
        "flaky-mmio", seed, mmio=MmioFaultSpec(timeout_rate=0.5, max_burst=2)
    ),
)
register_plan(
    "oq-pressure",
    lambda seed: FaultPlan(
        "oq-pressure", seed, oq=OqFaultSpec(spike_rate=0.3, spike_bytes=48 * 1024)
    ),
)
register_plan(
    "flaky-writes",
    lambda seed: FaultPlan(
        "flaky-writes", seed,
        ctrl=CtrlFaultSpec(write_drop_rate=0.25, write_corrupt_rate=0.15,
                           max_burst=2),
    ),
)
register_plan(
    "amnesiac",
    lambda seed: FaultPlan(
        "amnesiac", seed,
        ctrl=CtrlFaultSpec(reset_rate=0.4, write_drop_rate=0.10, max_burst=2),
    ),
)
register_plan(
    "ctrl-chaos",
    lambda seed: FaultPlan(
        "ctrl-chaos", seed,
        ctrl=CtrlFaultSpec(write_drop_rate=0.20, write_corrupt_rate=0.10,
                           reset_rate=0.25, flap_rate=0.15, max_burst=2),
    ),
)
register_plan(
    "flaky-fabric",
    lambda seed: FaultPlan(
        "flaky-fabric", seed,
        link=LinkFaultSpec(drop_rate=0.08, corrupt_rate=0.04, lose_rate=0.03,
                           max_burst=2, max_attempts=6),
        ctrl=CtrlFaultSpec(flap_rate=0.10, max_burst=2),
    ),
)
register_plan(
    "frr-chaos",
    lambda seed: FaultPlan(
        "frr-chaos", seed,
        link_state=LinkStateSpec(down_rate=0.05, min_down_epochs=1,
                                 max_down_epochs=3),
    ),
)
register_plan(
    "shard-chaos",
    lambda seed: FaultPlan(
        "shard-chaos", seed,
        shard=ShardFaultSpec(crash_rate=0.30, hang_rate=0.10,
                             corrupt_rate=0.20),
    ),
)
register_plan(
    "shard-killer",
    lambda seed: FaultPlan(
        "shard-killer", seed,
        shard=ShardFaultSpec(crash_rate=1.0),
    ),
)
register_plan(
    "chaos",
    lambda seed: FaultPlan(
        "chaos", seed,
        link=LinkFaultSpec(drop_rate=0.10, corrupt_rate=0.05, max_burst=2, max_attempts=8),
        dma=DmaFaultSpec(stall_rate=0.10, drop_completion_rate=0.05,
                         drop_doorbell_rate=0.05, max_burst=1),
        mmio=MmioFaultSpec(timeout_rate=0.2, max_burst=2),
        oq=OqFaultSpec(spike_rate=0.1),
    ),
)
