"""Deterministic fault injection and recovery accounting.

Real boards fail in ways a clean-path simulation never exercises: links
flap, frames arrive with bad FCS, DMA completions vanish leaving a
wedged ring, MMIO reads time out.  This package makes those failures
*first-class and reproducible*: a seeded :class:`FaultPlan` expands into
deterministic per-site decision streams (:class:`FaultSession`), a
:class:`FaultInjector` arms them onto the platform models, and the
driver / harness recovery paths count every repair so the same seed
yields the same schedule — and the same recovery counters — in both the
``sim`` and ``hw`` test targets.

Quickstart::

    from repro.faults import get_plan, inject
    from repro.testenv import run_test

    result = run_test(my_test, "sim", faults=get_plan("lossy-link", seed=7))
    print(result.fault_report.counters)
"""

from repro.faults.errors import (
    DriverError,
    DriverTimeout,
    FaultError,
    FaultInjected,
    MmioWriteError,
    NonQuiescent,
    RingWedged,
)
from repro.faults.injector import FaultInjector, inject
from repro.faults.plan import (
    CtrlFaultSpec,
    DmaFaultSpec,
    FaultPlan,
    FaultReport,
    FaultSession,
    LinkFaultSpec,
    LinkStateSpec,
    MmioFaultSpec,
    OqFaultSpec,
    ShardFaultSpec,
    available_plans,
    derive_seed,
    get_plan,
    register_plan,
)

__all__ = [
    "DriverError",
    "DriverTimeout",
    "FaultError",
    "FaultInjected",
    "MmioWriteError",
    "NonQuiescent",
    "RingWedged",
    "FaultInjector",
    "inject",
    "CtrlFaultSpec",
    "DmaFaultSpec",
    "FaultPlan",
    "FaultReport",
    "FaultSession",
    "LinkFaultSpec",
    "LinkStateSpec",
    "MmioFaultSpec",
    "OqFaultSpec",
    "ShardFaultSpec",
    "available_plans",
    "derive_seed",
    "get_plan",
    "register_plan",
]
