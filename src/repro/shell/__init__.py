"""S26 — interactive emulation shell with virtual-time control.

The front door the paper's C6 "unified test environment" claim
deserves: a live fabric session (:class:`ShellSession`) driven either
from Python, from the ``nf-mon shell`` REPL, or from a deterministic
``.nfsh`` script — with a :class:`VirtualClock` owning the cycle
domain (pause / step / run-until / warp) instead of free-running.
"""

from repro.shell.clock import VirtualClock
from repro.shell.repl import COMMANDS, NfshCompleter, Repl, interact, run_script
from repro.shell.session import ExpectFailed, ShellError, ShellSession

__all__ = [
    "COMMANDS",
    "ExpectFailed",
    "NfshCompleter",
    "Repl",
    "ShellError",
    "ShellSession",
    "VirtualClock",
    "interact",
    "run_script",
]
