"""The shell session: every REPL command as a plain Python API.

A :class:`ShellSession` owns one live fabric — a built
:class:`~repro.fabric.topo.FabricTopology`, an optional running
:class:`~repro.fabric.scheduler.FlowEngine`, and the
:class:`~repro.shell.clock.VirtualClock` that paces it.  The
line-oriented REPL (:mod:`repro.shell.repl`) is a thin front end: it
parses words and calls these methods; everything it prints is rendered
from the structured values returned here, so tests (and any other
tool) can drive a session without a terminal.

The determinism contract this module is built around: a session that
does ``build → start → run → finish`` produces a
:class:`~repro.fabric.scheduler.FabricReport` whose fingerprint is
**byte-identical** to the equivalent batch
:func:`~repro.fabric.scheduler.run_flows` call — stepping, pausing and
warping in between changes nothing, and observation commands
(``pingall``, ``tables``, ``status``, ``int paths``, ``metrics``) are
non-perturbing (``pingall`` probes run inside
:meth:`~repro.testenv.topology.Network.sandbox`).  Mutation commands
(``link down|up``, ``inject``) *do* move observables — that is their
point — and are exactly as deterministic as the script that issues
them.

Error taxonomy, mirrored into exit codes by the REPL's script mode:
:class:`ShellError` (and registry ``ValueError``\\ s) are operator
errors → exit 2; :class:`ExpectFailed` is a failed ``expect``
assertion → exit 1.
"""

from __future__ import annotations

from typing import Optional

from repro.fabric.scheduler import FabricReport, FlowEngine
from repro.fabric.topo import get_topology
from repro.fabric.workload import get_workload
from repro.faults import FaultPlan, available_plans, get_plan
from repro.packet.addresses import MacAddr
from repro.shell.clock import VirtualClock


class ShellError(ValueError):
    """An operator error: bad argument, wrong phase, unknown name."""


class ExpectFailed(AssertionError):
    """A scripted ``expect`` assertion did not hold."""


def _one_hot_port(value: int) -> int:
    """CAM values are SUME one-hot port bytes (phys port *i* is bit
    ``2i``, odd bits are DMA queues); recover the physical index."""
    return (value.bit_length() - 1) // 2


class ShellSession:
    """One interactive emulation session over a live fabric."""

    def __init__(
        self,
        topo: str = "leaf-spine",
        workload: str = "uniform-small",
        seed: int = 0,
        plan: Optional[str] = None,
        frr: bool = False,
        int_all: bool = False,
        fastpath: bool = True,
        warp: bool = True,
    ):
        self.clock = VirtualClock(warp=warp)
        self.engine: Optional[FlowEngine] = None
        self._report: Optional[FabricReport] = None
        self.topology = None
        self.topo_name = topo
        self.workload_name = workload
        self.seed = seed
        self.plan: Optional[FaultPlan] = None
        self.frr = frr
        self.int_all = int_all
        self.fastpath = fastpath
        self.build(topo, workload, seed)
        if plan is not None:
            self.faults_arm(plan)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def build(
        self,
        topo: Optional[str] = None,
        workload: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> dict:
        """(Re)build the fabric; discards any previous run.

        A fresh build is required before a second ``start``: device
        counters are cumulative, so re-running a workload over a used
        fabric would fingerprint differently from the batch run it is
        supposed to mirror.
        """
        if topo is not None:
            self.topo_name = topo
        if workload is not None:
            self.workload_name = workload
        if seed is not None:
            self.seed = seed
        self.spec = get_topology(self.topo_name)
        self.workload = get_workload(self.workload_name).with_seed(self.seed)
        self.topology = self.spec.build()
        self.topology.learn()
        if self.frr:
            self.topology.install_backups()
        self.engine = None
        self._report = None
        return {
            "topology": self.topology.key,
            "workload": self.workload.key,
            "seed": self.seed,
            "devices": len(self.topology.network.device_names()),
            "hosts": len(self.topology.hosts),
        }

    def start(self) -> dict:
        """Admit the workload and hand the cycle domain to the clock.

        No event dispatches yet — follow with ``run`` / ``step`` /
        ``run-until``.  One run per build (see :meth:`build`).
        """
        if self.engine is not None and not self.engine.finished:
            raise ShellError("a run is already active; `finish` it first")
        if self._report is not None or self.engine is not None:
            raise ShellError(
                "this fabric already carried a run; `build` a fresh one first"
            )
        if not self.fastpath:
            self.topology.network.set_fastpath(False)
        self.engine = FlowEngine(
            self.topology, self.workload, self.plan,
            frr=self.frr, int_all=self.int_all, fastpath=self.fastpath,
            clock=self.clock,
        )
        return self.status()

    def finish(self) -> dict:
        """Drain whatever is left and close the run's report."""
        engine = self._need_engine()
        self._report = engine.report()
        return self.stats()

    @property
    def report(self) -> Optional[FabricReport]:
        return self._report

    def fingerprint(self) -> str:
        """The finished run's fingerprint (finishing it if needed)."""
        if self._report is None:
            self.finish()
        return self._report.fingerprint()

    def _need_engine(self) -> FlowEngine:
        if self.engine is None:
            raise ShellError("no active run; `start` one first")
        return self.engine

    # ------------------------------------------------------------------
    # Virtual-time control
    # ------------------------------------------------------------------
    def pause(self) -> dict:
        self.clock.pause()
        return self.clock.stats()

    def resume(self) -> dict:
        self.clock.resume()
        return self.clock.stats()

    def warp(self, enabled: bool) -> dict:
        self.clock.set_warp(enabled)
        return self.clock.stats()

    def step(self, events: int = 1) -> dict:
        """Dispatch up to ``events`` heap events, pause or not."""
        if events < 1:
            raise ShellError("step count must be >= 1")
        engine = self._need_engine()
        dispatched = engine.step(events)
        return {"dispatched": dispatched, **self.status()}

    def run(self) -> dict:
        """Dispatch until the run finishes or the clock is paused."""
        engine = self._need_engine()
        self.clock.resume()
        dispatched = engine.run()
        return {"dispatched": dispatched, **self.status()}

    def run_until(self, tick: int) -> dict:
        """Dispatch everything scheduled up to ``tick``, then idle to it."""
        if tick < 0:
            raise ShellError("run-until cycle must be >= 0")
        engine = self._need_engine()
        dispatched = engine.run_until(tick=tick)
        return {"dispatched": dispatched, **self.status()}

    # ------------------------------------------------------------------
    # Observation (non-perturbing)
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Where the session stands: clock ledger + engine progress."""
        out = {
            "topology": self.topology.key,
            "workload": self.workload.key,
            "seed": self.seed,
            "plan": self.plan.name if self.plan is not None else None,
            "frr": self.frr,
            "int_all": self.int_all,
            "fastpath": self.fastpath,
            "clock": self.clock.stats(),
            "finished": self._report is not None,
        }
        if self.engine is not None:
            out["engine"] = self.engine.snapshot()
            out["finished"] = self.engine.finished
        return out

    def devices(self) -> list[str]:
        return self.topology.network.device_names()

    def describe(self) -> str:
        return self.topology.describe()

    def pingall(self) -> dict:
        """Data-plane reachability of every host pair, sandboxed."""
        pings = self.topology.pingall()
        unreachable = sorted(
            pair for pair, ping in pings.items() if not ping.delivered
        )
        duplicated = sorted(
            pair for pair, ping in pings.items() if ping.copies > 1
        )
        return {
            "pairs": len(pings),
            "delivered": sum(1 for p in pings.values() if p.delivered),
            "unreachable": unreachable,
            "duplicated": duplicated,
            "max_hops": max((p.hops for p in pings.values()), default=0),
            "pings": pings,
        }

    def reach(self) -> dict:
        """Graph-level reachability (wiring only) for every host pair."""
        matrix = self.topology.reachability_matrix()
        partitioned = sorted(pair for pair, ok in matrix.items() if not ok)
        return {
            "pairs": len(matrix),
            "connected": sum(1 for ok in matrix.values() if ok),
            "partitioned": partitioned,
            "matrix": matrix,
        }

    def tables(self, device: str) -> dict:
        """One device's CAM/backup/cache state, software-readable."""
        project = self.topology.network.device(device)  # raises on unknown
        out: dict = {"device": device, "counters": dict(project.opl.counters)}
        mac_table = getattr(project, "mac_table", None)
        if mac_table is not None:
            out["mac_table"] = [
                (str(MacAddr(key)), _one_hot_port(value))
                for key, value in mac_table
            ]
        backup = getattr(project, "backup_table", None)
        if backup is not None:
            out["backup_table"] = [
                (str(MacAddr(key)), _one_hot_port(value))
                for key, value in backup
            ]
        cache = getattr(project, "fastpath", None)
        if cache is not None:
            out["flow_cache"] = {
                "entries": len(cache.entries),
                "hits": cache.hits,
                "misses": cache.misses,
            }
        return out

    def int_paths(self) -> dict:
        """Receiver-side INT view of the active run, live."""
        engine = self._need_engine()
        if engine.collector is None:
            raise ShellError(
                "no INT flows in this run; start with int_all or an "
                "INT-carrying workload"
            )
        summary = engine.collector.summary()
        return {
            "paths": summary["paths"],
            "reroutes": summary["reroutes"],
            "reroute_links": summary["reroute_links"],
            "stamps": summary["stamps"],
        }

    def frr_status(self) -> dict:
        """Backup coverage and live reroute/blackhole counters."""
        from repro.frr.backup import backup_coverage

        down = sorted(
            (a.device, b.device)
            for a, b in self.topology.network.links()
            if not self.topology.network.link_is_up(a.device, b.device)
        )
        return {
            "installed": self.frr,
            "coverage": backup_coverage(self.topology) if self.frr else 0.0,
            "links_down": down,
            "reroutes": self.topology.device_counters("frr_reroute"),
            "blackholed": self.topology.device_counters("frr_blackhole"),
        }

    def metrics(self) -> dict[str, float]:
        """The run's telemetry series, as a registry snapshot.

        A finished run feeds its full report; an active run publishes
        its live progress counters under the same namespace.
        """
        from repro.telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        if self._report is not None:
            self._report.feed(registry)
        elif self.engine is not None:
            snap = self.engine.snapshot()
            progress = registry.counter(
                "fabric_progress", "Live fabric run progress",
                labelnames=("stage",),
            )
            for stage in ("attempted", "delivered", "lost",
                          "events_dispatched", "pending_events"):
                progress.labels(stage).inc(snap.get(stage, 0))
        return registry.snapshot()

    def stats(self) -> dict:
        """The flat key space ``expect`` asserts against."""
        clock = self.clock.stats()
        out = {
            "now": clock["now"],
            "warp": clock["warp"],
            "paused": clock["paused"],
            "ticks_warped": clock["ticks_warped"],
            "frr": self.frr,
            "finished": self._report is not None,
        }
        if self._report is not None:
            report = self._report
            out.update(
                attempted=report.attempted,
                delivered=report.delivered,
                lost=report.lost,
                blackholed=sum(
                    r.blackholed for r in report.records
                ),
                misdelivered=report.misdelivered,
                reroutes=sum(report.device_reroutes.values()),
                healthy=report.healthy(),
                fingerprint=report.fingerprint(),
            )
        elif self.engine is not None:
            snap = self.engine.snapshot()
            out.update(
                attempted=snap.get("attempted", 0),
                delivered=snap.get("delivered", 0),
                lost=snap.get("lost", 0),
                blackholed=snap.get("blackholed", 0),
                misdelivered=snap.get("misdelivered", 0),
                reroutes=sum(
                    self.topology.device_counters("frr_reroute").values()
                ),
                pending=snap["pending_events"],
                finished=snap["finished"],
            )
        return out

    # ------------------------------------------------------------------
    # Mutation (the live-fault surface — these DO move observables)
    # ------------------------------------------------------------------
    def link(self, a: str, b: str, up: bool) -> dict:
        """Pull or re-seat the cable between two devices, mid-run."""
        changed = self.topology.network.set_link_state(a, b, up)
        return {"link": (a, b), "up": up, "changed": changed}

    def inject(self, src: str, dst: str, count: int = 1) -> dict:
        """Send ``count`` probe frames from one host to another, live.

        Unlike :meth:`pingall` this is *real* traffic: device counters
        move, so a session that injects no longer mirrors the pure
        batch run.  That is the point — it is the shell's packet gun.
        """
        if count < 1:
            raise ShellError("inject count must be >= 1")
        hosts = self.topology.hosts
        for name in (src, dst):
            if name not in hosts:
                raise ShellError(
                    f"unknown host {name!r}; "
                    f"hosts: {tuple(self.topology.host_names())}"
                )
        if src == dst:
            raise ShellError("source and destination host must differ")
        frame = self.topology.probe_frame(src, dst)
        s, d = hosts[src], hosts[dst]
        delivered = 0
        hops = 0
        for _ in range(count):
            result = self.topology.network.inject(s.device, s.port, frame)
            for delivery in result:
                if (delivery.at.device == d.device
                        and delivery.at.port.index == d.port):
                    delivered += 1
                    hops = max(hops, delivery.hops)
        return {"sent": count, "delivered": delivered, "max_hops": hops}

    def faults_arm(self, preset: str) -> dict:
        """Arm a fault plan for the *next* start.

        Plans parameterize the whole run's derived fault streams, so
        they arm between builds and starts — the live mid-run fault
        surface is ``link down|up`` and ``inject``.
        """
        if self.engine is not None:
            raise ShellError(
                "faults arm applies to the next start; this fabric already "
                "has a run (use `link down` for live faults, or `build` "
                "fresh)"
            )
        try:
            self.plan = get_plan(preset, seed=self.seed)
        except ValueError:
            raise ShellError(
                f"unknown fault plan {preset!r}; "
                f"available: {tuple(available_plans())}"
            ) from None
        return {"plan": self.plan.name, "seed": self.seed}

    def frr_on(self) -> dict:
        """Install loop-free backup next-hops for the next start."""
        if self.engine is not None:
            raise ShellError(
                "frr on applies to the next start; `build` a fresh fabric"
            )
        self.frr = True
        self.topology.install_backups()
        return self.frr_status()

    # ------------------------------------------------------------------
    # Assertions (script mode's teeth)
    # ------------------------------------------------------------------
    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        ">=": lambda a, b: a >= b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        "<": lambda a, b: a < b,
    }

    @staticmethod
    def _parse_value(text: str):
        if text in ("True", "true"):
            return True
        if text in ("False", "false"):
            return False
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text

    def expect(self, key: str, op: str, value: str) -> dict:
        """Assert ``stats()[key] <op> value``; raise on miss."""
        if op not in self._OPS:
            raise ShellError(
                f"unknown operator {op!r}; one of {tuple(self._OPS)}"
            )
        stats = self.stats()
        if key not in stats:
            raise ShellError(
                f"unknown stat {key!r}; available: {tuple(sorted(stats))}"
            )
        actual = stats[key]
        if not self._OPS[op](actual, self._parse_value(value)):
            raise ExpectFailed(
                f"expect {key} {op} {value} failed: actual {actual!r}"
            )
        return {"key": key, "op": op, "value": value, "actual": actual}
