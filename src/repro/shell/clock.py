"""The virtual clock: the fabric's cycle domain as a first-class object.

Batch runs (:func:`repro.fabric.scheduler.run_flows`) free-run: the
event heap is drained as fast as Python will go and "time" is just the
tick stamped on each event.  Interactive emulation wants the opposite —
the cycle domain must be *ownable*: pausable, single-steppable, and
compressible (skip the idle cycles between scheduled events so an
hour-long soak replays in seconds, the way an event-driven simulator
outruns a cycle-driven one).

:class:`VirtualClock` is that owner.  The fabric scheduler's stepping
engine calls :meth:`advance_to` before dispatching each event; the
clock then either *walks* tick by tick (``warp=False`` — every cycle is
visited and every registered tick hook runs, the cycle-driven
behaviour) or *warps* (``warp=True`` — idle cycles between events are
skipped in O(1) and only accounted).  Either way the event order, and
with it every observable the :class:`~repro.fabric.scheduler.FabricReport`
fingerprints, is untouched: the clock decides how fast virtual time
passes, never what happens in it.  Tick hooks are observers (telemetry
watches, progress meters) — they are *not* part of the determinism
contract and are skipped over warped spans.

``paused`` is advisory: a paused clock makes the engine's ``run()``
yield control back to the caller (the shell's ``pause`` command); it
never blocks ``step``/``run_until``, which are explicit user motion.
"""

from __future__ import annotations

from typing import Callable

#: Signature of a tick hook: called with the cycle just entered.
TickHook = Callable[[int], None]


class VirtualClock:
    """Owns a virtual cycle domain: pause, step, warp.

    ``now`` is the current cycle.  ``ticks_walked`` counts cycles the
    clock visited one by one (hooks ran); ``ticks_warped`` counts idle
    cycles it skipped over.  ``now == start + ticks_walked +
    ticks_warped`` always holds.
    """

    def __init__(self, warp: bool = False, start: int = 0):
        self.now = start
        self.warp = warp
        self.paused = False
        self.ticks_walked = 0
        self.ticks_warped = 0
        self._hooks: list[TickHook] = []

    # ------------------------------------------------------------------
    # Control surface (the shell's pause / resume / warp commands)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Ask the engine's free-running ``run()`` to yield after the
        current event.  Explicit ``step``/``run_until`` still move."""
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def set_warp(self, enabled: bool) -> None:
        """Toggle idle-cycle compression for *future* advances."""
        self.warp = enabled

    def on_tick(self, hook: TickHook) -> TickHook:
        """Register an observer called once per walked cycle.

        Hooks never run for warped (skipped) cycles and must not mutate
        anything observable — they exist for watching, not steering.
        """
        self._hooks.append(hook)
        return hook

    # ------------------------------------------------------------------
    # The engine-facing edge
    # ------------------------------------------------------------------
    def advance_to(self, tick: int) -> int:
        """Move virtual time forward to ``tick``; returns cycles moved.

        Time never runs backwards: a ``tick`` at or before ``now`` is a
        no-op (events scheduled in the same cycle dispatch back to
        back).  Warped advances jump in O(1); walked advances visit
        every cycle and run the tick hooks.
        """
        delta = tick - self.now
        if delta <= 0:
            return 0
        if self.warp:
            self.ticks_warped += delta
            self.now = tick
        else:
            for _ in range(delta):
                self.now += 1
                self.ticks_walked += 1
                for hook in self._hooks:
                    hook(self.now)
        return delta

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | bool]:
        """The clock's ledger, shell-``status``-shaped."""
        return {
            "now": self.now,
            "warp": self.warp,
            "paused": self.paused,
            "ticks_walked": self.ticks_walked,
            "ticks_warped": self.ticks_warped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        mode = "warp" if self.warp else "walk"
        state = "paused" if self.paused else "running"
        return f"<VirtualClock now={self.now} {mode} {state}>"
