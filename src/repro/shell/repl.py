"""The line-oriented front end over :class:`~repro.shell.session.ShellSession`.

One command per line, ``shlex``-split, ``#`` starts a comment.  The
same dispatcher serves both faces:

* :func:`interact` — the ``nf-mon shell`` prompt (prompt suppressed
  when stdin is not a TTY, so piped input works);
* :func:`run_script` — deterministic replay of a ``.nfsh`` command
  file (``nf-mon shell --script``), stop-on-error with the session's
  error taxonomy mapped to exit codes: operator errors → 2, failed
  ``expect`` assertions (or an unhealthy ``finish``) → 1, clean → 0.

Every command renders from the structured dict its
:class:`ShellSession` method returned — the REPL adds no semantics of
its own, which is what keeps scripted sessions byte-identical to the
API calls the tests make.
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Iterable, Optional, TextIO

from repro.faults import available_plans
from repro.shell.session import ExpectFailed, ShellError, ShellSession
from repro.testenv.topology import TopologyError

#: command name -> one-line usage+summary, in help order.
COMMANDS: dict[str, str] = {
    "help": "help — list commands",
    "status": "status — clock ledger and run progress",
    "build": "build [topo] [workload] [seed] — (re)build the fabric",
    "devices": "devices — list device names",
    "describe": "describe — fabric wiring summary",
    "pingall": "pingall — sandboxed all-pairs data-plane reachability",
    "reach": "reach — graph-level reachability over live cables",
    "tables": "tables <device> — CAM / backup / flow-cache dump",
    "link": "link down|up <devA> <devB> — pull or re-seat a cable",
    "inject": "inject <srcHost> <dstHost> [count] — send live frames",
    "faults": "faults arm <preset> — arm a fault plan for the next start",
    "frr": "frr on|status — install backups / show reroute state",
    "int": "int paths — receiver-side INT paths and reroutes",
    "start": "start — admit the workload (no events dispatch yet)",
    "run": "run — dispatch until finished or paused",
    "run-until": "run-until <cycle> — dispatch and idle up to a cycle",
    "step": "step [N] — dispatch N heap events (default 1)",
    "pause": "pause — make `run` yield after the current event",
    "resume": "resume — clear the pause flag",
    "warp": "warp on|off — compress idle cycles (on) or walk them (off)",
    "metrics": "metrics — telemetry registry snapshot",
    "stats": "stats — the flat key space `expect` asserts against",
    "finish": "finish — drain the run and close its report",
    "fingerprint": "fingerprint — the finished run's report fingerprint",
    "expect": "expect <key> <op> <value> — assert against stats",
    "echo": "echo <text> — print the text (script narration)",
    "quit": "quit — leave the shell (also: exit, EOF)",
}


class NfshCompleter:
    """Tab-completion for the interactive prompt.

    The readline ``complete(text, state)`` protocol wraps the pure
    :meth:`candidates`, so the pools are unit-testable without a TTY
    or the ``readline`` module.  The first word completes against
    :data:`COMMANDS`; later words complete against what that argument
    slot actually accepts — fixed keywords (``link down|up``), switch
    and host names from the live session, fault-plan presets.  Pools
    are resolved per keystroke, so a ``build`` that changes the
    topology changes the completions too.
    """

    #: (command, argument index) -> fixed keyword pool.
    _KEYWORDS: dict[tuple[str, int], tuple[str, ...]] = {
        ("link", 1): ("down", "up"),
        ("warp", 1): ("on", "off"),
        ("frr", 1): ("on", "status"),
        ("faults", 1): ("arm",),
        ("int", 1): ("paths",),
    }
    #: argument slots that take a switch name
    _DEVICE_SLOTS = frozenset({("tables", 1), ("link", 2), ("link", 3)})
    #: argument slots that take a host name
    _HOST_SLOTS = frozenset({("inject", 1), ("inject", 2)})

    def __init__(self, session: ShellSession):
        self.session = session
        self._matches: list[str] = []

    # ------------------------------------------------------------------
    def candidates(self, line: str, text: str) -> list[str]:
        """Completions for ``text``, the word being typed at the end of
        ``line`` (empty ``text`` means a fresh word)."""
        words = line.split()
        at_fresh_word = not words or line[-1:].isspace()
        slot = len(words) if at_fresh_word else len(words) - 1
        pool: Iterable[str]
        if slot == 0:
            pool = (*COMMANDS, "exit")
        else:
            key = (words[0], slot)
            if key in self._KEYWORDS:
                pool = self._KEYWORDS[key]
            elif key in self._DEVICE_SLOTS:
                pool = self._devices()
            elif key in self._HOST_SLOTS:
                pool = self._hosts()
            elif key == ("faults", 2):
                pool = available_plans()
            else:
                pool = ()
        return sorted(name for name in pool if name.startswith(text))

    def _devices(self) -> Iterable[str]:
        try:
            return self.session.devices()
        except Exception:
            return ()

    def _hosts(self) -> Iterable[str]:
        try:
            return sorted(self.session.topology.hosts)
        except Exception:
            return ()

    # ------------------------------------------------------------------
    def complete(self, text: str, state: int) -> Optional[str]:
        """The ``readline`` completer entry point."""
        if state == 0:
            try:
                import readline
                line = readline.get_line_buffer()[:readline.get_endidx()]
            except Exception:
                line = text
            self._matches = self.candidates(line, text)
        return self._matches[state] if state < len(self._matches) else None


def _install_readline(completer: NfshCompleter) -> None:
    """Arm tab-completion on the TTY path; a no-op without readline."""
    try:
        import readline
    except ImportError:  # pragma: no cover - platform without readline
        return
    readline.set_completer_delims(" \t")
    readline.set_completer(completer.complete)
    readline.parse_and_bind("tab: complete")


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _kv_lines(data: dict, skip: tuple[str, ...] = ()) -> list[str]:
    lines = []
    for key, value in data.items():
        if key in skip or isinstance(value, (dict, list, tuple)):
            continue
        lines.append(f"  {key}: {_fmt(value)}")
    return lines


class Repl:
    """Parses lines, calls the session, renders the results."""

    def __init__(self, session: ShellSession, out: Optional[TextIO] = None):
        self.session = session
        # Resolved at call time, not import time, so host tools that
        # swap sys.stdout (tests, redirections) are honoured.
        self.out = sys.stdout if out is None else out
        self.done = False

    def _print(self, *lines: str) -> None:
        for line in lines:
            print(line, file=self.out)

    # ------------------------------------------------------------------
    def execute(self, line: str) -> None:
        """Run one command line; session errors propagate to the caller."""
        words = shlex.split(line, comments=True)
        if not words:
            return
        name, args = words[0], words[1:]
        handler: Optional[Callable[[list[str]], None]] = getattr(
            self, f"_cmd_{name.replace('-', '_')}", None
        )
        if handler is None:
            raise ShellError(
                f"unknown command {name!r}; try `help`"
            )
        handler(args)

    # -- meta ----------------------------------------------------------
    def _cmd_help(self, args: list[str]) -> None:
        self._print(*(f"  {usage}" for usage in COMMANDS.values()))

    def _cmd_echo(self, args: list[str]) -> None:
        self._print(" ".join(args))

    def _cmd_quit(self, args: list[str]) -> None:
        self.done = True

    def _cmd_exit(self, args: list[str]) -> None:
        self.done = True

    # -- lifecycle -----------------------------------------------------
    def _cmd_build(self, args: list[str]) -> None:
        if len(args) > 3:
            raise ShellError("usage: build [topo] [workload] [seed]")
        seed = None
        if len(args) == 3:
            seed = self._int(args[2], "seed")
        info = self.session.build(
            args[0] if len(args) >= 1 else None,
            args[1] if len(args) >= 2 else None,
            seed,
        )
        self._print(
            f"built {info['topology']} ({info['devices']} devices, "
            f"{info['hosts']} hosts), workload {info['workload']} "
            f"seed {info['seed']}"
        )

    def _cmd_start(self, args: list[str]) -> None:
        status = self.session.start()
        engine = status["engine"]
        self._print(
            f"started: {engine['flows_admitted']}/{engine['flows_total']} "
            f"flows admitted, {engine['pending_events']} events pending"
        )

    def _cmd_finish(self, args: list[str]) -> None:
        stats = self.session.finish()
        self._print("finished:")
        self._print(*_kv_lines(stats, skip=("warp", "paused")))

    def _cmd_fingerprint(self, args: list[str]) -> None:
        self._print(self.session.fingerprint())

    # -- virtual time --------------------------------------------------
    def _cmd_pause(self, args: list[str]) -> None:
        self.session.pause()
        self._print("paused")

    def _cmd_resume(self, args: list[str]) -> None:
        self.session.resume()
        self._print("resumed")

    def _cmd_warp(self, args: list[str]) -> None:
        if args not in (["on"], ["off"]):
            raise ShellError("usage: warp on|off")
        stats = self.session.warp(args == ["on"])
        self._print(f"warp {'on' if stats['warp'] else 'off'} "
                    f"(cycle {stats['now']})")

    def _cmd_step(self, args: list[str]) -> None:
        if len(args) > 1:
            raise ShellError("usage: step [N]")
        count = self._int(args[0], "step count") if args else 1
        result = self.session.step(count)
        self._report_motion(result)

    def _cmd_run(self, args: list[str]) -> None:
        result = self.session.run()
        self._report_motion(result)

    def _cmd_run_until(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ShellError("usage: run-until <cycle>")
        result = self.session.run_until(self._int(args[0], "cycle"))
        self._report_motion(result)

    def _report_motion(self, result: dict) -> None:
        engine = result["engine"]
        state = "finished" if result["finished"] else (
            "paused" if result["clock"]["paused"] else "idle")
        self._print(
            f"{result['dispatched']} events dispatched, cycle "
            f"{result['clock']['now']}, {engine['pending_events']} pending "
            f"({state}); delivered {engine.get('delivered', 0)} "
            f"lost {engine.get('lost', 0)}"
        )

    # -- observation ---------------------------------------------------
    def _cmd_status(self, args: list[str]) -> None:
        status = self.session.status()
        self._print(
            f"{status['topology']} × {status['workload']} seed "
            f"{status['seed']} plan {status['plan'] or '-'} "
            f"frr {_fmt(status['frr'])} fastpath {_fmt(status['fastpath'])}"
        )
        clock = status["clock"]
        self._print(
            f"  clock: cycle {clock['now']} warp {_fmt(clock['warp'])} "
            f"paused {_fmt(clock['paused'])} walked {clock['ticks_walked']} "
            f"warped {clock['ticks_warped']}"
        )
        if "engine" in status:
            self._print("  engine:", *(
                f"    {k}: {_fmt(v)}" for k, v in status["engine"].items()
                if v is not None
            ))

    def _cmd_devices(self, args: list[str]) -> None:
        self._print(" ".join(self.session.devices()))

    def _cmd_describe(self, args: list[str]) -> None:
        self._print(self.session.describe())

    def _cmd_pingall(self, args: list[str]) -> None:
        result = self.session.pingall()
        self._print(
            f"pingall: {result['delivered']}/{result['pairs']} pairs "
            f"delivered, max {result['max_hops']} hops"
        )
        for src, dst in result["unreachable"]:
            self._print(f"  UNREACHABLE {src} -> {dst}")
        for src, dst in result["duplicated"]:
            self._print(f"  DUPLICATED {src} -> {dst}")

    def _cmd_reach(self, args: list[str]) -> None:
        result = self.session.reach()
        self._print(
            f"reach: {result['connected']}/{result['pairs']} pairs "
            f"connected by live cables"
        )
        for src, dst in result["partitioned"]:
            self._print(f"  PARTITIONED {src} -> {dst}")

    def _cmd_tables(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ShellError("usage: tables <device>")
        try:
            tables = self.session.tables(args[0])
        except TopologyError as exc:
            raise ShellError(str(exc)) from None
        self._print(f"{tables['device']}:")
        for label in ("mac_table", "backup_table"):
            if label in tables:
                self._print(f"  {label} ({len(tables[label])} entries):")
                for mac, port in tables[label]:
                    self._print(f"    {mac} -> port {port}")
        if "flow_cache" in tables:
            cache = tables["flow_cache"]
            self._print(
                f"  flow_cache: {cache['entries']} entries, "
                f"{cache['hits']} hits, {cache['misses']} misses"
            )
        counters = {k: v for k, v in tables["counters"].items() if v}
        if counters:
            self._print("  counters:")
            for key, value in sorted(counters.items()):
                self._print(f"    {key}: {value}")

    def _cmd_int(self, args: list[str]) -> None:
        if args != ["paths"]:
            raise ShellError("usage: int paths")
        result = self.session.int_paths()
        self._print(f"int: {result['stamps']} stamps")
        for path, count in result["paths"].items():
            self._print(f"  {path}: {count}")
        for link, count in result["reroute_links"].items():
            self._print(f"  rerouted around {link}: {count}")

    def _cmd_metrics(self, args: list[str]) -> None:
        for name, value in sorted(self.session.metrics().items()):
            self._print(f"  {name} {_fmt(value)}")

    def _cmd_stats(self, args: list[str]) -> None:
        self._print(*_kv_lines(self.session.stats()))

    # -- mutation ------------------------------------------------------
    def _cmd_link(self, args: list[str]) -> None:
        if len(args) != 3 or args[0] not in ("down", "up"):
            raise ShellError("usage: link down|up <devA> <devB>")
        try:
            result = self.session.link(args[1], args[2], args[0] == "up")
        except TopologyError as exc:
            raise ShellError(str(exc)) from None
        a, b = result["link"]
        state = "up" if result["up"] else "down"
        note = "" if result["changed"] else " (already)"
        self._print(f"link {a}~{b} {state}{note}")

    def _cmd_inject(self, args: list[str]) -> None:
        if len(args) not in (2, 3):
            raise ShellError("usage: inject <srcHost> <dstHost> [count]")
        count = self._int(args[2], "count") if len(args) == 3 else 1
        result = self.session.inject(args[0], args[1], count)
        self._print(
            f"injected {result['sent']}, delivered {result['delivered']}, "
            f"max {result['max_hops']} hops"
        )

    def _cmd_faults(self, args: list[str]) -> None:
        if len(args) != 2 or args[0] != "arm":
            raise ShellError("usage: faults arm <preset>")
        result = self.session.faults_arm(args[1])
        self._print(f"armed plan {result['plan']} (seed {result['seed']})")

    def _cmd_frr(self, args: list[str]) -> None:
        if args == ["on"]:
            result = self.session.frr_on()
            self._print(f"frr on: coverage {result['coverage']:.3f}")
            return
        if args == ["status"]:
            result = self.session.frr_status()
            self._print(
                f"frr {'installed' if result['installed'] else 'off'}, "
                f"coverage {result['coverage']:.3f}"
            )
            for a, b in result["links_down"]:
                self._print(f"  link down: {a}~{b}")
            for device, count in sorted(result["reroutes"].items()):
                self._print(f"  {device}: {count} rerouted")
            for device, count in sorted(result["blackholed"].items()):
                self._print(f"  {device}: {count} blackholed")
            return
        raise ShellError("usage: frr on|status")

    def _cmd_expect(self, args: list[str]) -> None:
        if len(args) != 3:
            raise ShellError("usage: expect <key> <op> <value>")
        result = self.session.expect(*args)
        self._print(
            f"ok: {result['key']} {result['op']} {result['value']} "
            f"(actual {_fmt(result['actual'])})"
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _int(text: str, what: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise ShellError(f"{what} must be an integer, got {text!r}") \
                from None


def run_script(
    session: ShellSession,
    lines: Iterable[str],
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Replay a ``.nfsh`` command file; stop on the first error.

    Exit codes: 0 clean, 1 failed ``expect``, 2 operator error — the
    contract the shell-smoke CI job scripts against.
    """
    err = sys.stderr if err is None else err
    repl = Repl(session, out=out)
    for lineno, line in enumerate(lines, start=1):
        try:
            repl.execute(line)
        except ExpectFailed as exc:
            print(f"nfsh:{lineno}: {exc}", file=err)
            return 1
        except (ShellError, ValueError, TopologyError) as exc:
            print(f"nfsh:{lineno}: {exc}", file=err)
            return 2
        if repl.done:
            break
    return 0


def interact(
    session: ShellSession,
    stdin: Optional[TextIO] = None,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """The interactive prompt: errors print and the session continues."""
    stdin = sys.stdin if stdin is None else stdin
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    repl = Repl(session, out=out)
    prompt = "nfsh> " if stdin.isatty() else ""
    if prompt:
        _install_readline(NfshCompleter(session))
    failures = 0
    while not repl.done:
        if prompt:
            out.write(prompt)
            out.flush()
        line = stdin.readline()
        if not line:
            break
        try:
            repl.execute(line)
        except ExpectFailed as exc:
            failures += 1
            print(f"expect failed: {exc}", file=err)
        except (ShellError, ValueError, TopologyError) as exc:
            print(f"error: {exc}", file=err)
    return 1 if failures else 0
