"""Two-pass assembler for the soft core.

Syntax, one instruction per line::

    ; comments with ';' or '#'
    start:                  ; labels end with ':'
        movi  r1, 0         ; registers are r0..r15
        addi  r1, r1, 1
        blt   r1, r2, start ; branch targets may be labels
        sw    r1, r0, 0x20  ; immediates accept decimal / hex / labels
        halt

Branch/JAL label operands are converted to instruction-relative offsets;
everywhere else a label resolves to its absolute instruction index.
"""

from __future__ import annotations

from repro.soft.isa import (
    IMM_MAX,
    IMM_MIN,
    Instruction,
    NUM_REGS,
    Opcode,
    SIGNATURES,
    encode,
)


class AssemblerError(ValueError):
    """A malformed source line, with its line number."""


_RELATIVE_OPS = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JAL}


def _strip(line: str) -> str:
    for marker in (";", "#"):
        if marker in line:
            line = line[: line.index(marker)]
    return line.strip()


def _parse_register(token: str, lineno: int) -> int:
    token = token.lower()
    if not token.startswith("r"):
        raise AssemblerError(f"line {lineno}: expected register, got {token!r}")
    try:
        reg = int(token[1:])
    except ValueError as exc:
        raise AssemblerError(f"line {lineno}: bad register {token!r}") from exc
    if not 0 <= reg < NUM_REGS:
        raise AssemblerError(f"line {lineno}: register {token} out of range")
    return reg


def _parse_imm(token: str, labels: dict[str, int], pc: int, op: Opcode, lineno: int) -> int:
    if token in labels:
        target = labels[token]
        value = target - (pc + 1) if op in _RELATIVE_OPS else target
    else:
        try:
            value = int(token, 0)
        except ValueError as exc:
            raise AssemblerError(
                f"line {lineno}: bad immediate or unknown label {token!r}"
            ) from exc
    if not IMM_MIN <= value <= IMM_MAX:
        raise AssemblerError(f"line {lineno}: immediate {value} does not fit")
    return value


def assemble(source: str) -> list[int]:
    """Assemble ``source`` into a list of instruction words."""
    # Pass 1: strip, collect labels, keep (lineno, mnemonic, operands).
    program: list[tuple[int, str, list[str]]] = []
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(program)
            line = rest.strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        program.append((lineno, parts[0].lower(), parts[1:]))

    # Pass 2: encode.
    words: list[int] = []
    for pc, (lineno, mnemonic, operands) in enumerate(program):
        try:
            op = Opcode[mnemonic.upper()]
        except KeyError as exc:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}") from exc
        signature = SIGNATURES[op]
        if len(operands) != len(signature):
            raise AssemblerError(
                f"line {lineno}: {mnemonic} takes {len(signature)} operands "
                f"({', '.join(signature)}), got {len(operands)}"
            )
        fields: dict[str, int] = {}
        for field, token in zip(signature, operands):
            if field == "imm":
                fields[field] = _parse_imm(token, labels, pc, op, lineno)
            else:
                fields[field] = _parse_register(token, lineno)
        words.append(encode(Instruction(op=op, **fields)))
    return words
