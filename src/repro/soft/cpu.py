"""The soft core itself.

Loads and stores go over an :class:`~repro.core.axilite.AxiLiteInterconnect`
— the same bus, same address map, as host MMIO — plus a private scratch
RAM window.  One instruction retires per :meth:`step` call; the core is
deliberately unpipelined (management firmware is not the datapath).
"""

from __future__ import annotations

from repro.core.axilite import AxiLiteError, AxiLiteInterconnect
from repro.core.module import Resources
from repro.soft.isa import NUM_REGS, Opcode, decode

WORD = 0xFFFFFFFF

#: Scratch RAM: a 4 KiB window high in the address space, kept out of the
#: way of project register windows.
SCRATCH_BASE = 0xFFFF_0000
SCRATCH_SIZE = 0x1000


class CpuFault(RuntimeError):
    """An illegal access or instruction; carries the faulting pc."""


class SoftCore:
    """A 16-register RISC core on the project's control bus."""

    def __init__(self, bus: AxiLiteInterconnect, program: list[int] | None = None):
        self.bus = bus
        self.imem: list[int] = list(program) if program else []
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.cycles = 0
        self.faults: list[str] = []
        self._scratch = bytearray(SCRATCH_SIZE)

    def load_program(self, words: list[int]) -> None:
        self.imem = list(words)
        self.reset()

    def reset(self) -> None:
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.cycles = 0

    # ------------------------------------------------------------------
    # Bus access with the scratch window overlaid
    # ------------------------------------------------------------------
    def _load(self, addr: int) -> int:
        addr &= WORD
        if SCRATCH_BASE <= addr < SCRATCH_BASE + SCRATCH_SIZE:
            offset = addr - SCRATCH_BASE
            return int.from_bytes(self._scratch[offset : offset + 4], "little")
        return self.bus.read(addr)

    def _store(self, addr: int, value: int) -> None:
        addr &= WORD
        if SCRATCH_BASE <= addr < SCRATCH_BASE + SCRATCH_SIZE:
            offset = addr - SCRATCH_BASE
            self._scratch[offset : offset + 4] = (value & WORD).to_bytes(4, "little")
            return
        self.bus.write(addr, value)

    # ------------------------------------------------------------------
    def step(self, max_instructions: int = 1) -> int:
        """Execute up to ``max_instructions``; returns how many retired."""
        retired = 0
        while retired < max_instructions and not self.halted:
            self._step_one()
            retired += 1
        return retired

    def run(self, max_instructions: int = 100_000) -> int:
        """Run until HALT; raises :class:`CpuFault` on runaway firmware."""
        retired = self.step(max_instructions)
        if not self.halted:
            raise CpuFault(
                f"firmware did not halt within {max_instructions} instructions "
                f"(pc={self.pc})"
            )
        return retired

    def _step_one(self) -> None:
        if not 0 <= self.pc < len(self.imem):
            self.halted = True
            self.faults.append(f"pc {self.pc} outside program")
            return
        instr = decode(self.imem[self.pc])
        self.cycles += 1
        regs = self.regs
        next_pc = self.pc + 1
        op = instr.op
        if op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.MOVI:
            regs[instr.rd] = instr.imm & WORD
        elif op is Opcode.LUI:
            regs[instr.rd] = ((instr.imm & WORD) << 18 | (regs[instr.rd] & 0x3FFFF)) & WORD
        elif op is Opcode.ADD:
            regs[instr.rd] = (regs[instr.rs1] + regs[instr.rs2]) & WORD
        elif op is Opcode.SUB:
            regs[instr.rd] = (regs[instr.rs1] - regs[instr.rs2]) & WORD
        elif op is Opcode.AND:
            regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]
        elif op is Opcode.OR:
            regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]
        elif op is Opcode.XOR:
            regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]
        elif op is Opcode.ADDI:
            regs[instr.rd] = (regs[instr.rs1] + instr.imm) & WORD
        elif op is Opcode.SHL:
            regs[instr.rd] = (regs[instr.rs1] << (instr.imm & 31)) & WORD
        elif op is Opcode.SHR:
            regs[instr.rd] = (regs[instr.rs1] & WORD) >> (instr.imm & 31)
        elif op is Opcode.LW:
            addr = (regs[instr.rs1] + instr.imm) & WORD
            try:
                regs[instr.rd] = self._load(addr)
            except AxiLiteError as exc:
                self.halted = True
                self.faults.append(f"load fault at pc {self.pc}: {exc}")
        elif op is Opcode.SW:
            addr = (regs[instr.rs1] + instr.imm) & WORD
            try:
                self._store(addr, regs[instr.rs2])
            except AxiLiteError as exc:
                self.halted = True
                self.faults.append(f"store fault at pc {self.pc}: {exc}")
        elif op is Opcode.BEQ:
            if regs[instr.rs1] == regs[instr.rs2]:
                next_pc = self.pc + 1 + instr.imm
        elif op is Opcode.BNE:
            if regs[instr.rs1] != regs[instr.rs2]:
                next_pc = self.pc + 1 + instr.imm
        elif op is Opcode.BLT:
            lhs = regs[instr.rs1] - (1 << 32) if regs[instr.rs1] >> 31 else regs[instr.rs1]
            rhs = regs[instr.rs2] - (1 << 32) if regs[instr.rs2] >> 31 else regs[instr.rs2]
            if lhs < rhs:
                next_pc = self.pc + 1 + instr.imm
        elif op is Opcode.JAL:
            regs[instr.rd] = self.pc + 1
            next_pc = self.pc + 1 + instr.imm
        elif op is Opcode.JR:
            next_pc = regs[instr.rs1]
        regs[0] = 0  # r0 is hardwired zero, RISC style
        self.pc = next_pc

    def resources(self) -> Resources:
        """A MicroBlaze-class footprint."""
        return Resources(luts=1_900, ffs=1_500, brams=4.0, dsps=3)
