"""Soft-core processor subsystem.

§3: "The software portion contains embedded code (for a soft-core
processor) ...".  This package provides the processor that embedded code
runs on: a small load/store RISC core (:mod:`isa`, :mod:`cpu`) whose
data bus is the project's AXI4-Lite interconnect — so firmware reads the
same statistics registers and writes the same table registers as host
software, just from inside the FPGA.  :mod:`assembler` turns assembly
text into images and :mod:`firmware` ships sample programs.
"""

from repro.soft.assembler import AssemblerError, assemble
from repro.soft.cpu import SoftCore
from repro.soft.isa import (
    Instruction,
    Opcode,
    decode,
    disassemble,
    disassemble_program,
    encode,
)
from repro.soft.firmware import COUNTER_SUM, MEMTEST, blink_program

__all__ = [
    "AssemblerError",
    "assemble",
    "SoftCore",
    "Instruction",
    "Opcode",
    "decode",
    "disassemble",
    "disassemble_program",
    "encode",
    "COUNTER_SUM",
    "MEMTEST",
    "blink_program",
]
