"""The soft core's instruction set.

A 16-register, 32-bit load/store machine, small enough to audit and
sufficient for management firmware.  Encoding (32-bit word)::

    [31:26] opcode   [25:22] rd   [21:18] rs1   [17:14] rs2   [13:0] imm14

``imm14`` is sign-extended for arithmetic/branches and zero-extended for
shifts.  Branch offsets are in *instructions*, relative to the next pc.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.bitfield import mask

NUM_REGS = 16
IMM_BITS = 14
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1


class Opcode(enum.IntEnum):
    NOP = 0
    HALT = 1
    MOVI = 2  # rd = imm (sign-extended)
    LUI = 3  # rd = (rd & 0xFFFF) | (imm << 18) — builds wide constants
    ADD = 4  # rd = rs1 + rs2
    SUB = 5
    AND = 6
    OR = 7
    XOR = 8
    ADDI = 9  # rd = rs1 + imm
    SHL = 10  # rd = rs1 << imm
    SHR = 11  # rd = rs1 >> imm (logical)
    LW = 12  # rd = bus[rs1 + imm]
    SW = 13  # bus[rs1 + imm] = rs2
    BEQ = 14  # if rs1 == rs2: pc += imm
    BNE = 15
    BLT = 16  # signed less-than
    JAL = 17  # rd = pc + 1; pc += imm
    JR = 18  # pc = rs1


#: Which fields each opcode uses — the assembler and disassembler share it.
SIGNATURES: dict[Opcode, tuple[str, ...]] = {
    Opcode.NOP: (),
    Opcode.HALT: (),
    Opcode.MOVI: ("rd", "imm"),
    Opcode.LUI: ("rd", "imm"),
    Opcode.ADD: ("rd", "rs1", "rs2"),
    Opcode.SUB: ("rd", "rs1", "rs2"),
    Opcode.AND: ("rd", "rs1", "rs2"),
    Opcode.OR: ("rd", "rs1", "rs2"),
    Opcode.XOR: ("rd", "rs1", "rs2"),
    Opcode.ADDI: ("rd", "rs1", "imm"),
    Opcode.SHL: ("rd", "rs1", "imm"),
    Opcode.SHR: ("rd", "rs1", "imm"),
    Opcode.LW: ("rd", "rs1", "imm"),
    Opcode.SW: ("rs2", "rs1", "imm"),
    Opcode.BEQ: ("rs1", "rs2", "imm"),
    Opcode.BNE: ("rs1", "rs2", "imm"),
    Opcode.BLT: ("rs1", "rs2", "imm"),
    Opcode.JAL: ("rd", "imm"),
    Opcode.JR: ("rs1",),
}


@dataclass(frozen=True)
class Instruction:
    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for reg in (self.rd, self.rs1, self.rs2):
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"register r{reg} out of range")
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise ValueError(f"immediate {self.imm} outside [{IMM_MIN},{IMM_MAX}]")


def encode(instr: Instruction) -> int:
    imm = instr.imm & mask(IMM_BITS)
    return (
        (int(instr.op) << 26)
        | (instr.rd << 22)
        | (instr.rs1 << 18)
        | (instr.rs2 << 14)
        | imm
    )


def disassemble(word: int) -> str:
    """Render one instruction word as assembly text.

    The output re-assembles to the same word (tested), which makes this
    the debugger's view of firmware images.
    """
    instr = decode(word)
    operands = []
    for field in SIGNATURES[instr.op]:
        if field == "imm":
            operands.append(str(instr.imm))
        else:
            operands.append(f"r{getattr(instr, field)}")
    name = instr.op.name.lower()
    return f"{name} {', '.join(operands)}" if operands else name


def disassemble_program(words: list[int]) -> list[str]:
    """Disassemble a whole image, one line per instruction."""
    return [f"{pc:4d}: {disassemble(word)}" for pc, word in enumerate(words)]


def decode(word: int) -> Instruction:
    opcode_value = (word >> 26) & mask(6)
    try:
        op = Opcode(opcode_value)
    except ValueError as exc:
        raise ValueError(f"illegal opcode {opcode_value} in {word:#010x}") from exc
    imm = word & mask(IMM_BITS)
    if imm >= 1 << (IMM_BITS - 1):
        imm -= 1 << IMM_BITS
    return Instruction(
        op=op,
        rd=(word >> 22) & mask(4),
        rs1=(word >> 18) & mask(4),
        rs2=(word >> 14) & mask(4),
        imm=imm,
    )
