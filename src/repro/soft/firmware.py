"""Sample firmware: the "embedded code" of a reference project.

Programs are assembly source strings; :func:`repro.soft.assembler.assemble`
turns them into images.  Addresses reference the standard project map
(:mod:`repro.projects.base`): the stats block lives at ``0x10000`` with
``{port}_packets`` registers at stride 8.

Wide constants are built with the ``movi``/``shl``/``or`` idiom because
immediates are 14-bit: e.g. scratch base 0xFFFF0000 is
``(-1 << 18) | (3 << 16)``.
"""

from __future__ import annotations

#: Sums the rx packet counters of the 8 rx ports (stats regs at
#: 0x10000 + i*8) into r5, stores the total at scratch[0], halts.
COUNTER_SUM = """
    ; r1 = stats base (0x10000 = 4 << 14)
    movi  r1, 4
    shl   r1, r1, 14
    movi  r2, 0        ; port index
    movi  r3, 8        ; port count
    movi  r5, 0        ; running total
loop:
    lw    r4, r1, 0    ; rx_<port>_packets
    add   r5, r5, r4
    addi  r1, r1, 8    ; next port's packet counter
    addi  r2, r2, 1
    bne   r2, r3, loop
    ; store total to scratch[0] (0xFFFF0000 = (-1 << 18) | (3 << 16))
    movi  r6, -1
    shl   r6, r6, 18
    movi  r7, 3
    shl   r7, r7, 16
    or    r6, r6, r7
    sw    r5, r6, 0
    halt
"""

#: Writes an incrementing pattern into scratch then verifies it,
#: leaving 1 in r10 on success, 0 on mismatch.
MEMTEST = """
    movi  r6, -1
    shl   r6, r6, 18
    movi  r7, 3
    shl   r7, r7, 16
    or    r6, r6, r7   ; r6 = scratch base 0xFFFF0000
    movi  r1, 0        ; index
    movi  r2, 64       ; words
write:
    sw    r1, r6, 0
    addi  r6, r6, 4
    addi  r1, r1, 1
    bne   r1, r2, write
    ; rewind and verify
    movi  r1, 0
    movi  r3, 256      ; 64 words * 4 bytes
    sub   r6, r6, r3
check:
    lw    r4, r6, 0
    bne   r4, r1, fail
    addi  r6, r6, 4
    addi  r1, r1, 1
    bne   r1, r2, check
    movi  r10, 1
    halt
fail:
    movi  r10, 0
    halt
"""


def blink_program(led_register_addr: int, blinks: int) -> str:
    """Generate a program toggling an LED register ``blinks`` times.

    The classic first NetFPGA exercise.  ``led_register_addr`` must fit
    in 13 bits (projects map a GPIO register low for exactly this).
    """
    if not 0 <= led_register_addr < (1 << 13):
        raise ValueError("LED register must sit in the low 8 KiB for imm14")
    if blinks <= 0 or blinks > 8000:
        raise ValueError("blinks must be in 1..8000 (imm14 counter)")
    return f"""
        movi  r1, 0          ; LED state
        movi  r2, 0          ; blink counter
        movi  r3, {blinks}
        movi  r4, 1          ; toggle mask
    blink:
        xor   r1, r1, r4
        sw    r1, r0, {led_register_addr}
        addi  r2, r2, 1
        bne   r2, r3, blink
        halt
    """
