"""Low-level helpers shared by every repro subsystem.

The utilities here deliberately have no dependencies on the simulation
kernel or the board models so that they can be reused by tests, benchmarks
and host-side tooling alike.
"""

from repro.utils.bitfield import BitField, bits_to_bytes, bytes_to_bits, mask
from repro.utils.crc import crc32_ethernet, crc32_update, CRC32_INIT
from repro.utils.units import (
    GBPS,
    KIB,
    MBPS,
    MIB,
    Bandwidth,
    TimeNS,
    format_rate,
    format_size,
)

__all__ = [
    "BitField",
    "bits_to_bytes",
    "bytes_to_bits",
    "mask",
    "crc32_ethernet",
    "crc32_update",
    "CRC32_INIT",
    "GBPS",
    "MBPS",
    "KIB",
    "MIB",
    "Bandwidth",
    "TimeNS",
    "format_rate",
    "format_size",
]
