"""Bit-level packing helpers.

Hardware interfaces (the SUME TUSER side-band, register files, TCAM keys)
are specified as packed bit fields.  ``BitField`` gives those specifications
a single, well-tested home instead of ad-hoc shifting scattered through the
datapath cores.
"""

from __future__ import annotations

from dataclasses import dataclass


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``mask(4) == 0xF``)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bytes_to_bits(data: bytes) -> int:
    """Pack ``data`` little-endian-by-byte into an integer.

    Byte 0 of ``data`` occupies bits [7:0], matching how AXI4-Stream lanes
    map TDATA bytes onto the bus.
    """
    return int.from_bytes(data, "little")


def bits_to_bytes(value: int, length: int) -> bytes:
    """Inverse of :func:`bytes_to_bits`; truncates ``value`` to ``length`` bytes."""
    return (value & mask(length * 8)).to_bytes(length, "little")


@dataclass(frozen=True)
class _Field:
    name: str
    offset: int
    width: int


class BitField:
    """A named layout of contiguous bit fields inside a fixed-width word.

    Fields are declared lowest-offset first, exactly like a Verilog packed
    struct read bottom-up::

        TUSER = BitField(128, [("len", 16), ("src_port", 8), ("dst_port", 8)])
        word = TUSER.pack(len=64, src_port=0b01, dst_port=0b100)
        TUSER.unpack(word)["dst_port"]  # 0b100

    Unused high-order bits are permitted (the word may be wider than the sum
    of the fields); overlapping or oversized layouts raise at construction.
    """

    def __init__(self, width: int, fields: list[tuple[str, int]]):
        if width <= 0:
            raise ValueError(f"word width must be positive, got {width}")
        self.width = width
        self._fields: dict[str, _Field] = {}
        offset = 0
        for name, field_width in fields:
            if field_width <= 0:
                raise ValueError(f"field {name!r} must have positive width")
            if name in self._fields:
                raise ValueError(f"duplicate field name {name!r}")
            self._fields[name] = _Field(name, offset, field_width)
            offset += field_width
        if offset > width:
            raise ValueError(
                f"fields occupy {offset} bits but the word is only {width} wide"
            )

    @property
    def field_names(self) -> list[str]:
        return list(self._fields)

    def field_width(self, name: str) -> int:
        return self._fields[name].width

    def pack(self, **values: int) -> int:
        """Pack keyword field values into a single integer word.

        Unnamed fields default to zero.  A value wider than its field is an
        error rather than a silent truncation — truncation bugs in TUSER
        metadata are exactly what this class exists to prevent.
        """
        word = 0
        for name, value in values.items():
            field = self._fields.get(name)
            if field is None:
                raise KeyError(f"unknown field {name!r}; have {self.field_names}")
            if value < 0 or value > mask(field.width):
                raise ValueError(
                    f"value {value:#x} does not fit field {name!r} "
                    f"({field.width} bits)"
                )
            word |= value << field.offset
        return word

    def packer(self, *names: str):
        """Compile a positional fast packer for a fixed field subset.

        ``pack(**values)`` re-resolves field names and rebuilds a kwargs
        dict on every call — measurable on per-packet hot paths like the
        TUSER build in behavioural forwarding.  ``packer("len",
        "src_port")`` resolves the layout once and returns a closure
        taking the values positionally, with validation (and error
        messages) identical to :meth:`pack`.
        """
        specs = []
        for name in names:
            field = self._fields.get(name)
            if field is None:
                raise KeyError(f"unknown field {name!r}; have {self.field_names}")
            specs.append((name, field.offset, field.width, mask(field.width)))

        def pack(*values: int) -> int:
            if len(values) != len(specs):
                raise TypeError(
                    f"packer takes {len(specs)} values, got {len(values)}"
                )
            word = 0
            for (name, offset, width, field_mask), value in zip(specs, values):
                if value < 0 or value > field_mask:
                    raise ValueError(
                        f"value {value:#x} does not fit field {name!r} "
                        f"({width} bits)"
                    )
                word |= value << offset
            return word

        return pack

    def unpack(self, word: int) -> dict[str, int]:
        """Split ``word`` into a ``{field: value}`` dict."""
        if word < 0 or word > mask(self.width):
            raise ValueError(f"word {word:#x} does not fit in {self.width} bits")
        return {
            f.name: (word >> f.offset) & mask(f.width) for f in self._fields.values()
        }

    def extract(self, word: int, name: str) -> int:
        """Read a single field out of ``word``."""
        field = self._fields[name]
        return (word >> field.offset) & mask(field.width)

    def insert(self, word: int, name: str, value: int) -> int:
        """Return ``word`` with field ``name`` replaced by ``value``."""
        field = self._fields[name]
        if value < 0 or value > mask(field.width):
            raise ValueError(
                f"value {value:#x} does not fit field {name!r} ({field.width} bits)"
            )
        cleared = word & ~(mask(field.width) << field.offset)
        return cleared | (value << field.offset)
