"""CRC-32 as used by Ethernet FCS (IEEE 802.3), implemented from scratch.

The polynomial is the reflected form 0xEDB88320; the Ethernet FCS is the
bit-reversed, complemented remainder transmitted least-significant byte
first.  A 256-entry table is built once at import time.
"""

from __future__ import annotations

CRC32_POLY = 0xEDB88320
CRC32_INIT = 0xFFFFFFFF


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32_update(crc: int, data: bytes) -> int:
    """Fold ``data`` into a running CRC state (state, not final value)."""
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc


def crc32_ethernet(data: bytes) -> int:
    """Return the Ethernet FCS of ``data`` as a 32-bit integer.

    Appending ``fcs.to_bytes(4, "little")`` to the frame yields a stream
    whose residue verifies at the receiver — the property the MAC models
    and tests rely on.
    """
    return crc32_update(CRC32_INIT, data) ^ 0xFFFFFFFF
