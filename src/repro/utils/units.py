"""Units used throughout the board models.

All internal rates are bits/second and all internal times are nanoseconds,
held as plain floats.  The tiny wrapper types exist to make signatures
self-documenting (``def serialize(rate: Bandwidth)``) without imposing a
heavyweight quantity framework.
"""

from __future__ import annotations

# Type aliases — semantic documentation for signatures.
Bandwidth = float  # bits per second
TimeNS = float  # nanoseconds

MBPS: Bandwidth = 1e6
GBPS: Bandwidth = 1e9

KIB = 1024
MIB = 1024 * 1024


def format_rate(bits_per_second: Bandwidth) -> str:
    """Human-readable rate: ``format_rate(10e9) == "10.00 Gb/s"``."""
    if bits_per_second >= 1e9:
        return f"{bits_per_second / 1e9:.2f} Gb/s"
    if bits_per_second >= 1e6:
        return f"{bits_per_second / 1e6:.2f} Mb/s"
    if bits_per_second >= 1e3:
        return f"{bits_per_second / 1e3:.2f} Kb/s"
    return f"{bits_per_second:.0f} b/s"


def format_size(num_bytes: float) -> str:
    """Human-readable size: ``format_size(2048) == "2.0 KiB"``."""
    for unit, factor in (("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f} {unit}"
    return f"{num_bytes:.0f} B"
