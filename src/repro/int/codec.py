"""The INT trailer codec: a bounded hop stack carved into the payload.

In-band network telemetry (S24) makes the *packet itself* carry the
evidence of what the fabric did to it — the IntSight/Felix telemetry
half of the fast-reroute story, in the spirit of the per-packet
timestamping the NetFPGA/OSNT ecosystem pioneered.  Each INT-enabled
flow's frames end with a fixed-size trailer carved out of the tail of
the UDP payload:

* **zero length change** — the trailer replaces fill bytes, so the
  frame's wire length (and with it every length-keyed cache: the
  microflow key's ``len(frame)``, ``bytes_delivered``) is untouched;
* **header-window clear** — :func:`encode_template` refuses frames
  whose trailer would reach into the first ``HEADER_WINDOW`` bytes the
  lookups (and the microflow cache key) read, so stamping can never
  perturb a forwarding decision;
* **fixed offsets from the frame end** — every hop record lives at a
  constant negative offset, so a stamp is a handful of ``bytearray``
  writes and the receiver can parse without knowing the frame size.

Layout (all integers big-endian), for a stack of ``max_hops`` records::

    ... payload ... | slot 0 | slot 1 | ... | slot max_hops-1 | header |
                                                               16 bytes

    header:  flow_id u32 | seq u32 | hop_count u8 | flags u8
             | max_hops u8 | reserved u8 | magic "INT1"
    slot:    device_id u16 | ingress u8 | egress u8 | timestamp u32
             | flags u8 | dead_ports u8          (HOP_BYTES = 10 each)

The magic sits in the frame's last four bytes so ``is_int_frame`` is a
single tail compare on the hot path.  Header flags: bit 0 marks the
response direction of a request/response flow, bit 1 records a hop-stack
overflow (the packet crossed more devices than the stack holds — the
stamps stop, the flag survives).  Slot flags: bit 0 marks a fast-reroute
stamp (the egress is the *backup* port); ``dead_ports`` then carries the
one-bit-per-index mask of the device's link-down physical ports, which
is what lets the receiver name the failed link.

Determinism: timestamps are cycle-domain path sums — each hop adds its
lookup's ``DECISION_LATENCY_CYCLES`` to the previous stamp — so a
packet's stamp stack is a pure function of its path, independent of
injection order, shard count or the flow caches (the template carries
``seq == 0``; :meth:`~repro.testenv.topology.Network.inject` substitutes
the per-packet sequence number into the delivered frames *after* the
cached walk, so cached and uncached deliveries are byte-identical).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The trailer magic, in the frame's last four bytes.
MAGIC = b"INT1"

#: Hop records per stack unless the encoder is told otherwise.
MAX_INT_HOPS = 8

HEADER_BYTES = 16
HOP_BYTES = 10

#: Bytes of frame the lookups (and the microflow cache key) read; the
#: trailer must start strictly after them.
HEADER_WINDOW = 64

#: Smallest ``make_udp_frame(size=...)`` wire size whose packed frame
#: holds a default trailer clear of the header window (packed frames
#: omit the 4-byte FCS; 192 - 4 - 16 - 8*10 = 92 >= 64).
INT_MIN_FRAME_SIZE = 192

#: Offset of the UDP checksum in an eth+ipv4+udp frame; the encoder
#: zeroes it (legal for UDP over IPv4) so stamping keeps frames honest.
_UDP_CSUM_OFFSET = 14 + 20 + 6

_F_RESPONSE = 0x01
_F_OVERFLOW = 0x02
_H_REROUTED = 0x01


class IntError(ValueError):
    """A frame too small for its trailer, or a malformed trailer."""


@dataclass(frozen=True)
class IntHop:
    """One parsed hop record."""

    device_id: int
    ingress: int  #: physical port index, or ``0xF0 | i`` for DMA queue i
    egress: int
    timestamp: int  #: cycle-domain path sum at this device's egress
    rerouted: bool  #: True when the egress is the backup (FRR) port
    dead_ports: int  #: one-hot link-down port mask, only when rerouted


@dataclass(frozen=True)
class IntStack:
    """A parsed trailer: the header plus the stamped hop records."""

    flow_id: int
    seq: int
    response: bool
    overflow: bool
    max_hops: int
    hops: tuple[IntHop, ...]

    def latencies(self) -> tuple[int, ...]:
        """Per-hop cycle latencies (timestamp deltas along the path)."""
        out, prev = [], 0
        for hop in self.hops:
            out.append(hop.timestamp - prev)
            prev = hop.timestamp
        return tuple(out)


def trailer_bytes(max_hops: int = MAX_INT_HOPS) -> int:
    return HEADER_BYTES + max_hops * HOP_BYTES


def is_int_frame(frame: bytes) -> bool:
    """Whether the frame tail carries an INT trailer (hot-path cheap)."""
    return frame[-4:] == MAGIC and len(frame) >= HEADER_BYTES


def encode_template(
    frame: bytes, flow_id: int, *, response: bool = False,
    max_hops: int = MAX_INT_HOPS,
) -> bytes:
    """Carve an empty INT trailer into the tail of a packed frame.

    Returns the per-flow *template*: ``seq == 0``, no stamps, UDP
    checksum zeroed.  The frame length never changes.
    """
    if not 1 <= max_hops <= 0xFF:
        raise IntError(f"max_hops {max_hops} out of range 1..255")
    region = trailer_bytes(max_hops)
    if len(frame) - region < HEADER_WINDOW:
        raise IntError(
            f"frame of {len(frame)} bytes cannot hold a {region}-byte INT "
            f"trailer clear of the {HEADER_WINDOW}-byte header window"
        )
    data = bytearray(frame)
    data[_UDP_CSUM_OFFSET:_UDP_CSUM_OFFSET + 2] = b"\x00\x00"
    data[-region:] = bytes(region)
    data[-16:-12] = (flow_id & 0xFFFFFFFF).to_bytes(4, "big")
    # seq (-12:-8) and hop_count (-8) stay zero in the template.
    data[-7] = _F_RESPONSE if response else 0
    data[-6] = max_hops
    data[-4:] = MAGIC
    return bytes(data)


def set_seq(frame: bytes, seq: int) -> bytes:
    """Return the frame with the trailer's sequence number substituted.

    Non-INT frames pass through untouched, so callers can apply it
    blindly to every delivery of an injection.
    """
    if not is_int_frame(frame):
        return frame
    want = (seq & 0xFFFFFFFF).to_bytes(4, "big")
    if frame[-12:-8] == want:
        return frame
    data = bytearray(frame)
    data[-12:-8] = want
    return bytes(data)


def stamp(
    frame: bytes, device_id: int, ingress: int, egress: int, *,
    latency: int, rerouted: bool = False, dead_ports: int = 0,
) -> bytes:
    """Append one hop record; returns the stamped frame.

    A full stack sets the overflow flag instead of stamping — the
    evidence that stamps are missing survives even when the stamps
    themselves cannot.  Pure in (frame, args): identical inputs yield
    identical bytes, which is what keeps stamped walks cacheable.
    """
    hop_count = frame[-8]
    max_hops = frame[-6]
    if hop_count >= max_hops:
        if frame[-7] & _F_OVERFLOW:
            return frame
        data = bytearray(frame)
        data[-7] |= _F_OVERFLOW
        return bytes(data)
    slot = len(frame) - HEADER_BYTES - (max_hops - hop_count) * HOP_BYTES
    prev_ts = 0
    if hop_count:
        prev_ts = int.from_bytes(frame[slot - HOP_BYTES + 4:slot - HOP_BYTES + 8], "big")
    data = bytearray(frame)
    data[slot:slot + 2] = (device_id & 0xFFFF).to_bytes(2, "big")
    data[slot + 2] = ingress & 0xFF
    data[slot + 3] = egress & 0xFF
    data[slot + 4:slot + 8] = ((prev_ts + latency) & 0xFFFFFFFF).to_bytes(4, "big")
    data[slot + 8] = _H_REROUTED if rerouted else 0
    data[slot + 9] = dead_ports & 0xFF
    data[-8] = hop_count + 1
    return bytes(data)


def parse(frame: bytes) -> IntStack:
    """Parse a trailer into an :class:`IntStack` (receiver side)."""
    if not is_int_frame(frame):
        raise IntError("frame carries no INT trailer")
    hop_count = frame[-8]
    flags = frame[-7]
    max_hops = frame[-6]
    if not 1 <= max_hops <= 0xFF or hop_count > max_hops:
        raise IntError(
            f"malformed INT trailer: {hop_count} hops in a "
            f"{max_hops}-slot stack"
        )
    if len(frame) < trailer_bytes(max_hops):
        raise IntError("frame shorter than its own INT trailer")
    base = len(frame) - HEADER_BYTES - max_hops * HOP_BYTES
    hops = []
    for i in range(hop_count):
        at = base + i * HOP_BYTES
        hops.append(IntHop(
            device_id=int.from_bytes(frame[at:at + 2], "big"),
            ingress=frame[at + 2],
            egress=frame[at + 3],
            timestamp=int.from_bytes(frame[at + 4:at + 8], "big"),
            rerouted=bool(frame[at + 8] & _H_REROUTED),
            dead_ports=frame[at + 9],
        ))
    return IntStack(
        flow_id=int.from_bytes(frame[-16:-12], "big"),
        seq=int.from_bytes(frame[-12:-8], "big"),
        response=bool(flags & _F_RESPONSE),
        overflow=bool(flags & _F_OVERFLOW),
        max_hops=max_hops,
        hops=tuple(hops),
    )
