"""Receiver-side INT collection: paths, reroutes, blackholes, latency.

The :class:`IntCollector` is the *receiver-centric* half of S24 — it
never reads a device counter.  The scheduler shows it two things per
INT packet: the transmit record (flow, direction, sequence, epoch, and
the injection's drop-site evidence) and every delivered frame.  From
the stamps alone it reconstructs per-flow paths, attributes reroutes to
the failed link (the FRR-flagged hop names the rerouting device; its
``dead_ports`` mask names the dead cable), measures per-hop latency
from the timestamp deltas, and detects loss from sequence gaps —
packets that were sent but whose stamps never arrived.

Missing sequences split three ways: drops the network localized on the
wire (``link_down`` / hop-limit drop sites, satellite of this PR) are
counted at their ``device:port`` site; everything else is a
**blackhole** — the packet entered the fabric and no edge ever saw it.
Blackholes are localized only with flow-local evidence (the flow's own
last delivered stamp path), never with run-global state: per-flow
results must not depend on which other flows shared the shard, or the
shard-count fingerprint identity would break.

Every summary field is an integer or a string-keyed counter dict, so
shard summaries Counter-merge (:func:`merge_int_summaries`) into
exactly the single-shard summary — the same merge contract as the rest
of the :class:`~repro.fabric.scheduler.FabricReport`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from repro.int.codec import parse


def _merge_counter(total: Counter, part: dict) -> None:
    for key, value in part.items():
        total[key] += value


def merge_int_summaries(parts: list[Optional[dict]]) -> Optional[dict]:
    """Fold per-shard INT summaries; ``None`` parts are empty shards.

    Pure integer/Counter sums over disjoint flow sets, so merging N
    shard summaries reproduces the 1-shard summary byte-for-byte.
    """
    present = [part for part in parts if part is not None]
    if not present:
        return None
    ints: Counter = Counter()
    dicts: dict[str, Counter] = {}
    for part in present:
        for key, value in part.items():
            if isinstance(value, dict):
                _merge_counter(dicts.setdefault(key, Counter()), value)
            else:
                ints[key] += value
    out: dict[str, Any] = {key: ints[key] for key in ints}
    for key, counter in dicts.items():
        out[key] = dict(sorted(counter.items()))
    # A key absent from every part stays absent; a key present anywhere
    # must appear (possibly zero-summed) so merges are shape-stable.
    return dict(sorted(out.items()))


class _FlowDirState:
    """TX/RX ledger for one (flow_id, direction) stream."""

    __slots__ = ("sent", "received", "last_path", "last_seq")

    def __init__(self) -> None:
        #: seq -> (epoch, link_down_sites, hop_limit_sites)
        self.sent: dict[int, tuple[int, tuple, tuple]] = {}
        self.received: set[int] = set()
        #: device-name path of the highest delivered seq so far
        self.last_path: tuple[str, ...] = ()
        self.last_seq = -1


class IntCollector:
    """Parses stamps on delivery and folds them into a mergeable summary.

    ``network`` supplies the device directory (INT device id → name) and
    the cable map used to turn a rerouting device's dead-port mask into
    a failed-link label.  Both are pure functions of the topology, so
    every shard replica resolves identically.
    """

    def __init__(self, network: Any):
        self._names: dict[int, str] = network.int_directory()
        #: (device, port) -> "a~b" failed-cable label
        self._cables: dict[tuple[str, int], str] = {}
        for device in network.device_names():
            for port, (peer, _) in network.neighbors(device).items():
                self._cables[(device, port)] = "~".join(sorted((device, peer)))
        self._flows: dict[tuple[int, bool], _FlowDirState] = {}
        self.stamps = 0
        self.overflows = 0
        self.reroutes: Counter = Counter()        # device name
        self.reroute_links: Counter = Counter()   # "a~b"
        self.paths: Counter = Counter()           # "s0>s1>s2"
        self.hop_latency: Counter = Counter()     # "device:cycles"

    # ------------------------------------------------------------------
    def _device_name(self, device_id: int) -> str:
        return self._names.get(device_id, f"dev{device_id}")

    def _state(self, flow_id: int, response: bool) -> _FlowDirState:
        key = (flow_id, response)
        state = self._flows.get(key)
        if state is None:
            state = self._flows[key] = _FlowDirState()
        return state

    # ------------------------------------------------------------------
    # Observation points (the scheduler's two calls per INT packet)
    # ------------------------------------------------------------------
    def sent(self, flow_id: int, response: bool, seq: int, epoch: int,
             result: Any) -> None:
        """Record one transmitted packet and its injection's drop sites."""
        self._state(flow_id, response).sent[seq] = (
            epoch,
            tuple(getattr(result, "link_down_sites", ())),
            tuple(getattr(result, "hop_limit_sites", ())),
        )

    def sent_batch(self, flow_id: int, response: bool, seqs,
                   epochs, result: Any) -> None:
        """Record a coalesced run of transmitted packets (S27).

        All ``seqs`` share one injection outcome (the batch tier's
        eligibility contract), so each gets the same drop-site evidence
        — but a segment may span flap epochs, so ``epochs`` carries one
        entry per sequence.  Exactly ``len(seqs)`` :meth:`sent` calls.
        """
        down_sites = tuple(getattr(result, "link_down_sites", ()))
        limit_sites = tuple(getattr(result, "hop_limit_sites", ()))
        sent = self._state(flow_id, response).sent
        for seq, epoch in zip(seqs, epochs):
            sent[seq] = (epoch, down_sites, limit_sites)

    def deliver(self, frame: bytes) -> None:
        """Parse one delivered frame's stamps into the ledgers."""
        stack = parse(frame)
        state = self._state(stack.flow_id, stack.response)
        if stack.overflow:
            self.overflows += 1
        self.stamps += len(stack.hops)
        path = []
        prev_ts = 0
        for hop in stack.hops:
            name = self._device_name(hop.device_id)
            path.append(name)
            self.hop_latency[f"{name}:{hop.timestamp - prev_ts}"] += 1
            prev_ts = hop.timestamp
            if hop.rerouted:
                self.reroutes[name] += 1
                for index in range(8):
                    if hop.dead_ports & (1 << index):
                        label = self._cables.get((name, index))
                        if label is not None:
                            self.reroute_links[label] += 1
        self.paths[">".join(path)] += 1
        if stack.seq >= state.last_seq:
            state.last_seq = stack.seq
            state.last_path = tuple(path)
        state.received.add(stack.seq)

    def deliver_batch(self, frame: bytes, seqs) -> None:
        """Fold a coalesced run of deliveries of one stamped template.

        The batch tier delivers ``len(seqs)`` packets that differ only
        in the 4-byte sequence field, so the stamps parse once and every
        stamp-derived counter moves by ``len(seqs)`` — byte-identical
        to calling :meth:`deliver` per packet with the sequence
        substituted, since no counter here is sequence-dependent.
        """
        n = len(seqs)
        if not n:
            return
        stack = parse(frame)
        state = self._state(stack.flow_id, stack.response)
        if stack.overflow:
            self.overflows += n
        self.stamps += len(stack.hops) * n
        path = []
        prev_ts = 0
        for hop in stack.hops:
            name = self._device_name(hop.device_id)
            path.append(name)
            self.hop_latency[f"{name}:{hop.timestamp - prev_ts}"] += n
            prev_ts = hop.timestamp
            if hop.rerouted:
                self.reroutes[name] += n
                for index in range(8):
                    if hop.dead_ports & (1 << index):
                        label = self._cables.get((name, index))
                        if label is not None:
                            self.reroute_links[label] += n
        self.paths[">".join(path)] += n
        top = max(seqs)
        if top >= state.last_seq:
            state.last_seq = top
            state.last_path = tuple(path)
        state.received.update(seqs)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Close the ledgers: attribute every missing sequence.

        Returns the flat, Counter-mergeable summary dict the
        :class:`~repro.fabric.scheduler.FabricReport` carries.
        """
        lost = lost_link_down = lost_hop_limit = blackholes = 0
        drop_sites: Counter = Counter()
        blackhole_paths: Counter = Counter()
        loss_by_epoch: Counter = Counter()
        packets = delivered = 0
        for state in self._flows.values():
            packets += len(state.sent)
            delivered += len(state.received & set(state.sent))
            for seq, (epoch, down_sites, limit_sites) in state.sent.items():
                if seq in state.received:
                    continue
                lost += 1
                loss_by_epoch[str(epoch)] += 1
                if down_sites:
                    lost_link_down += 1
                    for device, port in down_sites:
                        drop_sites[f"{device}:{port}"] += 1
                elif limit_sites:
                    lost_hop_limit += 1
                    for device, port in limit_sites:
                        drop_sites[f"{device}:{port}"] += 1
                else:
                    blackholes += 1
                    blackhole_paths[">".join(state.last_path) or "?"] += 1
        return {
            "flows": len({flow_id for flow_id, _ in self._flows}),
            "packets": packets,
            "delivered": delivered,
            "stamps": self.stamps,
            "overflows": self.overflows,
            "lost": lost,
            "lost_link_down": lost_link_down,
            "lost_hop_limit": lost_hop_limit,
            "blackholes": blackholes,
            "reroutes": dict(sorted(self.reroutes.items())),
            "reroute_links": dict(sorted(self.reroute_links.items())),
            "paths": dict(sorted(self.paths.items())),
            "hop_latency": dict(sorted(self.hop_latency.items())),
            "drop_sites": dict(sorted(drop_sites.items())),
            "blackhole_paths": dict(sorted(blackhole_paths.items())),
            "loss_by_epoch": dict(sorted(loss_by_epoch.items())),
        }
