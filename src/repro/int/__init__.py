"""In-band telemetry (S24): packet-carried path and failure evidence.

The device-centric ledgers (S19 telemetry, S23 FRR counters) answer
"what did each device do?"; this package answers "what happened to each
*packet*?" — the receiver-centric observability plane a cluster-sharded
fabric needs, where no single process holds the global counter view.

- :mod:`repro.int.codec` — the trailer format: a bounded per-hop stamp
  stack (device id, ingress/egress port, cycle timestamp, FRR flag)
  carved into the tail of the UDP payload with zero length change, plus
  the flow id / sequence / direction header the receiver keys on.
- :mod:`repro.int.collector` — the receiver: parses stamps on delivery,
  reconstructs per-flow paths, attributes reroutes to the failed link,
  detects blackholes from sequence gaps, and folds per-hop latency and
  loss curves into a Counter-mergeable summary.

Stamping itself lives in the data-plane walk
(:meth:`repro.projects.base.ReferencePipeline.forward_behavioural`) and
is fastpath-compatible by construction: stamps are a pure function of
(device, ingress, egress, decision note, frame), applied identically on
slow decisions and cached replays, and the network path cache stores
sequence-zero templates with the per-packet sequence substituted into
deliveries after the walk.
"""

from repro.int.codec import (
    INT_MIN_FRAME_SIZE,
    IntError,
    IntHop,
    IntStack,
    MAX_INT_HOPS,
    encode_template,
    is_int_frame,
    parse,
    set_seq,
    stamp,
    trailer_bytes,
)
from repro.int.collector import IntCollector, merge_int_summaries

__all__ = [
    "INT_MIN_FRAME_SIZE",
    "IntCollector",
    "IntError",
    "IntHop",
    "IntStack",
    "MAX_INT_HOPS",
    "encode_template",
    "is_int_frame",
    "merge_int_summaries",
    "parse",
    "set_seq",
    "stamp",
    "trailer_bytes",
]
