"""Synthesis: elaborate a project into a build artifact.

The flow performs, in order, the checks that kill real builds:

1. **elaboration** — walk the module tree, collect per-instance
   resources (the hierarchical utilization report);
2. **capacity** — the aggregate must fit the target device;
3. **address map** — control windows must be non-overlapping (enforced
   at construction by the interconnect; re-audited here);
4. **timing budget** — every lookup's decision pipeline must fit the
   per-packet cycle budget at the datapath clock, the model's analogue
   of closing timing.

The resulting :class:`BuildArtifact` is this model's bitstream: a JSON
document carrying everything needed to identify, verify and "program"
the design, including a content checksum.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.board.fpga import FpgaDevice, VIRTEX7_690T
from repro.core.module import Module
from repro.cores.output_port_lookup import OutputPortLookup
from repro.utils.crc import crc32_ethernet

FORMAT_VERSION = 1

#: Decision-latency budget: a minimum-size packet occupies the 256-bit
#: pipeline for ~3 beats; reference OPLs keep their pipelines within a
#: small multiple of that so small-packet line rate remains reachable.
DEFAULT_TIMING_BUDGET_CYCLES = 12


class BuildError(RuntimeError):
    """The build failed one of the flow's checks."""


@dataclass(frozen=True)
class ModuleReport:
    """One instance's row in the hierarchical utilization report."""

    path: str
    kind: str
    luts: int
    ffs: int
    brams: float
    dsps: int


@dataclass
class BuildArtifact:
    """The model's "configuration file"."""

    format_version: int
    project: str
    description: str
    device: str
    clock_ns: float
    modules: list[ModuleReport]
    total: dict[str, float]
    utilization_pct: dict[str, float]
    address_map: list[tuple[int, int, str]]
    ports: list[str]
    decision_latencies: dict[str, int]
    checksum: str = field(default="")

    # ------------------------------------------------------------------
    def _content_bytes(self) -> bytes:
        payload = asdict(self)
        payload.pop("checksum", None)
        return json.dumps(payload, sort_keys=True).encode()

    def seal(self) -> "BuildArtifact":
        """Compute and store the content checksum."""
        self.checksum = f"{crc32_ethernet(self._content_bytes()):08x}"
        return self

    def verify(self) -> bool:
        return self.checksum == f"{crc32_ethernet(self._content_bytes()):08x}"

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BuildArtifact":
        raw = json.loads(text)
        if raw.get("format_version") != FORMAT_VERSION:
            raise BuildError(
                f"unsupported artifact format {raw.get('format_version')!r}"
            )
        raw["modules"] = [ModuleReport(**m) for m in raw["modules"]]
        raw["address_map"] = [tuple(w) for w in raw["address_map"]]
        return cls(**raw)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fileobj:
            fileobj.write(self.to_json())

    def render(self) -> str:
        lines = [
            f"build: {self.project} on {self.device} @ {1e3 / self.clock_ns:.0f} MHz",
            f"  checksum  {self.checksum}",
            f"  LUT {self.total['luts']:.0f} ({self.utilization_pct['luts']:.2f}%)  "
            f"FF {self.total['ffs']:.0f} ({self.utilization_pct['ffs']:.2f}%)  "
            f"BRAM {self.total['brams']:.1f} ({self.utilization_pct['brams']:.2f}%)",
            f"  {len(self.modules)} module instances, "
            f"{len(self.address_map)} register windows, {len(self.ports)} ports",
        ]
        return "\n".join(lines)


def load_artifact(path: str) -> BuildArtifact:
    with open(path, "r", encoding="utf-8") as fileobj:
        artifact = BuildArtifact.from_json(fileobj.read())
    if not artifact.verify():
        raise BuildError(f"artifact {path} failed its checksum")
    return artifact


# ----------------------------------------------------------------------
def synthesize(
    project: Module,
    device: FpgaDevice = VIRTEX7_690T,
    clock_ns: float = 5.0,
    timing_budget_cycles: int = DEFAULT_TIMING_BUDGET_CYCLES,
) -> BuildArtifact:
    """Run the flow; raises :class:`BuildError` on any failed check."""
    # 1. Elaboration.
    modules = [
        ModuleReport(
            path=instance.name,
            kind=type(instance).__name__,
            luts=instance.resources().luts,
            ffs=instance.resources().ffs,
            brams=instance.resources().brams,
            dsps=instance.resources().dsps,
        )
        for instance in project.walk()
    ]

    # 2. Capacity.
    total = project.total_resources()
    report = device.utilization(total)
    if not report.fits:
        raise BuildError(
            f"{project.name} does not fit {device.name}: "
            f"LUT {report.lut_pct:.1f}% BRAM {report.bram_pct:.1f}%"
        )

    # 3. Address map (interconnect enforces non-overlap at attach; the
    # flow records it into the artifact when the project has one).
    interconnect = getattr(project, "interconnect", None)
    address_map = interconnect.memory_map() if interconnect is not None else []

    # 4. Timing budget on every lookup stage.
    latencies: dict[str, int] = {}
    for instance in project.walk():
        if isinstance(instance, OutputPortLookup):
            latency = type(instance).DECISION_LATENCY_CYCLES
            latencies[instance.name] = latency
            if latency > timing_budget_cycles:
                raise BuildError(
                    f"timing: {instance.name} needs {latency} decision "
                    f"cycles, budget is {timing_budget_cycles}"
                )

    ports = [str(p) for p in getattr(project, "ports", [])]
    artifact = BuildArtifact(
        format_version=FORMAT_VERSION,
        project=project.name,
        description=getattr(project, "DESCRIPTION", type(project).__name__),
        device=device.name,
        clock_ns=clock_ns,
        modules=modules,
        total={
            "luts": float(total.luts),
            "ffs": float(total.ffs),
            "brams": float(total.brams),
            "dsps": float(total.dsps),
        },
        utilization_pct={
            "luts": report.lut_pct,
            "ffs": report.ff_pct,
            "brams": report.bram_pct,
            "dsps": report.dsp_pct,
        },
        address_map=address_map,
        ports=ports,
        decision_latencies=latencies,
    )
    return artifact.seal()
