"""The build flow: from project to "configuration file".

§3: "The hardware portion of a project contains the source code for all
the modules used in the design, as well as a large set of scripts that
generate the platform's configuration file."  This package is those
scripts' equivalent: :func:`synthesize` elaborates a project's module
tree into a :class:`BuildArtifact` — the model's bitstream — performing
the checks a real flow performs (capacity, address-map, port audit,
timing-budget) and failing the build the way synthesis would.
Artifacts serialize to JSON, reload, and :func:`program` onto a board
model.
"""

from repro.flow.build import (
    BuildArtifact,
    BuildError,
    ModuleReport,
    load_artifact,
    synthesize,
)
from repro.flow.program import ProgramError, ProgramReport, program

__all__ = [
    "BuildArtifact",
    "BuildError",
    "ModuleReport",
    "load_artifact",
    "synthesize",
    "ProgramError",
    "ProgramReport",
    "program",
]
