"""Programming: load a build artifact onto a board model.

The model analogue of ``xmd``/``program_fpga``: checks the artifact
against the board (device match, checksum), records it as the board's
loaded configuration, and reflects the design's static power draw into
the power model (a configured FPGA burns more than a blank one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.board.sume import NetFpgaSume
from repro.flow.build import BuildArtifact


class ProgramError(RuntimeError):
    """The artifact cannot be loaded onto this board."""


@dataclass(frozen=True)
class ProgramReport:
    project: str
    device: str
    static_power_delta_w: float


def program(board: NetFpgaSume, artifact: BuildArtifact) -> ProgramReport:
    """Load ``artifact`` onto ``board``; returns a report.

    The board remembers its configuration as ``board.loaded_artifact``
    (None until first programmed).
    """
    if not artifact.verify():
        raise ProgramError("artifact checksum mismatch — refusing to program")
    if artifact.device != board.spec.fpga.name:
        raise ProgramError(
            f"artifact targets {artifact.device}, board carries "
            f"{board.spec.fpga.name}"
        )
    # Configured-logic static power: scale the core rail's idle draw by
    # the fraction of the device in use (a coarse but standard estimate).
    vccint = board.power.rail("vccint")
    delta = 0.3 * vccint.idle_w * artifact.utilization_pct["luts"] / 100.0
    vccint.idle_w += delta
    board.loaded_artifact = artifact  # type: ignore[attr-defined]
    return ProgramReport(
        project=artifact.project,
        device=artifact.device,
        static_power_delta_w=delta,
    )
