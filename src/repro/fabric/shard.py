"""Sharded parallel fabric execution with a deterministic merge.

Flows whose outcomes are pure functions of ``(topology, workload,
seed)`` are embarrassingly parallel: :func:`run_sharded` partitions them
by ``flow_id % shards`` across a ``multiprocessing`` pool.  Each worker
rebuilds its *own* network replica from the picklable
:class:`FabricSpec` (device models are stateful and unpicklable — the
spec travels, not the network), regenerates the flow list from the same
seed, runs only its slice, and ships back its :class:`FabricReport`.

The merge is deterministic by construction: per-flow records are
disjoint (concatenate, sort by ``flow_id``), per-device forwarded
counts, fault counters and hop histograms are order-independent sums.
So ``run_sharded(spec, wl, shards=N).fingerprint()`` is byte-identical
for every ``N`` — the invariant the fabric test suite and the CI smoke
job pin — while wall-clock throughput scales with cores.

``parallel=False`` (or ``shards=1``) runs the same partition/merge path
in-process — the reference the pool path is checked against, and the
fallback when a pool is unavailable (e.g. a daemonic parent process).
"""

from __future__ import annotations

import multiprocessing
from collections import Counter
from typing import Optional

from repro.fabric.scheduler import (
    DEFAULT_MAX_INFLIGHT,
    FabricReport,
    LinkSchedule,
    run_flows,
)
from repro.fabric.topo import FabricSpec
from repro.fabric.workload import Flow, WorkloadSpec
from repro.faults import FaultPlan
from repro.int import merge_int_summaries


def _run_shard(
    spec: FabricSpec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan],
    shards: int,
    index: int,
    max_inflight: int,
    fastpath: bool,
    flows: Optional[list[Flow]],
    frr: bool,
    link_schedule: Optional[LinkSchedule],
    int_all: bool,
) -> FabricReport:
    """One worker's slice: rebuild the fabric, carry flows ≡ index (mod
    shards).  Module-level so the pool can pickle it."""
    topology = spec.build()
    return run_flows(
        topology, workload, plan,
        flow_filter=lambda flow: flow.flow_id % shards == index,
        flows=flows,
        max_inflight=max_inflight,
        shards=shards,
        fastpath=fastpath,
        frr=frr,
        link_schedule=link_schedule,
        int_all=int_all,
    )


def merge_reports(reports: list[FabricReport], shards: int) -> FabricReport:
    """Fold shard reports into the run report, deterministically.

    Records concatenate (flow partitions are disjoint) and sort by flow
    id; every aggregate is an order-independent sum.  Shard wall-clock
    times overlap, so ``elapsed_s`` takes the slowest shard.
    """
    if not reports:
        raise ValueError("nothing to merge")
    head = reports[0]
    for other in reports[1:]:
        if (other.topology, other.workload, other.seed, other.plan,
                other.frr, other.link_schedule) != (
            head.topology, head.workload, head.seed, head.plan,
            head.frr, head.link_schedule,
        ):
            raise ValueError("cannot merge reports of different runs")
    forwarded: Counter[str] = Counter()
    faults: Counter[str] = Counter()
    hops: Counter[int] = Counter()
    fastpath: Counter[str] = Counter()
    loss_by_epoch: Counter[int] = Counter()
    reroutes: Counter[str] = Counter()
    blackholed: Counter[str] = Counter()
    records = []
    for report in reports:
        records.extend(report.records)
        forwarded.update(report.device_forwarded)
        faults.update(report.fault_counters)
        hops.update(report.hops_hist)
        fastpath.update(report.fastpath)
        loss_by_epoch.update(report.loss_by_epoch)
        reroutes.update(report.device_reroutes)
        blackholed.update(report.device_blackholed)
    seen = [r.flow_id for r in records]
    if len(seen) != len(set(seen)):
        raise ValueError("shard partitions overlap: duplicate flow ids")
    return FabricReport(
        topology=head.topology,
        workload=head.workload,
        seed=head.seed,
        plan=head.plan,
        records=sorted(records, key=lambda r: r.flow_id),
        device_forwarded=dict(sorted(forwarded.items())),
        fault_counters=dict(sorted(faults.items())),
        hops_hist=dict(sorted(hops.items())),
        frr=head.frr,
        link_schedule=head.link_schedule,
        loss_by_epoch=dict(sorted(loss_by_epoch.items())),
        device_reroutes=dict(sorted(reroutes.items())),
        device_blackholed=dict(sorted(blackholed.items())),
        shards=shards,
        elapsed_s=max(r.elapsed_s for r in reports),
        fastpath=dict(sorted(fastpath.items())),
        # int_summary is an observable (data), not run config, so it is
        # merged rather than head-checked: shards that carried no INT
        # flow report None and drop out of the fold.
        int_summary=merge_int_summaries([r.int_summary for r in reports]),
    )


def run_sharded(
    spec: FabricSpec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    *,
    shards: int = 1,
    parallel: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    fastpath: bool = True,
    flows: Optional[list[Flow]] = None,
    frr: bool = False,
    link_schedule: Optional[LinkSchedule] = None,
    int_all: bool = False,
) -> FabricReport:
    """Run a fabric workload across ``shards`` partitions and merge.

    With ``parallel=True`` and ``shards > 1`` the partitions run in a
    ``multiprocessing.Pool`` of ``shards`` workers; otherwise they run
    sequentially in-process through the identical partition/merge path.
    Either way the merged report's fingerprint equals the 1-shard run's
    — and equals the run with ``fastpath=False`` (flow caches off),
    since caches are per-replica and observationally inert.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards == 1:
        return run_flows(spec.build(), workload, plan,
                         flows=flows, max_inflight=max_inflight,
                         fastpath=fastpath, frr=frr,
                         link_schedule=link_schedule, int_all=int_all)
    jobs = [(spec, workload, plan, shards, index, max_inflight, fastpath,
             flows, frr, link_schedule, int_all)
            for index in range(shards)]
    if parallel:
        with multiprocessing.Pool(processes=shards) as pool:
            reports = pool.starmap(_run_shard, jobs)
    else:
        reports = [_run_shard(*job) for job in jobs]
    return merge_reports(reports, shards)
