"""Sharded parallel fabric execution with a deterministic merge.

Flows whose outcomes are pure functions of ``(topology, workload,
seed)`` are embarrassingly parallel: :func:`run_sharded` partitions them
by ``flow_id % shards`` across worker processes.  Each worker rebuilds
its *own* network replica from the picklable :class:`FabricSpec`
(device models are stateful and unpicklable — the spec travels, not the
network), regenerates the flow list from the same seed, runs only its
slice, and ships back its :class:`FabricReport`.

The merge is deterministic by construction: per-flow records are
disjoint (concatenate, sort by ``flow_id``), per-device forwarded
counts, fault counters and hop histograms are order-independent sums.
So ``run_sharded(spec, wl, shards=N).fingerprint()`` is byte-identical
for every ``N`` — the invariant the fabric test suite and the CI smoke
job pin — while wall-clock throughput scales with cores.

Workers run under the **supervised executor**
(:mod:`repro.fabric.supervisor`): per-shard deadlines and heartbeats,
seeded crash chaos, bounded retries with exponential backoff, an inline
fallback when the budget is exhausted, merge-boundary integrity checks,
and checkpoint/resume.  A crashed worker costs a retry, never the run —
and never a bit of the fingerprint.  ``supervised=False`` keeps the old
bare-pool path as the A/B reference the E21 overhead bench compares
against.

``parallel=False`` (or ``shards=1``) runs the same partition/merge path
in-process — the reference the process paths are checked against, and
the fallback when worker processes are unavailable (e.g. a daemonic
parent process).
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter
from typing import TYPE_CHECKING, Optional

from repro.fabric.scheduler import (
    DEFAULT_MAX_INFLIGHT,
    FabricReport,
    LinkSchedule,
    run_flows,
)
from repro.fabric.topo import FabricSpec
from repro.fabric.workload import Flow, WorkloadSpec
from repro.faults import FaultPlan
from repro.int import merge_int_summaries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.supervisor import SupervisorOptions


def _pool_size(shards: int) -> int:
    """Concurrent worker cap: ``min(shards, cores)``.

    ``Pool(processes=shards)`` used to fork one process per shard even
    with shards ≫ cores — pure page-table churn with zero extra
    parallelism.  Shard *partitioning* stays at ``shards`` (it is part
    of the determinism contract); only process concurrency is capped.
    """
    return max(1, min(shards, os.cpu_count() or 1))


def _run_shard(
    spec: FabricSpec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan],
    shards: int,
    index: int,
    max_inflight: int,
    fastpath: bool,
    flows: Optional[list[Flow]],
    frr: bool,
    link_schedule: Optional[LinkSchedule],
    int_all: bool,
    batch: bool = True,
) -> FabricReport:
    """One worker's slice: rebuild the fabric, carry flows ≡ index (mod
    shards).  Module-level so worker processes can pickle it."""
    topology = spec.build()
    return run_flows(
        topology, workload, plan,
        flow_filter=lambda flow: flow.flow_id % shards == index,
        flows=flows,
        max_inflight=max_inflight,
        shards=shards,
        fastpath=fastpath,
        frr=frr,
        link_schedule=link_schedule,
        int_all=int_all,
        batch=batch,
    )


#: The config fields every shard of one run must agree on.  ``int_all``
#: changes which flows carry INT trailers; ``max_inflight`` and
#: ``fastpath_enabled`` must not vary across one run's shards even
#: though they leave the outcome untouched — a mixed-config merge means
#: the reports came from different invocations.
_HEAD_FIELDS = (
    "topology", "workload", "seed", "plan", "frr", "link_schedule",
    "max_inflight", "int_all", "fastpath_enabled", "batch_enabled",
)


def merge_reports(reports: list[FabricReport], shards: int) -> FabricReport:
    """Fold shard reports into the run report, deterministically.

    Records concatenate (flow partitions are disjoint) and sort by flow
    id; every aggregate is an order-independent sum.  Shard wall-clock
    times overlap, so ``elapsed_s`` takes the slowest shard.  The head
    check refuses reports whose run identity *or* execution config
    differ (:data:`_HEAD_FIELDS`); overlapping partitions are refused
    by the duplicate-flow-id check.
    """
    if not reports:
        raise ValueError("nothing to merge")
    head = reports[0]
    for other in reports[1:]:
        mismatched = [
            name for name in _HEAD_FIELDS
            if getattr(other, name) != getattr(head, name)
        ]
        if mismatched:
            raise ValueError(
                "cannot merge reports of different runs: "
                f"{', '.join(mismatched)} differ"
            )
    forwarded: Counter[str] = Counter()
    faults: Counter[str] = Counter()
    hops: Counter[int] = Counter()
    fastpath: Counter[str] = Counter()
    batch: Counter[str] = Counter()
    loss_by_epoch: Counter[int] = Counter()
    reroutes: Counter[str] = Counter()
    blackholed: Counter[str] = Counter()
    records = []
    for report in reports:
        records.extend(report.records)
        forwarded.update(report.device_forwarded)
        faults.update(report.fault_counters)
        hops.update(report.hops_hist)
        fastpath.update(report.fastpath)
        batch.update(report.batch)
        loss_by_epoch.update(report.loss_by_epoch)
        reroutes.update(report.device_reroutes)
        blackholed.update(report.device_blackholed)
    seen = [r.flow_id for r in records]
    if len(seen) != len(set(seen)):
        raise ValueError("shard partitions overlap: duplicate flow ids")
    return FabricReport(
        topology=head.topology,
        workload=head.workload,
        seed=head.seed,
        plan=head.plan,
        records=sorted(records, key=lambda r: r.flow_id),
        device_forwarded=dict(sorted(forwarded.items())),
        fault_counters=dict(sorted(faults.items())),
        hops_hist=dict(sorted(hops.items())),
        frr=head.frr,
        link_schedule=head.link_schedule,
        loss_by_epoch=dict(sorted(loss_by_epoch.items())),
        device_reroutes=dict(sorted(reroutes.items())),
        device_blackholed=dict(sorted(blackholed.items())),
        shards=shards,
        elapsed_s=max(r.elapsed_s for r in reports),
        fastpath=dict(sorted(fastpath.items())),
        # int_summary is an observable (data), not run config, so it is
        # merged rather than head-checked: shards that carried no INT
        # flow report None and drop out of the fold.
        int_summary=merge_int_summaries([r.int_summary for r in reports]),
        max_inflight=head.max_inflight,
        int_all=head.int_all,
        fastpath_enabled=head.fastpath_enabled,
        batch=dict(sorted(batch.items())),
        batch_enabled=head.batch_enabled,
    )


def run_sharded(
    spec: FabricSpec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    *,
    shards: int = 1,
    parallel: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    fastpath: bool = True,
    flows: Optional[list[Flow]] = None,
    frr: bool = False,
    link_schedule: Optional[LinkSchedule] = None,
    int_all: bool = False,
    batch: bool = True,
    supervised: bool = True,
    chaos: Optional[FaultPlan] = None,
    checkpoint: Optional[str | os.PathLike] = None,
    supervisor: Optional["SupervisorOptions"] = None,
) -> FabricReport:
    """Run a fabric workload across ``shards`` partitions and merge.

    With ``parallel=True`` and ``shards > 1`` the partitions run in
    worker processes (at most ``min(shards, cores)`` concurrently)
    under the supervised executor; otherwise they run sequentially
    in-process through the identical partition/merge path.  Either way
    the merged report's fingerprint equals the 1-shard run's — and
    equals the run with ``fastpath=False`` (flow caches off), since
    caches are per-replica and observationally inert.

    ``chaos`` is a fault plan whose :class:`~repro.faults.ShardFaultSpec`
    seeds worker crash/hang/corrupt chaos per (shard, attempt).  It is
    operational only — the merged fingerprint is identical with any
    chaos schedule, which the ``-m shard`` suite pins.  ``checkpoint``
    names a directory where accepted shard reports persist as they
    land; rerunning with the same arguments resumes from the surviving
    shards.  Both require the supervised process path: the inline path
    (``parallel=False``) has no workers to crash, and the bare pool
    (``supervised=False``, the E21 A/B reference) predates supervision.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    flow_count = len(flows) if flows is not None else workload.flows
    if shards > flow_count:
        raise ValueError(
            f"shards={shards} exceeds the {flow_count} flows to carry; "
            "the extra workers would rebuild replicas to forward nothing"
        )
    wants_supervisor = parallel and supervised and (
        shards > 1 or chaos is not None or checkpoint is not None
    )
    if wants_supervisor:
        from repro.fabric.supervisor import run_supervised

        return run_supervised(
            spec, workload, plan,
            shards=shards, max_inflight=max_inflight, fastpath=fastpath,
            flows=flows, frr=frr, link_schedule=link_schedule,
            int_all=int_all, batch=batch, chaos=chaos,
            checkpoint=checkpoint, options=supervisor,
        )
    if shards == 1:
        return run_flows(spec.build(), workload, plan,
                         flows=flows, max_inflight=max_inflight,
                         fastpath=fastpath, frr=frr,
                         link_schedule=link_schedule, int_all=int_all,
                         batch=batch)
    jobs = [(spec, workload, plan, shards, index, max_inflight, fastpath,
             flows, frr, link_schedule, int_all, batch)
            for index in range(shards)]
    if parallel:
        # The legacy bare pool: no deadlines, no retries, no integrity
        # checks — one worker crash aborts the run.  Kept as the E21
        # supervision-overhead reference.
        with multiprocessing.Pool(processes=_pool_size(shards)) as pool:
            reports = pool.starmap(_run_shard, jobs)
    else:
        reports = [_run_shard(*job) for job in jobs]
    return merge_reports(reports, shards)
