"""Deterministic concurrent flow scheduler and the fabric run report.

:func:`run_flows` carries a workload's flows across a built fabric with
thousands of flows in flight at once, interleaved in seeded round-robin
order — and yet every per-flow outcome is a *pure function* of
``(topology, workload, seed)``, independent of the interleaving.  Three
ingredients make that true:

* the fabric's switches are statically programmed (``learning=False``
  plus :meth:`FabricTopology.learn`), so forwarding one flow's frames
  never changes the state another flow's frames see;
* every flow opens its own fault session via
  ``plan.derived("fabric", flow_id)`` — independent decision streams,
  not a shared sequential RNG that interleaving would reorder;
* link-flap state is drawn per ``(host, epoch)`` from a derived seed —
  a pure function, not a stateful schedule.

Because outcomes are order-independent, the *same* code path can run a
subset of flows (``flow_filter``) in a worker process and the merged
results are byte-identical to the single-process run — the contract the
sharded executor (:mod:`repro.fabric.shard`) and its fingerprint test
rest on.

The interleaving itself is still real: a heap of per-packet events keyed
``(tick, rr, flow_id, …)`` where ``rr`` is a seeded per-flow hash, so
packets of concurrent flows alternate rather than running flow-by-flow,
and ``max_inflight`` bounds how many flows' events are resident at once
(a memory bound only — it never shifts a packet's tick, which would
leak scheduling into the flap-epoch draws).
"""

from __future__ import annotations

import heapq
import json
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from hashlib import sha256
from typing import Callable, Optional

from repro.fabric.topo import FabricTopology
from repro.fabric.workload import Flow, WorkloadSpec, generate_flows
from repro.faults import FaultPlan, FaultSession, derive_seed
from repro.int import INT_MIN_FRAME_SIZE, IntCollector, encode_template
from repro.packet.generator import make_udp_frame

#: Ticks per link-flap epoch: a flapped (host, epoch) pair is down for
#: this whole window, mirroring the soak harness's epoch granularity.
FLAP_EPOCH_TICKS = 32

#: Default bound on flows with resident scheduler events.
DEFAULT_MAX_INFLIGHT = 1024

#: Base UDP ports; the flow id is folded in so captures stay tellable.
_SPORT_BASE = 40000
_DPORT_BASE = 50000


@dataclass
class FlowRecord:
    """Everything one flow did, in merge-friendly integer form."""

    flow_id: int
    src: str
    dst: str
    attempted: int = 0
    delivered: int = 0
    lost_wire: int = 0
    lost_flap: int = 0
    lost_link: int = 0
    blackholed: int = 0
    dropped_hop_limit: int = 0
    misdelivered: int = 0
    retransmits: int = 0
    bytes_delivered: int = 0
    hops_total: int = 0
    hops_max: int = 0

    def signature(self) -> tuple:
        """The flow's contribution to the run fingerprint."""
        return (
            self.flow_id, self.src, self.dst, self.attempted,
            self.delivered, self.lost_wire, self.lost_flap,
            self.lost_link, self.blackholed, self.dropped_hop_limit,
            self.misdelivered, self.retransmits, self.bytes_delivered,
            self.hops_total, self.hops_max,
        )

    def as_dict(self) -> dict:
        return {
            "flow_id": self.flow_id, "src": self.src, "dst": self.dst,
            "attempted": self.attempted, "delivered": self.delivered,
            "lost_wire": self.lost_wire, "lost_flap": self.lost_flap,
            "lost_link": self.lost_link,
            "blackholed": self.blackholed,
            "dropped_hop_limit": self.dropped_hop_limit,
            "misdelivered": self.misdelivered,
            "retransmits": self.retransmits,
            "bytes_delivered": self.bytes_delivered,
            "hops_total": self.hops_total, "hops_max": self.hops_max,
        }


@dataclass
class FabricReport:
    """The outcome of one fabric run (or one shard of it).

    The :meth:`fingerprint` covers only order-independent observables —
    per-flow records, per-device forwarded totals, fault counters and
    the hop histogram — never ``shards``, ``max_inflight`` or wall-clock
    time, so the same ``(topology, workload, seed)`` fingerprints
    identically no matter how the run was parallelised.
    """

    topology: str
    workload: str
    seed: int
    plan: Optional[str] = None
    records: list[FlowRecord] = field(default_factory=list)
    device_forwarded: dict[str, int] = field(default_factory=dict)
    fault_counters: dict[str, int] = field(default_factory=dict)
    hops_hist: dict[int, int] = field(default_factory=dict)
    #: Fast-reroute observables: whether backups were installed, the
    #: scripted link-failure windows (if any), failure-attributable
    #: losses per scheduler epoch, and per-device reroute/blackhole
    #: counts.  All order-independent, so all part of the signature.
    frr: bool = False
    link_schedule: Optional[str] = None
    loss_by_epoch: dict[int, int] = field(default_factory=dict)
    device_reroutes: dict[str, int] = field(default_factory=dict)
    device_blackholed: dict[str, int] = field(default_factory=dict)
    shards: int = 1
    elapsed_s: float = 0.0
    #: Flow-cache statistics (hits/misses/... per cache layer).  Like
    #: ``shards`` and ``elapsed_s`` these are *operational* data, not
    #: observables: hit counts depend on how the run was partitioned
    #: (each shard's caches start cold), so they stay out of
    #: :meth:`signature` and the fingerprint.
    fastpath: dict[str, int] = field(default_factory=dict)
    #: Receiver-side INT summary (:meth:`repro.int.IntCollector.summary`)
    #: when any carried flow was INT-enabled, else ``None``.  Pure
    #: Counter sums over disjoint flows, so it IS an observable: it
    #: joins the signature, and shard merges reproduce it exactly.
    int_summary: Optional[dict] = None
    #: Run-configuration echoes.  Operational, never observables (the
    #: fingerprint must stay invariant to how a run was executed), but
    #: ``merge_reports`` head-checks them so reports produced under
    #: different configs can never silently merge: ``int_all`` changes
    #: which flows carry trailers, ``fastpath_enabled``/``max_inflight``
    #: must not differ across shards of one run even though they leave
    #: the outcome untouched.
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    int_all: bool = False
    fastpath_enabled: bool = True
    #: Batch-tier statistics (closures compiled, packets replayed,
    #: invalidation splits, coalesced segments).  Operational like
    #: ``fastpath`` — segment shapes depend on partitioning — so they
    #: are Counter-merged across shards and stay out of the signature.
    batch: dict[str, int] = field(default_factory=dict)
    #: Config echo for the batch tier; head-checked at merge like
    #: ``fastpath_enabled``, never part of the signature.
    batch_enabled: bool = True
    #: The supervised executor's ledger (attempts, retries, inline
    #: fallbacks, checkpoint hits …) for the merged run.  Operational
    #: data like ``fastpath``: it describes how the run survived, not
    #: what it computed, so it stays out of :meth:`signature`.
    supervision: dict[str, int] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------
    def _total(self, name: str) -> int:
        return sum(getattr(r, name) for r in self.records)

    @property
    def attempted(self) -> int:
        return self._total("attempted")

    @property
    def delivered(self) -> int:
        return self._total("delivered")

    @property
    def lost(self) -> int:
        return (self._total("lost_wire") + self._total("lost_flap")
                + self._total("lost_link") + self._total("blackholed")
                + self._total("dropped_hop_limit"))

    @property
    def misdelivered(self) -> int:
        return self._total("misdelivered")

    @property
    def packets_per_second(self) -> float:
        return self.attempted / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def healthy(self) -> bool:
        """No silent failures: nothing blackholed or misdelivered.

        Fault-plan losses (wire, flap, hop limit) are *accounted*
        losses, not health failures.
        """
        return self._total("blackholed") == 0 and self.misdelivered == 0

    # -- the determinism contract --------------------------------------
    def signature(self) -> dict:
        return {
            "topology": self.topology,
            "workload": self.workload,
            "seed": self.seed,
            "plan": self.plan,
            "flows": [r.signature() for r in
                      sorted(self.records, key=lambda r: r.flow_id)],
            "device_forwarded": dict(sorted(self.device_forwarded.items())),
            "fault_counters": dict(sorted(self.fault_counters.items())),
            "hops_hist": {str(k): v for k, v in
                          sorted(self.hops_hist.items())},
            "frr": self.frr,
            "link_schedule": self.link_schedule,
            "loss_by_epoch": {str(k): v for k, v in
                              sorted(self.loss_by_epoch.items())},
            "device_reroutes": dict(sorted(self.device_reroutes.items())),
            "device_blackholed": dict(sorted(self.device_blackholed.items())),
            "int": self.int_summary,
        }

    def fingerprint(self) -> str:
        canon = json.dumps(self.signature(), sort_keys=True,
                           separators=(",", ":"))
        return sha256(canon.encode()).hexdigest()

    def as_dict(self, per_flow: bool = False) -> dict:
        out = {
            "topology": self.topology,
            "workload": self.workload,
            "seed": self.seed,
            "plan": self.plan,
            "shards": self.shards,
            "flows": len(self.records),
            "attempted": self.attempted,
            "delivered": self.delivered,
            "lost_wire": self._total("lost_wire"),
            "lost_flap": self._total("lost_flap"),
            "lost_link": self._total("lost_link"),
            "blackholed": self._total("blackholed"),
            "dropped_hop_limit": self._total("dropped_hop_limit"),
            "misdelivered": self.misdelivered,
            "retransmits": self._total("retransmits"),
            "bytes_delivered": self._total("bytes_delivered"),
            "elapsed_s": round(self.elapsed_s, 6),
            "packets_per_second": round(self.packets_per_second, 1),
            "device_forwarded": dict(sorted(self.device_forwarded.items())),
            "fault_counters": dict(sorted(self.fault_counters.items())),
            "hops_hist": {str(k): v for k, v in
                          sorted(self.hops_hist.items())},
            "healthy": self.healthy(),
            "fingerprint": self.fingerprint(),
            "fastpath": dict(sorted(self.fastpath.items())),
            "frr": self.frr,
            "link_schedule": self.link_schedule,
            "loss_by_epoch": {str(k): v for k, v in
                              sorted(self.loss_by_epoch.items())},
            "device_reroutes": dict(sorted(self.device_reroutes.items())),
            "device_blackholed": dict(sorted(self.device_blackholed.items())),
            "int": self.int_summary,
            "batch": dict(sorted(self.batch.items())),
            "supervision": dict(sorted(self.supervision.items())),
        }
        if per_flow:
            out["per_flow"] = [r.as_dict() for r in
                               sorted(self.records, key=lambda r: r.flow_id)]
        return out

    # -- telemetry -----------------------------------------------------
    def feed(self, registry) -> None:
        """Publish the run's stats into a telemetry MetricsRegistry.

        All fabric series are cycle-independent (they describe delivered
        work, not pipeline timing), so they join the sim/hw parity set.
        """
        outcomes = registry.counter(
            "fabric_packets_total",
            "Fabric packets by final outcome",
            labelnames=("outcome",),
        )
        for name in ("delivered", "lost_wire", "lost_flap",
                     "blackholed", "dropped_hop_limit", "misdelivered"):
            count = self._total(name)
            if count:
                outcomes.labels(name).inc(count)
        registry.counter(
            "fabric_bytes_delivered_total", "Payload bytes delivered",
        ).inc(self._total("bytes_delivered"))
        registry.counter(
            "fabric_flows_total", "Flows carried by fabric runs",
        ).inc(len(self.records))
        forwarded = registry.counter(
            "fabric_device_forwarded_total",
            "Packets each fabric device forwarded",
            labelnames=("device",),
        )
        for device, count in sorted(self.device_forwarded.items()):
            if count:
                forwarded.labels(device).inc(count)
        hops = registry.histogram(
            "fabric_delivery_hops",
            "Device hops per delivered packet",
            buckets=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0),
            cycle_dependent=False,
        )
        for hop, count in sorted(self.hops_hist.items()):
            for _ in range(count):
                hops.observe(float(hop))


# ----------------------------------------------------------------------
# Flap state: a pure function of (plan.seed, host, epoch)
# ----------------------------------------------------------------------
class _FlapOracle:
    """Answers "is this host's edge link down during this epoch?".

    Each distinct ``(host, epoch)`` pair draws once from its own derived
    seed, so the answer never depends on which flow asked first — the
    property that keeps flap loss identical across shard counts.
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self._plan = plan
        self._cache: dict[tuple[str, int], bool] = {}
        self.enabled = (plan is not None and plan.ctrl is not None
                        and plan.ctrl.flap_rate > 0)

    def down(self, host: str, epoch: int) -> bool:
        if not self.enabled:
            return False
        key = (host, epoch)
        if key not in self._cache:
            session = self._plan.derived("fabric-flap", host, epoch).session()
            self._cache[key] = session.link_flap_faults()
        return self._cache[key]


# ----------------------------------------------------------------------
# Fabric link state: scripted windows and seeded cuts, both pure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkSchedule:
    """Scripted switch-switch link failures, in scheduler epochs.

    Each event is ``(device_a, device_b, down_epoch, up_epoch)``: the
    cable between the devices is dark for epochs in
    ``[down_epoch, up_epoch)``.  A pure description — the E19 sweep
    scripts exactly one failure window per swept link.
    """

    events: tuple[tuple[str, str, int, int], ...] = ()

    @property
    def key(self) -> str:
        """Canonical identity string, part of the run fingerprint."""
        return ";".join(f"{a}~{b}[{d},{u})" for a, b, d, u in self.events)

    def down(self, a: str, b: str, epoch: int) -> bool:
        pair = frozenset((a, b))
        return any(
            frozenset((ea, eb)) == pair and d <= epoch < u
            for ea, eb, d, u in self.events
        )

    def pairs(self) -> list[tuple[str, str]]:
        """The device pairs this schedule touches, canonically ordered."""
        return sorted({tuple(sorted((a, b))) for a, b, _, _ in self.events})


class _LinkStateOracle:
    """Answers "is this cable dark during this epoch?" from the seeded
    ``link_down``/``link_up`` fault sites.

    Each distinct ``(link, epoch)`` cut decision draws once from its own
    derived seed (like :class:`_FlapOracle`), and a firing link stays
    dark for a drawn number of epochs — so the answer for any epoch is a
    pure function of ``(plan.seed, link, epoch)``, independent of which
    flow asked first or how the run was sharded.
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self._plan = plan
        spec = plan.link_state if plan is not None else None
        self._spec = spec
        self.enabled = spec is not None and spec.down_rate > 0
        self._cuts: dict[tuple[str, str, int], int] = {}

    def _cut_epochs(self, a: str, b: str, e0: int) -> int:
        """How many epochs the cut starting at ``e0`` lasts (0 = none)."""
        key = (a, b, e0)
        if key not in self._cuts:
            session = self._plan.derived("fabric-link", a, b, e0).session()
            if session.link_down_faults():
                self._cuts[key] = max(1, session.link_down_epochs())
            else:
                self._cuts[key] = 0
        return self._cuts[key]

    def down(self, a: str, b: str, epoch: int) -> bool:
        if not self.enabled:
            return False
        a, b = sorted((a, b))
        lookback = self._spec.max_down_epochs
        return any(
            self._cut_epochs(a, b, e0) > epoch - e0
            for e0 in range(max(0, epoch - lookback + 1), epoch + 1)
        )


class _LinkStateController:
    """Keeps the network's link state in step with the packet's epoch.

    Applied per event from the event's *own* epoch — an absolute,
    idempotent assignment, never a relative toggle — so late-admitted
    flows whose ticks sit before the current heap front still see
    exactly the state their epoch prescribes, in any shard.
    """

    def __init__(
        self,
        topology: FabricTopology,
        schedule: Optional["LinkSchedule"],
        plan: Optional[FaultPlan],
    ):
        self._net = topology.network
        self._schedule = schedule
        self._oracle = _LinkStateOracle(plan)
        pairs: set[tuple[str, str]] = set()
        if schedule is not None:
            pairs.update(schedule.pairs())
        if self._oracle.enabled:
            pairs.update(
                tuple(sorted((a.device, b.device)))
                for a, b in self._net.links()
            )
        self._pairs = sorted(pairs)
        self._last: Optional[int] = None

    @property
    def active(self) -> bool:
        return bool(self._pairs)

    def apply(self, epoch: int) -> None:
        if not self._pairs or epoch == self._last:
            return
        self._last = epoch
        for a, b in self._pairs:
            down = self._oracle.down(a, b, epoch) or (
                self._schedule is not None
                and self._schedule.down(a, b, epoch)
            )
            self._net.set_link_state(a, b, not down)

    def restore(self) -> None:
        """Bring every touched link back up (end-of-run tidiness)."""
        for a, b in self._pairs:
            self._net.set_link_state(a, b, True)


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
@dataclass(order=True)
class _Event:
    """One packet send, ordered for the interleaving heap."""

    tick: int
    rr: int          # seeded per-flow hash: round-robin tie-break
    flow_id: int
    is_response: bool
    pkt_index: int
    flow: Flow = field(compare=False)
    record: FlowRecord = field(compare=False)
    session: FaultSession = field(compare=False)


def _flow_events(flow: Flow, record: FlowRecord, session: FaultSession,
                 rr_seed: int) -> list[_Event]:
    rr = derive_seed(rr_seed, "rr", flow.flow_id) & 0xFFFFFFFF
    events = [
        _Event(flow.start_tick + i * flow.gap_ticks, rr, flow.flow_id,
               False, i, flow, record, session)
        for i in range(flow.packets)
    ]
    if flow.response_packets:
        # Responses start strictly after the last request tick, so by
        # heap order every request outcome is on the record before the
        # first response is considered.
        first = flow.start_tick + flow.packets * flow.gap_ticks + 1
        events.extend(
            _Event(first + i * flow.gap_ticks, rr, flow.flow_id,
                   True, i, flow, record, session)
            for i in range(flow.response_packets)
        )
    return events


def flow_frame(
    topology: FabricTopology, flow: Flow, is_response: bool = False,
    frame_size: Optional[int] = None,
) -> bytes:
    """The wire frame for one direction of a flow.

    A pure function of (topology hosts, flow, direction): every packet
    of a direction is byte-identical, which is what lets the scheduler
    build it once per flow instead of per packet — and what the E18
    bench micro-asserts against a fresh ``make_udp_frame`` build.
    ``frame_size`` overrides the flow's own size (the INT builder uses
    it to guarantee trailer room).
    """
    src = topology.hosts[flow.dst if is_response else flow.src]
    dst = topology.hosts[flow.src if is_response else flow.dst]
    return make_udp_frame(
        src.mac, dst.mac, src.ip, dst.ip,
        _SPORT_BASE + (flow.flow_id % 10000),
        _DPORT_BASE + (flow.flow_id % 10000),
        size=flow.frame_size if frame_size is None else frame_size,
    ).pack()


def int_frame(
    topology: FabricTopology, flow: Flow, is_response: bool = False
) -> bytes:
    """The sequence-zero INT *template* frame for one flow direction.

    The flow's frame size is raised to :data:`INT_MIN_FRAME_SIZE` when
    needed so the trailer sits clear of the 64-byte header window; the
    per-packet sequence number is substituted into deliveries by
    ``inject(int_seq=...)``, never into this template, so the whole
    flow shares one path-cache key.
    """
    base = flow_frame(
        topology, flow, is_response,
        frame_size=max(flow.frame_size, INT_MIN_FRAME_SIZE),
    )
    return encode_template(base, flow.flow_id, response=is_response)


def _lost_total(record: FlowRecord) -> int:
    return (record.lost_wire + record.lost_flap + record.lost_link
            + record.blackholed + record.dropped_hop_limit)


def _send_packet(
    topology: FabricTopology,
    event: _Event,
    flap: _FlapOracle,
    hops_hist: Counter,
    frames: dict[tuple[int, bool], bytes],
    loss_by_epoch: Counter,
    collector: Optional[IntCollector] = None,
) -> None:
    flow, record, session = event.flow, event.record, event.session
    if event.is_response and record.delivered == 0:
        return  # the request never arrived: there is no RPC to answer
    src = topology.hosts[flow.dst if event.is_response else flow.src]
    dst = topology.hosts[flow.src if event.is_response else flow.dst]
    record.attempted += 1
    lost_before = _lost_total(record)
    try:
        if flap.down(src.name, event.tick // FLAP_EPOCH_TICKS):
            record.lost_flap += 1
            session.counters["flap_lost_frames"] += 1
            return
        retrans_before = session.counters.get("link_retransmits", 0)
        delivered_to_wire = session.link_transfer()
        record.retransmits += (
            session.counters.get("link_retransmits", 0) - retrans_before
        )
        if not delivered_to_wire:
            record.lost_wire += 1
            return
        key = (flow.flow_id, event.is_response)
        frame = frames.get(key)
        if frame is None:
            builder = int_frame if flow.int_enabled else flow_frame
            frame = frames[key] = builder(topology, flow, event.is_response)
        telemetered = flow.int_enabled and collector is not None
        result = topology.network.inject(
            src.device, src.port, frame,
            int_seq=event.pkt_index if telemetered else None,
        )
        if telemetered:
            collector.sent(
                flow.flow_id, event.is_response, event.pkt_index,
                event.tick // FLAP_EPOCH_TICKS, result,
            )
            for delivery in result:
                collector.deliver(delivery.frame)
        record.dropped_hop_limit += result.dropped_hop_limit
        record.lost_link += result.dropped_link_down
        hit = False
        for delivery in result:
            if (delivery.at.device == dst.device
                    and delivery.at.port.index == dst.port):
                hit = True
                record.delivered += 1
                record.bytes_delivered += len(delivery.frame)
                record.hops_total += delivery.hops
                record.hops_max = max(record.hops_max, delivery.hops)
                hops_hist[delivery.hops] += 1
            else:
                record.misdelivered += 1
        if (not hit and not result.dropped_hop_limit
                and not result.dropped_link_down):
            record.blackholed += 1
    finally:
        lost = _lost_total(record) - lost_before
        if lost:
            loss_by_epoch[event.tick // FLAP_EPOCH_TICKS] += lost


def _account_uniform(
    record: FlowRecord,
    dst,
    deliveries,
    dropped_hop: int,
    dropped_link: int,
    hops_hist: Counter,
    n: int,
) -> None:
    """Fold ``n`` identical packets' outcome into the flow record.

    ``deliveries`` iterates one packet's ``(attachment, frame, hops)``
    template; every count moves by ``n *`` the template — exactly what
    ``n`` passes of :func:`_send_packet`'s accounting loop would do.
    """
    record.dropped_hop_limit += dropped_hop * n
    record.lost_link += dropped_link * n
    hit = False
    for at, frame, hops in deliveries:
        if at.device == dst.device and at.port.index == dst.port:
            hit = True
            record.delivered += n
            record.bytes_delivered += len(frame) * n
            record.hops_total += hops * n
            record.hops_max = max(record.hops_max, hops)
            hops_hist[hops] += n
        else:
            record.misdelivered += n
    if not hit and not dropped_hop and not dropped_link:
        record.blackholed += n


def _send_batch(
    topology: FabricTopology,
    event: _Event,
    n: int,
    flap: _FlapOracle,
    hops_hist: Counter,
    frames: dict[tuple[int, bool], bytes],
    loss_by_epoch: Counter,
    collector: Optional[IntCollector] = None,
) -> None:
    """Carry ``n`` consecutive packets of one flow direction at once.

    The coalesced counterpart of :func:`_send_packet`, valid only under
    the engine's eligibility gate: every per-epoch oracle answers the
    same for all ``n`` events (they share one flap epoch, or the
    oracles are epoch-independent) and the fault plan has no per-packet
    wire draws (``plan.link is None`` makes ``link_transfer`` a
    constant True with no counters).  Packets replay through
    :meth:`Network.inject_batch`; a cold or uncacheable flow falls back
    to per-packet injects — the first of which warms the walk, so the
    remainder batches.

    Loss and INT epoch attribution stay per-packet: a segment may span
    flap epochs (the epoch-free case), so lost packets are booked
    against the epoch of their *own* tick, not the segment head's.
    Closure replays are uniform — every packet of a batch loses the
    same amount — which is what lets the batch path spread its loss
    delta evenly across the member ticks.
    """
    flow, record, session = event.flow, event.record, event.session
    if event.is_response and record.delivered == 0:
        return  # the request never arrived: there is no RPC to answer
    src = topology.hosts[flow.dst if event.is_response else flow.src]
    dst = topology.hosts[flow.src if event.is_response else flow.dst]
    gap = max(flow.gap_ticks, 0)
    epoch_of = lambda j: (event.tick + j * gap) // FLAP_EPOCH_TICKS
    epoch = event.tick // FLAP_EPOCH_TICKS
    record.attempted += n
    if flap.down(src.name, epoch):
        # Only reachable with the flap oracle armed, where the span is
        # capped to one epoch — head attribution is exact.
        record.lost_flap += n
        session.counters["flap_lost_frames"] += n
        loss_by_epoch[epoch] += n
        return
    key = (flow.flow_id, event.is_response)
    frame = frames.get(key)
    if frame is None:
        builder = int_frame if flow.int_enabled else flow_frame
        frame = frames[key] = builder(topology, flow, event.is_response)
    telemetered = flow.int_enabled and collector is not None
    network = topology.network
    seq = event.pkt_index
    remaining = n
    while remaining:
        offset = n - remaining  # packets of the segment already carried
        lost_before = _lost_total(record)
        batch = network.inject_batch(src.device, src.port, frame, remaining)
        if batch is None:
            # Cold (or uncacheable) walk: carry one packet the classic
            # way — it warms the path cache so the rest can replay.
            result = network.inject(
                src.device, src.port, frame,
                int_seq=seq if telemetered else None,
            )
            if telemetered:
                collector.sent(flow.flow_id, event.is_response, seq,
                               epoch_of(offset), result)
                for delivery in result:
                    collector.deliver(delivery.frame)
            _account_uniform(
                record, dst,
                ((d.at, d.frame, d.hops) for d in result),
                result.dropped_hop_limit, result.dropped_link_down,
                hops_hist, 1,
            )
            lost = _lost_total(record) - lost_before
            if lost:
                loss_by_epoch[epoch_of(offset)] += lost
            seq += 1
            remaining -= 1
            continue
        if telemetered:
            seqs = range(seq, seq + remaining)
            collector.sent_batch(
                flow.flow_id, event.is_response, seqs,
                [epoch_of(j) for j in range(offset, n)], batch,
            )
            for _, dframe, _ in batch.deliveries:
                collector.deliver_batch(dframe, seqs)
        _account_uniform(
            record, dst, batch.deliveries,
            batch.dropped_hop_limit, batch.dropped_link_down,
            hops_hist, remaining,
        )
        lost = _lost_total(record) - lost_before
        if lost:
            # Uniform replay: each of the `remaining` packets lost
            # exactly lost/remaining, booked at its own tick's epoch.
            per_packet = lost // remaining
            for j in range(offset, n):
                loss_by_epoch[epoch_of(j)] += per_packet
        remaining = 0


class FlowEngine:
    """The fabric scheduler as a steppable machine.

    This is :func:`run_flows` opened up: the same setup, the same event
    heap, the same dispatch — but instead of one closed ``while heap``
    loop the engine exposes :meth:`step` / :meth:`run_until` /
    :meth:`run`, and an optional :class:`~repro.shell.clock.VirtualClock`
    owns how virtual time passes between events.  Batch callers never
    see the difference: ``run_flows`` constructs an engine with no clock
    and immediately drains it, so the shell's interactive path and the
    sharded/fastpath batch path are *one code path* and the
    :class:`FabricReport` fingerprint is identical by construction.

    Control never changes outcomes.  Pausing, stepping one event at a
    time, or warping over idle cycles only decides *when* the next heap
    event dispatches relative to wall clock; the heap order — and with
    it every fingerprinted observable — is fixed by
    ``(topology, workload, seed, plan)`` alone.
    """

    def __init__(
        self,
        topology: FabricTopology,
        spec: WorkloadSpec,
        plan: Optional[FaultPlan] = None,
        *,
        flow_filter: Optional[Callable[[Flow], bool]] = None,
        flows: Optional[list[Flow]] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        shards: int = 1,
        fastpath: bool = True,
        frr: bool = False,
        link_schedule: Optional[LinkSchedule] = None,
        int_all: bool = False,
        batch: bool = True,
        clock=None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not fastpath:
            topology.network.set_fastpath(False)
        topology.learn()
        if frr:
            topology.install_backups()
        if flows is None:
            flows = generate_flows(topology.host_names(), spec)
        else:
            flows = list(flows)
        if flow_filter is not None:
            flows = [f for f in flows if flow_filter(f)]
        if int_all:
            flows = [replace(f, int_enabled=True) for f in flows]

        self.topology = topology
        self.spec = spec
        self.clock = clock
        self._plan = plan
        self._max_inflight = max_inflight
        self._shards = shards
        self._fastpath = fastpath
        self._frr = frr
        self._link_schedule = link_schedule
        self._int_all = int_all
        self._batch_requested = batch
        # Coalescing eligibility: the fast path must exist (no cache,
        # nothing to replay), per-packet wire draws must not (a
        # plan.link spec makes every packet a fresh RNG decision), and
        # an attached clock means an interactive observer who expects
        # per-event time — coalescing is for the drain loops only.
        self._batch = bool(
            batch and fastpath and clock is None
            and (plan is None or plan.link is None)
        )
        self._consumed: set[tuple[int, bool, int]] = set()
        self._batch_segments = 0
        self._batch_segment_packets = 0
        # Span cap: with the flap oracle disarmed and link state static
        # for the whole run, no per-epoch oracle can change its answer
        # mid-segment — segments may span flap epochs and cover a flow
        # direction's whole remaining burst.  (Loss and INT epoch
        # attribution stay per-packet either way.)
        self._epoch_free = not (
            plan is not None and plan.ctrl is not None
            and plan.ctrl.flap_rate > 0
        ) and link_schedule is None and (
            plan is None or plan.link_state is None
        )
        self.collector = (IntCollector(topology.network)
                          if any(f.int_enabled for f in flows) else None)

        self._flap = _FlapOracle(plan)
        self._link_ctl = _LinkStateController(topology, link_schedule, plan)
        self._fault_counters: Counter[str] = Counter()
        self._records: list[FlowRecord] = []
        self._hops_hist: Counter[int] = Counter()
        self._loss_by_epoch: Counter[int] = Counter()
        self._frames: dict[tuple[int, bool], bytes] = {}

        # Admit flows to the heap in start order, at most max_inflight
        # at a time; a flow's events enter together so its packet
        # spacing holds.
        self._pending = sorted(flows, key=lambda f: (f.start_tick, f.flow_id))
        self._heap: list[_Event] = []
        self._resident: dict[int, int] = {}  # flow_id -> resident events
        self._cursor = 0
        self._dispatched = 0
        self._report: Optional[FabricReport] = None
        self._admit()
        if self._batch:
            self._prewarm()
        self._started = time.perf_counter()

    def _prewarm(self) -> None:
        """Dry-walk every flow direction's template at setup time.

        :meth:`~repro.testenv.topology.Network.warm_paths` walks each
        template once inside the counter sandbox, so the dispatch loop
        never takes a cold walk: the first ``inject_batch`` of a flow
        compiles straight from the prewarmed walk and the whole segment
        replays.  Purely an optimisation — carries no packet, moves no
        fingerprinted counter, and a stale or uncacheable walk still
        falls back to the per-packet path mid-run.
        """
        injections = []
        for flow in self._pending:
            for is_response in (False, True):
                if is_response and not flow.response_packets:
                    continue
                src = self.topology.hosts[
                    flow.dst if is_response else flow.src]
                key = (flow.flow_id, is_response)
                frame = self._frames.get(key)
                if frame is None:
                    builder = int_frame if flow.int_enabled else flow_frame
                    frame = self._frames[key] = builder(
                        self.topology, flow, is_response)
                injections.append((src.device, src.port, frame))
        self.topology.network.warm_paths(injections)

    # -- heap plumbing -------------------------------------------------
    def _admit(self) -> None:
        while (self._cursor < len(self._pending)
               and len(self._resident) < self._max_inflight):
            flow = self._pending[self._cursor]
            self._cursor += 1
            record = FlowRecord(flow.flow_id, flow.src, flow.dst)
            self._records.append(record)
            session = (self._plan.derived("fabric", flow.flow_id).session()
                       if self._plan is not None
                       else FaultPlan("none").session())
            events = _flow_events(flow, record, session, self.spec.seed)
            self._resident[flow.flow_id] = len(events)
            for event in events:
                heapq.heappush(self._heap, event)

    def _dispatch(self) -> Optional[_Event]:
        """Pop and carry exactly one event — the batch loop's body.

        Events a coalesced segment already carried pop as no-ops;
        returns ``None`` when the heap drained without a live event.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if self._consumed:
                key = (event.flow_id, event.is_response, event.pkt_index)
                if key in self._consumed:
                    self._consumed.discard(key)
                    continue
            if self.clock is not None:
                self.clock.advance_to(event.tick)
            self._link_ctl.apply(event.tick // FLAP_EPOCH_TICKS)
            _send_packet(self.topology, event, self._flap, self._hops_hist,
                         self._frames, self._loss_by_epoch, self.collector)
            self._finish_events(event, 1)
            return event
        return None

    def _finish_events(self, event: _Event, n: int) -> None:
        """Book ``n`` carried events against the flow's residency."""
        self._resident[event.flow_id] -= n
        if not self._resident[event.flow_id]:
            del self._resident[event.flow_id]
            self._frames.pop((event.flow_id, False), None)
            self._frames.pop((event.flow_id, True), None)
            self._fault_counters.update(event.session.counters)
            self._admit()
        self._dispatched += n

    def _segment_span(self, event: _Event) -> int:
        """How many consecutive packets this event may coalesce.

        The remaining packets of the event's flow direction.  With an
        armed flap oracle or non-static link state the span is capped
        at the flap-epoch boundary: packet ``i`` of the segment sits at
        ``tick + i * gap_ticks``, and every per-epoch oracle must
        answer the same for all of them.  In the epoch-free case
        (no flap, links static) nothing can change mid-segment and the
        span covers the whole remaining burst.
        """
        flow = event.flow
        total = (flow.response_packets if event.is_response
                 else flow.packets)
        left = total - event.pkt_index
        if self._epoch_free:
            return max(left, 1)
        gap = flow.gap_ticks
        if left <= 1 or gap <= 0:
            return max(left, 1) if gap > 0 else left
        epoch_end = (event.tick // FLAP_EPOCH_TICKS + 1) * FLAP_EPOCH_TICKS
        return min(left, (epoch_end - 1 - event.tick) // gap + 1)

    def _dispatch_batched(self) -> int:
        """Pop one event and carry its whole coalesced segment.

        Pull-forward is safe because per-flow outcomes are pure
        functions of ``(topology, workload, seed, plan)`` independent
        of event interleaving — the same contract that lets sharding
        reorder arbitrarily.  The segment's later events stay in the
        heap and pop as no-ops via :attr:`_consumed`.
        """
        event = heapq.heappop(self._heap)
        key = (event.flow_id, event.is_response, event.pkt_index)
        if key in self._consumed:
            self._consumed.discard(key)
            return 0
        n = self._segment_span(event)
        self._link_ctl.apply(event.tick // FLAP_EPOCH_TICKS)
        if n == 1:
            _send_packet(self.topology, event, self._flap, self._hops_hist,
                         self._frames, self._loss_by_epoch, self.collector)
        else:
            _send_batch(self.topology, event, n, self._flap,
                        self._hops_hist, self._frames, self._loss_by_epoch,
                        self.collector)
            for i in range(1, n):
                self._consumed.add(
                    (event.flow_id, event.is_response, event.pkt_index + i)
                )
            self._batch_segments += 1
            self._batch_segment_packets += n
        self._finish_events(event, n)
        return n

    # -- introspection -------------------------------------------------
    @property
    def finished(self) -> bool:
        """All flows carried (the heap only empties once nothing is
        pending — :meth:`_admit` refills it after every completion)."""
        return not self._heap

    @property
    def now(self) -> int:
        """The engine's virtual time: the clock's if one is attached,
        else the tick of the next undispatched event."""
        if self.clock is not None:
            return self.clock.now
        return self._last_tick

    @property
    def _last_tick(self) -> int:
        return self._heap[0].tick if self._heap else 0

    @property
    def next_tick(self) -> Optional[int]:
        """The tick of the next event, or ``None`` when finished."""
        return self._heap[0].tick if self._heap else None

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def flows_admitted(self) -> int:
        return len(self._records)

    @property
    def flows_total(self) -> int:
        return len(self._pending)

    @property
    def events_dispatched(self) -> int:
        return self._dispatched

    # -- stepping surface ----------------------------------------------
    def step(self, events: int = 1) -> int:
        """Dispatch up to ``events`` heap events; returns how many ran."""
        if events < 1:
            raise ValueError("step count must be >= 1")
        done = 0
        while done < events and self._heap:
            if self._dispatch() is not None:
                done += 1
        return done

    def run_until(
        self,
        tick: Optional[int] = None,
        predicate: Optional[Callable[["FlowEngine"], bool]] = None,
    ) -> int:
        """Dispatch until virtual time reaches ``tick`` and/or
        ``predicate(engine)`` holds; returns events dispatched.

        With a ``tick`` bound, every event scheduled at or before it is
        carried and the attached clock (if any) is advanced to exactly
        ``tick`` afterwards, so idle tail cycles pass too.  A predicate
        is re-checked after every event; it stops the run early.
        """
        if tick is None and predicate is None:
            raise ValueError("run_until needs a tick or a predicate")
        done = 0
        while self._heap:
            if predicate is not None and predicate(self):
                break
            if tick is not None and self._heap[0].tick > tick:
                break
            if self._dispatch() is not None:
                done += 1
        if (tick is not None and self.clock is not None
                and (predicate is None or not predicate(self))):
            self.clock.advance_to(tick)
        return done

    def run(self) -> int:
        """Dispatch until finished — or until the clock is paused.

        This is the batch loop: with no clock (or an unpaused one) it
        drains the heap exactly as :func:`run_flows` always did — and
        with the batch tier eligible, consecutive same-flow events
        coalesce into compiled segment replays.
        """
        done = 0
        if self._batch:
            while self._heap:
                done += self._dispatch_batched()
            return done
        while self._heap:
            if self.clock is not None and self.clock.paused:
                break
            if self._dispatch() is not None:
                done += 1
        return done

    # -- the report ----------------------------------------------------
    def report(self) -> FabricReport:
        """Finish the run and build its :class:`FabricReport`.

        Any undispatched events are drained first (ignoring pause — the
        report is total by definition), touched links are restored, and
        the result is memoized: asking twice returns the same object.
        """
        if self._report is not None:
            return self._report
        while self._heap:
            if self._batch:
                self._dispatch_batched()
            else:
                self._dispatch()
        self._link_ctl.restore()
        self._report = FabricReport(
            topology=self.topology.key,
            workload=self.spec.key,
            seed=self.spec.seed,
            plan=self._plan.name if self._plan is not None else None,
            records=sorted(self._records, key=lambda r: r.flow_id),
            device_forwarded=self.topology.device_forwarded(),
            fault_counters=dict(sorted(self._fault_counters.items())),
            hops_hist=dict(sorted(self._hops_hist.items())),
            frr=self._frr,
            link_schedule=(self._link_schedule.key
                           if self._link_schedule is not None else None),
            loss_by_epoch=dict(sorted(self._loss_by_epoch.items())),
            device_reroutes=self.topology.device_counters("frr_reroute"),
            device_blackholed=self.topology.device_counters("frr_blackhole"),
            shards=self._shards,
            elapsed_s=time.perf_counter() - self._started,
            fastpath=self.topology.network.fastpath_stats(),
            int_summary=(self.collector.summary()
                         if self.collector is not None else None),
            max_inflight=self._max_inflight,
            int_all=self._int_all,
            fastpath_enabled=self._fastpath,
            batch=self._batch_stats(),
            batch_enabled=self._batch_requested,
        )
        return self._report

    def _batch_stats(self) -> dict[str, int]:
        stats = self.topology.network.batch_stats()
        stats["segments"] = self._batch_segments
        stats["segment_packets"] = self._batch_segment_packets
        return stats

    def snapshot(self) -> dict:
        """A live mid-run view: totals so far, never memoized.

        Unlike :meth:`report` this does not drain the heap — it sums
        the records as they stand, for the shell's ``status`` and
        ``metrics`` commands.  Fault counters of still-resident flows
        haven't folded in yet, so this is a progress view, not the
        determinism contract.
        """
        totals = Counter()
        for r in self._records:
            totals["attempted"] += r.attempted
            totals["delivered"] += r.delivered
            totals["blackholed"] += r.blackholed
            totals["misdelivered"] += r.misdelivered
            totals["lost"] += _lost_total(r)
        return {
            "finished": self.finished,
            "now": self.now,
            "next_tick": self.next_tick,
            "events_dispatched": self._dispatched,
            "pending_events": len(self._heap),
            "flows_admitted": len(self._records),
            "flows_total": len(self._pending),
            **totals,
        }


def run_flows(
    topology: FabricTopology,
    spec: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    *,
    flow_filter: Optional[Callable[[Flow], bool]] = None,
    flows: Optional[list[Flow]] = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    shards: int = 1,
    fastpath: bool = True,
    frr: bool = False,
    link_schedule: Optional[LinkSchedule] = None,
    int_all: bool = False,
    batch: bool = True,
) -> FabricReport:
    """Run a workload over a fabric; returns the :class:`FabricReport`.

    ``flow_filter`` selects the subset of generated flows this call
    carries (the sharded executor passes ``flow_id % shards == index``);
    the report then covers just that subset, and merging subset reports
    reproduces the full-run report exactly.  ``flows`` overrides the
    workload's generated flow list entirely (the E19 sweep passes the
    crossing flows it constructed for one link); the filter still
    applies on top.

    ``fastpath=False`` disables the flow-cache fast path (path cache +
    per-device microflow caches) for this run — the A/B switch; the
    report's fingerprint is identical either way, only
    ``report.fastpath`` (the cache stats) and the wall clock move.

    ``frr=True`` installs the precomputed loop-free backup next-hops
    after :meth:`~repro.fabric.topo.FabricTopology.learn`, and
    ``link_schedule`` scripts switch-switch link-failure windows; the
    seeded ``link_down`` fault sites (``plan.link_state``) cut cables
    the same way, drawn per (link, epoch).

    ``int_all=True`` upgrades every carried flow to INT regardless of
    the workload's ``int_ratio`` (the ``nf-mon int`` switch).  Whenever
    any carried flow is INT-enabled an :class:`~repro.int.IntCollector`
    rides the run and the report carries its receiver-side summary.

    ``batch=False`` disables the S27 batch tier (compiled per-flow
    closures, coalesced segment dispatch) — the per-packet reference
    path behind ``nf-mon fabric --no-batch``.  Like ``fastpath`` it is
    an A/B switch: the fingerprint is identical either way, only
    ``report.batch`` and the wall clock move.

    This is now a thin veneer over :class:`FlowEngine` — the steppable
    machine the interactive shell (:mod:`repro.shell`) drives with a
    virtual clock.  Batch and interactive runs therefore share one
    code path and fingerprint identically.
    """
    return FlowEngine(
        topology, spec, plan,
        flow_filter=flow_filter, flows=flows, max_inflight=max_inflight,
        shards=shards, fastpath=fastpath, frr=frr,
        link_schedule=link_schedule, int_all=int_all, batch=batch,
    ).report()


def run_fabric(
    topology_spec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    *,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    frr: bool = False,
    link_schedule: Optional[LinkSchedule] = None,
) -> FabricReport:
    """Build a fabric from its spec and run a workload over it."""
    return run_flows(topology_spec.build(), workload, plan,
                     max_inflight=max_inflight, frr=frr,
                     link_schedule=link_schedule)
