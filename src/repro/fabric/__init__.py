"""Fabric workload engine: evaluation at network scale.

The paper's opening claim is that open-source hardware prototyping
matters because it scales evaluation from one device to *networks* of
them.  This package is that scale-out layer, in four stages:

1. **Topology builders** (:mod:`repro.fabric.topo`) — mininet-style
   factories (``linear``, ``star``, ``leaf_spine``, ``fat_tree``) wire
   statically-programmed reference switches into a
   :class:`~repro.testenv.topology.Network`, attach named edge hosts,
   and check the wiring invariants at build time.
2. **Workload generators** (:mod:`repro.fabric.workload`) — seeded
   flow descriptions (uniform / bursty / incast, request/response)
   expanded as a pure function of ``(hosts, spec)``.
3. **Deterministic concurrent scheduling**
   (:mod:`repro.fabric.scheduler`) — thousands of in-flight flows
   interleaved in seeded round-robin order; per-flow outcomes are
   order-independent, summarized in a :class:`FabricReport` whose
   fingerprint pins the run.
4. **Sharded parallel execution** (:mod:`repro.fabric.shard` +
   :mod:`repro.fabric.supervisor`) — independent flows partitioned
   across supervised worker processes (deadlines, heartbeats, seeded
   crash chaos, bounded retries, inline fallback, checkpoint/resume),
   each worker rebuilding its own replica from the same seed, merged
   so the fingerprint is identical for 1 and N shards — crashed
   workers, resumed checkpoints and all.

Quickstart::

    from repro.fabric import get_topology, get_workload, run_sharded

    report = run_sharded(get_topology("leaf-spine"),
                         get_workload("incast-64"), shards=4)
    assert report.healthy()
    print(report.fingerprint())

Fault plans compose exactly as with ``run_test``: pass a
:class:`~repro.faults.FaultPlan` and wire loss, retransmits and link
flaps are drawn deterministically per flow and per (host, epoch).
"""

from repro.fabric.scheduler import (
    DEFAULT_MAX_INFLIGHT,
    FLAP_EPOCH_TICKS,
    FabricReport,
    FlowEngine,
    FlowRecord,
    LinkSchedule,
    run_fabric,
    run_flows,
)
from repro.fabric.shard import merge_reports, run_sharded
from repro.fabric.supervisor import (
    CheckpointStore,
    SupervisorOptions,
    SupervisorStats,
    run_supervised,
)
from repro.fabric.topo import (
    FabricError,
    FabricSpec,
    FabricTopology,
    Host,
    TOPOLOGIES,
    abilene,
    fat_tree,
    get_topology,
    leaf_spine,
    linear,
    oversubscription,
    star,
)
from repro.fabric.workload import (
    Flow,
    PATTERNS,
    WORKLOADS,
    WorkloadSpec,
    generate_flows,
    get_workload,
)

__all__ = [
    "CheckpointStore",
    "DEFAULT_MAX_INFLIGHT",
    "FLAP_EPOCH_TICKS",
    "FabricError",
    "FabricReport",
    "FabricSpec",
    "FabricTopology",
    "Flow",
    "FlowEngine",
    "FlowRecord",
    "Host",
    "LinkSchedule",
    "PATTERNS",
    "SupervisorOptions",
    "SupervisorStats",
    "TOPOLOGIES",
    "WORKLOADS",
    "WorkloadSpec",
    "abilene",
    "fat_tree",
    "generate_flows",
    "get_topology",
    "get_workload",
    "leaf_spine",
    "linear",
    "merge_reports",
    "oversubscription",
    "run_fabric",
    "run_flows",
    "run_sharded",
    "run_supervised",
    "star",
]
