"""Topology builders: mininet-style factories over the device network.

The paper's §1 pitch is evaluation at datacenter scale — *networks* of
NetFPGA devices, not single boards.  These builders wire reference
switches into the classic evaluation shapes (``linear``, ``star``,
``leaf_spine``, ``fat_tree``) around the 4-physical-port constraint of
the SUME pipeline, attach named edge hosts with deterministic MAC/IP
identities, and check the wiring invariants at build time.

Fabric switches are *statically programmed*: multipath shapes
(leaf-spine, fat-tree) contain loops, where flood-based MAC learning is
order-dependent and broadcast storms only stop at the hop limit.  So
:meth:`FabricTopology.learn` runs the learning phase explicitly — a
deterministic BFS from every host over the device graph (ties broken by
sorted port order) installs one pinned FDB entry per (switch, host),
and the switches are built with dynamic learning frozen.  Forwarding is
then a pure function of the programmed state, which is exactly what
lets the workload engine shard flows across processes and still merge
to a byte-identical fingerprint.

A :class:`FabricSpec` is the picklable *description* of a topology
(kind + parameters); shard workers rebuild their own replica from it.
Named presets live in :data:`TOPOLOGIES` (``get_topology`` resolves,
with the same friendly unknown-name error the fault-plan registry
gives).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame
from repro.projects.base import PortRef
from repro.projects.reference_switch import ReferenceSwitch
from repro.testenv.topology import Attachment, Network, Ping, TopologyError

#: Physical ports per device (the SUME pipeline's nf0..nf3).
PORTS_PER_DEVICE = 4

#: Host identity bases: locally administered MACs, a dedicated /16.
_HOST_MAC_BASE = 0x02_FA_00_00_00_00
_HOST_IP_BASE = 0x0A_FA_00_00  # 10.250.0.0


class FabricError(TopologyError):
    """Impossible fabric parameters (port budget, shape constraints)."""


@dataclass(frozen=True)
class Host:
    """A named edge host: where flows start and terminate."""

    name: str
    device: str
    port: int
    mac: MacAddr
    ip: Ipv4Addr


def _host(index: int, device: str, port: int) -> Host:
    return Host(
        name=f"h{index}",
        device=device,
        port=port,
        mac=MacAddr(_HOST_MAC_BASE + index),
        ip=Ipv4Addr(_HOST_IP_BASE + index),
    )


class FabricTopology:
    """A built fabric: the network, its named hosts, and its metadata."""

    def __init__(
        self,
        kind: str,
        params: dict[str, int],
        network: Network,
        hosts: list[Host],
    ):
        self.kind = kind
        self.params = dict(params)
        self.network = network
        self.hosts: dict[str, Host] = {h.name: h for h in hosts}
        self._learned = False
        self._backups_installed = False
        self.validate()

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Canonical identity string, part of every run fingerprint."""
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"

    def host_names(self) -> list[str]:
        return sorted(self.hosts, key=lambda n: self.hosts[n].mac.value)

    def host_by_mac(self, mac: MacAddr) -> Host | None:
        for host in self.hosts.values():
            if host.mac == mac:
                return host
        return None

    # ------------------------------------------------------------------
    # Link enumeration (what the E19 sweep driver iterates)
    # ------------------------------------------------------------------
    def links(self) -> list[tuple[str, int, str, int]]:
        """Every switch-switch cable once, sorted.

        Each entry is ``(device_a, port_a, device_b, port_b)`` with the
        ends ordered by (device, port) — the fabric's internal link set,
        exactly what a single-link-failure sweep iterates.
        """
        return sorted(
            (a.device, a.port.index, b.device, b.port.index)
            for a, b in self.network.links()
        )

    def edge_links(self) -> list[tuple[str, str, int]]:
        """Host attachment points as ``(host, device, port)``.

        In canonical host order — the edge side of the fabric, disjoint
        from :meth:`links` (hosts attach to un-cabled ports).
        """
        return [
            (name, self.hosts[name].device, self.hosts[name].port)
            for name in self.host_names()
        ]

    # ------------------------------------------------------------------
    # Build-time invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Wiring invariants every fabric must satisfy.

        Port-range and port-reuse violations already raise inside
        :meth:`Network.link`; this re-checks the fabric-level contract:
        host attachment points are distinct un-cabled ports on known
        devices, and the device graph is connected (no partitioned
        fabric can carry all-pairs traffic).
        """
        net = self.network
        taken: set[tuple[str, int]] = set()
        for host in self.hosts.values():
            spot = (host.device, host.port)
            if spot in taken:
                raise FabricError(f"two hosts share attachment {spot}")
            taken.add(spot)
            free = {p.index for p in net.edge_ports(host.device)}
            if host.port not in free:
                raise FabricError(
                    f"host {host.name} attached to cabled port {spot}"
                )
        devices = net.device_names()
        if not devices:
            raise FabricError("fabric has no devices")
        seen = {devices[0]}
        frontier = deque(seen)
        while frontier:
            for _, (peer, _) in sorted(net.neighbors(frontier.popleft()).items()):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        if len(seen) != len(devices):
            missing = sorted(set(devices) - seen)
            raise FabricError(f"fabric is partitioned; unreachable: {missing}")

    # ------------------------------------------------------------------
    # The deterministic learning phase
    # ------------------------------------------------------------------
    def learn(self) -> int:
        """Install the pinned FDB entries every switch needs.

        For each host: BFS outward from its edge switch over the device
        graph; every switch reached through link ``(d.p ↔ peer.q)``
        learns "host is via my port q".  FIFO BFS with neighbors visited
        in sorted port order makes the chosen path the deterministic
        shortest one, so the programmed state — and therefore every
        forwarding decision — is a pure function of the topology.

        Idempotent; returns the number of entries installed.
        """
        if self._learned:
            return 0
        net = self.network
        installed = 0
        for name in self.host_names():
            host = self.hosts[name]
            edge = net.device(host.device)
            if not edge.install_static_mac(host.mac, host.port):
                raise FabricError(f"FDB full installing {name} on {host.device}")
            installed += 1
            seen = {host.device}
            frontier = deque([host.device])
            while frontier:
                device = frontier.popleft()
                for _, (peer, peer_port) in sorted(net.neighbors(device).items()):
                    if peer in seen:
                        continue
                    seen.add(peer)
                    if not net.device(peer).install_static_mac(host.mac, peer_port):
                        raise FabricError(f"FDB full installing {name} on {peer}")
                    installed += 1
                    frontier.append(peer)
        self._learned = True
        return installed

    def install_backups(self) -> int:
        """Install loop-free backup next-hops next to the FDB entries.

        Runs the fast-reroute computation (:mod:`repro.frr.backup`) over
        the same BFS trees :meth:`learn` programmed from and writes the
        backup-port column on every switch.  Requires :meth:`learn`
        first; idempotent.  Returns the number of entries installed.
        """
        if self._backups_installed:
            return 0
        if not self._learned:
            raise FabricError("install_backups() requires learn() first")
        from repro.frr.backup import install_backups

        installed = install_backups(self)
        self._backups_installed = True
        return installed

    # ------------------------------------------------------------------
    def device_forwarded(self) -> dict[str, int]:
        """Packets each device's lookup stage has forwarded so far."""
        net = self.network
        return {
            name: net.device(name).opl.packets - net.device(name).opl.drops
            for name in net.device_names()
        }

    def device_counters(self, counter: str) -> dict[str, int]:
        """One OPL counter across the fabric; zero-count devices omitted.

        The omission keeps the dict merge-friendly (summing shard
        replicas never has to reconcile explicit zeros) and the report
        signature compact.
        """
        net = self.network
        out: dict[str, int] = {}
        for name in net.device_names():
            count = net.device(name).opl.counters.get(counter, 0)
            if count:
                out[name] = count
        return out

    # ------------------------------------------------------------------
    # Reachability probes (the shell's pingall, sandboxed)
    # ------------------------------------------------------------------
    def probe_frame(self, src: str, dst: str) -> bytes:
        """A minimal unicast probe frame between two named hosts."""
        s, d = self.hosts[src], self.hosts[dst]
        return make_udp_frame(s.mac, d.mac, s.ip, d.ip, 7, 7, size=64).pack()

    def pingall(self) -> dict[tuple[str, str], Ping]:
        """Data-plane reachability of every ordered host pair.

        Runs :meth:`learn` if needed, then sends one probe frame per
        ordered pair through the real forwarding tables inside
        :meth:`Network.sandbox` — the fabric's fingerprinted counters
        are byte-identical before and after, so a mid-run ``pingall``
        never perturbs the run it is observing.
        """
        self.learn()
        endpoints = {
            name: Attachment(h.device, PortRef("phys", h.port))
            for name, h in self.hosts.items()
        }
        return self.network.pingall(endpoints, self.probe_frame)

    def reachability_matrix(self) -> dict[tuple[str, str], bool]:
        """Graph-level host-pair reachability over cables with link up.

        BFS connectivity between each pair's edge switches — *potential*
        reachability from the wiring alone, against which
        :meth:`pingall` (the data-plane truth) can be diffed: a pair
        reachable here but not delivering there is a table bug or an
        un-rerouted failure, not a partition.
        """
        components = self.network.reachability_matrix()
        out: dict[tuple[str, str], bool] = {}
        for src in self.host_names():
            for dst in self.host_names():
                if src == dst:
                    continue
                out[(src, dst)] = (
                    self.hosts[dst].device
                    in components[self.hosts[src].device]
                )
        return out

    def describe(self) -> str:
        lines = [f"fabric {self.key}: {len(self.hosts)} hosts"]
        lines.append(self.network.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _switch(net: Network, name: str) -> ReferenceSwitch:
    return net.add_device(name, ReferenceSwitch(name=name, learning=False))


def linear(length: int = 4, hosts_per_switch: int = 1,
           hop_limit: int = 64) -> FabricTopology:
    """A chain ``s0—s1—…—s{n-1}`` with hosts on each switch's free ports."""
    if length < 1:
        raise FabricError("linear fabric needs at least one switch")
    if hosts_per_switch < 1:
        raise FabricError("hosts_per_switch must be >= 1")
    net = Network(hop_limit=hop_limit)
    for i in range(length):
        _switch(net, f"s{i}")
    for i in range(length - 1):
        net.link(f"s{i}", PORTS_PER_DEVICE - 1, f"s{i + 1}", 0)
    hosts: list[Host] = []
    for i in range(length):
        free = [p.index for p in net.edge_ports(f"s{i}")]
        if hosts_per_switch > len(free):
            raise FabricError(
                f"switch s{i} has {len(free)} free ports, "
                f"cannot attach {hosts_per_switch} hosts"
            )
        for j in range(hosts_per_switch):
            hosts.append(_host(len(hosts), f"s{i}", free[j]))
    return FabricTopology(
        "linear", {"length": length, "hosts_per_switch": hosts_per_switch},
        net, hosts,
    )


def star(leaves: int = 3, hosts_per_leaf: int = 2,
         hop_limit: int = 64) -> FabricTopology:
    """A hub switch with ``leaves`` leaf switches, hosts on the leaves."""
    if not 1 <= leaves <= PORTS_PER_DEVICE:
        raise FabricError(f"star supports 1..{PORTS_PER_DEVICE} leaves")
    if not 1 <= hosts_per_leaf <= PORTS_PER_DEVICE - 1:
        raise FabricError(
            f"hosts_per_leaf must be 1..{PORTS_PER_DEVICE - 1} "
            f"(one leaf port feeds the hub)"
        )
    net = Network(hop_limit=hop_limit)
    _switch(net, "hub")
    hosts: list[Host] = []
    for i in range(leaves):
        leaf = f"leaf{i}"
        _switch(net, leaf)
        net.link("hub", i, leaf, 0)
        for j in range(hosts_per_leaf):
            hosts.append(_host(len(hosts), leaf, 1 + j))
    return FabricTopology(
        "star", {"leaves": leaves, "hosts_per_leaf": hosts_per_leaf}, net, hosts,
    )


def leaf_spine(leaves: int = 3, spines: int = 2,
               hosts_per_leaf: int | None = None,
               hop_limit: int = 64) -> FabricTopology:
    """A folded-Clos leaf-spine: every leaf uplinks to every spine.

    Leaf port budget: ports ``0..spines-1`` are uplinks, the rest host
    ports — so ``spines + hosts_per_leaf <= 4`` and ``leaves <= 4``
    (spine port budget).  The fabric's oversubscription ratio is
    ``hosts_per_leaf / spines`` (edge capacity over fabric capacity),
    exposed as ``params["hosts_per_leaf"] / params["spines"]`` and via
    :func:`oversubscription`.
    """
    if not 1 <= spines < PORTS_PER_DEVICE:
        raise FabricError(f"spines must be 1..{PORTS_PER_DEVICE - 1}")
    if not 1 <= leaves <= PORTS_PER_DEVICE:
        raise FabricError(f"leaves must be 1..{PORTS_PER_DEVICE} (spine ports)")
    if hosts_per_leaf is None:
        hosts_per_leaf = PORTS_PER_DEVICE - spines
    if hosts_per_leaf < 1 or spines + hosts_per_leaf > PORTS_PER_DEVICE:
        raise FabricError(
            f"leaf port budget exceeded: {spines} uplinks + "
            f"{hosts_per_leaf} hosts > {PORTS_PER_DEVICE}"
        )
    net = Network(hop_limit=hop_limit)
    for s in range(spines):
        _switch(net, f"spine{s}")
    hosts: list[Host] = []
    for l in range(leaves):
        leaf = f"leaf{l}"
        _switch(net, leaf)
        for s in range(spines):
            net.link(leaf, s, f"spine{s}", l)
        for j in range(hosts_per_leaf):
            hosts.append(_host(len(hosts), leaf, spines + j))
    return FabricTopology(
        "leaf_spine",
        {"leaves": leaves, "spines": spines, "hosts_per_leaf": hosts_per_leaf},
        net, hosts,
    )


#: The Abilene research backbone (11 PoPs, 14 links) — the classic
#: wide-area evaluation topology for fast-reroute studies.  Max node
#: degree is 3, so it fits the 4-port SUME constraint with one free
#: port per PoP for its host.
_ABILENE_NODES = (
    "atl", "chi", "dc", "den", "hou", "ind", "kc", "lax", "ny", "sea", "svl",
)
_ABILENE_EDGES = (
    ("sea", "svl"), ("sea", "den"), ("svl", "lax"), ("svl", "den"),
    ("lax", "hou"), ("den", "kc"), ("kc", "hou"), ("kc", "ind"),
    ("hou", "atl"), ("ind", "chi"), ("ind", "atl"), ("chi", "ny"),
    ("atl", "dc"), ("dc", "ny"),
)


def abilene(hop_limit: int = 64) -> FabricTopology:
    """The Abilene backbone with one host per PoP.

    Link ports are assigned in fixed edge-list order (each node's next
    free port), so the wiring — and everything learned over it — is
    deterministic.  This is the E19 single-link-failure sweep's
    wide-area topology: rich in alternate paths (every link sits on a
    cycle), which is what gives fast reroute full backup coverage.
    """
    net = Network(hop_limit=hop_limit)
    for node in _ABILENE_NODES:
        _switch(net, node)
    next_port = {node: 0 for node in _ABILENE_NODES}
    for a, b in _ABILENE_EDGES:
        net.link(a, next_port[a], b, next_port[b])
        next_port[a] += 1
        next_port[b] += 1
    hosts: list[Host] = []
    for node in _ABILENE_NODES:
        free = [p.index for p in net.edge_ports(node)]
        if not free:
            raise FabricError(f"PoP {node} has no free port for its host")
        hosts.append(_host(len(hosts), node, free[0]))
    return FabricTopology("abilene", {}, net, hosts)


def oversubscription(topology: FabricTopology) -> float:
    """Edge-to-fabric capacity ratio of a leaf-spine fabric."""
    if topology.kind != "leaf_spine":
        raise FabricError(f"oversubscription is a leaf-spine property, "
                          f"not {topology.kind}")
    return topology.params["hosts_per_leaf"] / topology.params["spines"]


def fat_tree(k: int = 4, hop_limit: int = 64) -> FabricTopology:
    """The canonical k-ary fat-tree (Al-Fares et al.) from k-port switches.

    With 4-port devices, ``k`` must be 2 or 4.  For ``k=4``: 4 pods of
    2 edge + 2 aggregation switches, 4 core switches, 16 hosts; every
    switch uses all 4 ports.  Wiring: edge ``e`` in pod ``p`` puts hosts
    on ports ``0..k/2-1`` and its pod's aggs on ``k/2..k-1``; agg ``a``
    puts its pod's edges on ``0..k/2-1`` and core group ``a`` on
    ``k/2..k-1``; core ``(g, j)`` dedicates port ``p`` to pod ``p``.
    """
    if k not in (2, PORTS_PER_DEVICE):
        raise FabricError(
            f"fat_tree(k) needs k-port switches: k in (2, {PORTS_PER_DEVICE})"
        )
    half = k // 2
    net = Network(hop_limit=hop_limit)
    for g in range(half):
        for j in range(half):
            _switch(net, f"core{g}_{j}")
    hosts: list[Host] = []
    for p in range(k):
        for a in range(half):
            _switch(net, f"agg{p}_{a}")
        for e in range(half):
            _switch(net, f"edge{p}_{e}")
        for a in range(half):
            # Pod-internal bipartite mesh: agg a ↔ every edge.
            for e in range(half):
                net.link(f"agg{p}_{a}", e, f"edge{p}_{e}", half + a)
            # Uplinks: agg a serves core group a.
            for j in range(half):
                net.link(f"agg{p}_{a}", half + j, f"core{a}_{j}", p)
        for e in range(half):
            for j in range(half):
                hosts.append(_host(len(hosts), f"edge{p}_{e}", j))
    return FabricTopology("fat_tree", {"k": k}, net, hosts)


# ----------------------------------------------------------------------
# Picklable descriptions + the preset registry
# ----------------------------------------------------------------------
_BUILDERS: dict[str, Callable[..., FabricTopology]] = {
    "linear": linear,
    "star": star,
    "leaf_spine": leaf_spine,
    "fat_tree": fat_tree,
    "abilene": abilene,
}


@dataclass(frozen=True)
class FabricSpec:
    """A picklable topology description shard workers rebuild from.

    ``params`` is a sorted ``(name, value)`` tuple so the spec hashes,
    pickles and compares structurally.
    """

    kind: str
    params: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _BUILDERS:
            raise FabricError(
                f"unknown fabric kind {self.kind!r}; "
                f"available: {tuple(sorted(_BUILDERS))}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @classmethod
    def of(cls, kind: str, **params: int) -> "FabricSpec":
        return cls(kind, tuple(sorted(params.items())))

    def build(self) -> FabricTopology:
        return _BUILDERS[self.kind](**dict(self.params))

    @property
    def key(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


#: Named topology presets (`nf-mon fabric --topo <name>`).
TOPOLOGIES: dict[str, FabricSpec] = {
    "linear-4": FabricSpec.of("linear", length=4, hosts_per_switch=1),
    "star-3": FabricSpec.of("star", leaves=3, hosts_per_leaf=2),
    "leaf-spine": FabricSpec.of("leaf_spine", leaves=3, spines=2),
    "leaf-spine-wide": FabricSpec.of(
        "leaf_spine", leaves=4, spines=2, hosts_per_leaf=2
    ),
    "fat-tree-4": FabricSpec.of("fat_tree", k=4),
    "abilene": FabricSpec.of("abilene"),
}


def get_topology(name: str) -> FabricSpec:
    """Resolve a preset name, with the registry's friendly error."""
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown fabric topology {name!r}; "
            f"available: {tuple(sorted(TOPOLOGIES))}"
        ) from None
