"""Supervised shard execution: deadlines, heartbeats, retries, checkpoints.

The bare ``Pool.starmap`` executor had one failure mode: total.  A
crashed, hung or OOM-killed worker aborted the whole fabric run with
nothing salvaged.  This module replaces it with a **supervisor** that
treats partial failure as the common case and still never changes what
the run computes:

* every shard runs in its own worker process under a wall-clock
  **deadline** and a **heartbeat** (a worker whose heartbeats stop is
  declared hung and killed — long before the deadline would fire);
* a failed, hung or poisoned shard is **retried** with exponential
  backoff up to a budget (:class:`SupervisorOptions.max_retries`);
* a shard that exhausts its budget falls back to **deterministic
  inline execution** in the supervisor's own process — graceful
  degradation, never a lost run;
* every result crosses an **integrity check** at the merge boundary
  (the worker's self-fingerprint is recomputed on arrival and the
  partition membership verified), so a corrupted or wrong-partition
  report is re-run, never merged;
* accepted shard reports are **checkpointed** as they land (atomic
  rename under a run-identity header), so a mid-run supervisor restart
  resumes from the surviving shards instead of recomputing them.

Because ``run_flows`` is a pure function of ``(topology, workload,
seed)``, a retried attempt, an inline fallback and a checkpoint-restored
report are all byte-identical to the first attempt's result — which is
what pins the module's invariant: the merged
:meth:`~repro.fabric.scheduler.FabricReport.fingerprint` is identical
across {clean, any seeded crash schedule, resume-from-checkpoint} at
every shard count, flow caches on or off.

Crash chaos is seeded through :mod:`repro.faults`: a chaos plan carrying
a :class:`~repro.faults.ShardFaultSpec` draws one action per ``(shard,
attempt)`` launch from derived sub-seeds (``shard_crash`` /
``shard_hang`` / ``shard_corrupt`` sites).  The chaos plan is
*operational* — it shapes how workers die, never which packets deliver —
so it is deliberately separate from the data-plane fault ``plan`` and
absent from the report's identity and fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, fields
from multiprocessing import Pipe, Process, connection
from pathlib import Path
from typing import Optional

from repro.fabric.scheduler import (
    DEFAULT_MAX_INFLIGHT,
    FabricReport,
    FlowRecord,
    LinkSchedule,
)
from repro.fabric.topo import FabricSpec
from repro.fabric.workload import Flow, WorkloadSpec
from repro.faults import FaultPlan

#: Message tags on the worker → supervisor pipe.
_HEARTBEAT = "hb"
_RESULT = "ok"

#: Bumped when the checkpoint layout changes; old directories are then
#: rejected rather than misread.  2: the S27 batch tier joined the run
#: identity and the serialized report.
CHECKPOINT_FORMAT = 2

#: The worker's exit code for a chaos-drawn crash (visible in stats
#: debugging; any non-zero exit without a result is treated the same).
_CRASH_EXIT_CODE = 3


@dataclass(frozen=True)
class SupervisorOptions:
    """Supervision knobs.  Defaults suit CI-sized runs; tests shrink
    the timeouts to exercise the kill paths quickly."""

    #: Per-attempt wall-clock budget; an overrunning worker is killed.
    deadline_s: float = 120.0
    #: Worker heartbeat period (a daemon thread beside the shard work).
    heartbeat_s: float = 0.05
    #: Heartbeat silence that declares a worker hung.  Generous versus
    #: scheduler jitter, tiny versus the deadline, so wedged workers
    #: die fast without false positives.
    heartbeat_timeout_s: float = 2.0
    #: Relaunches per shard before the inline fallback.
    max_retries: int = 3
    #: Exponential backoff: sleep ``base * 2**(attempt-1)`` (capped)
    #: before relaunching a failed shard.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: Supervisor select/health-check granularity.
    poll_s: float = 0.02

    def __post_init__(self) -> None:
        if self.deadline_s <= 0 or self.heartbeat_s <= 0:
            raise ValueError("deadline_s and heartbeat_s must be positive")
        if self.heartbeat_timeout_s <= self.heartbeat_s:
            raise ValueError("heartbeat_timeout_s must exceed heartbeat_s")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** max(0, attempt - 1)))


@dataclass
class SupervisorStats:
    """The supervision ledger, attached to the merged report as
    ``report.supervision`` and mirrored by ``probe_shard``.

    Everything chaos-attributable (retries, fallbacks, corrupt
    detections, checkpoint hits) is a pure function of the chaos
    plan's seed, so the ledger joins the sim/hw parity series.
    """

    attempts: int = 0           # worker processes launched
    retries: int = 0            # relaunches after a failure
    worker_crashes: int = 0     # exited without delivering a result
    heartbeat_gaps: int = 0     # killed for silent heartbeats
    deadline_kills: int = 0     # killed for overrunning the deadline
    corrupt_results: int = 0    # results refused at the merge boundary
    fallbacks: int = 0          # shards completed inline after budget
    checkpoint_hits: int = 0    # shards restored instead of recomputed
    checkpoint_writes: int = 0  # shard reports persisted

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


# ----------------------------------------------------------------------
# Report serialization (the checkpoint wire format)
# ----------------------------------------------------------------------
def report_to_dict(report: FabricReport) -> dict:
    """A JSON-safe dump that :func:`report_from_dict` inverts exactly."""
    return {
        "topology": report.topology,
        "workload": report.workload,
        "seed": report.seed,
        "plan": report.plan,
        "records": [r.as_dict() for r in report.records],
        "device_forwarded": report.device_forwarded,
        "fault_counters": report.fault_counters,
        "hops_hist": {str(k): v for k, v in report.hops_hist.items()},
        "frr": report.frr,
        "link_schedule": report.link_schedule,
        "loss_by_epoch": {str(k): v for k, v in report.loss_by_epoch.items()},
        "device_reroutes": report.device_reroutes,
        "device_blackholed": report.device_blackholed,
        "shards": report.shards,
        "elapsed_s": report.elapsed_s,
        "fastpath": report.fastpath,
        "int_summary": report.int_summary,
        "max_inflight": report.max_inflight,
        "int_all": report.int_all,
        "fastpath_enabled": report.fastpath_enabled,
        "batch": report.batch,
        "batch_enabled": report.batch_enabled,
    }


def report_from_dict(data: dict) -> FabricReport:
    """Rebuild a :class:`FabricReport` from :func:`report_to_dict` output."""
    return FabricReport(
        topology=data["topology"],
        workload=data["workload"],
        seed=data["seed"],
        plan=data["plan"],
        records=[FlowRecord(**r) for r in data["records"]],
        device_forwarded=dict(data["device_forwarded"]),
        fault_counters=dict(data["fault_counters"]),
        hops_hist={int(k): v for k, v in data["hops_hist"].items()},
        frr=data["frr"],
        link_schedule=data["link_schedule"],
        loss_by_epoch={int(k): v for k, v in data["loss_by_epoch"].items()},
        device_reroutes=dict(data["device_reroutes"]),
        device_blackholed=dict(data["device_blackholed"]),
        shards=data["shards"],
        elapsed_s=data["elapsed_s"],
        fastpath=dict(data["fastpath"]),
        int_summary=data["int_summary"],
        max_inflight=data["max_inflight"],
        int_all=data["int_all"],
        fastpath_enabled=data["fastpath_enabled"],
        batch=dict(data.get("batch", {})),
        batch_enabled=data.get("batch_enabled", True),
    )


def _flows_digest(flows: Optional[list[Flow]]) -> Optional[str]:
    """Identity of an explicit flow-list override (``None`` when the
    workload generates the flows — the spec already names them)."""
    if flows is None:
        return None
    text = ";".join(repr(f) for f in flows)
    return hashlib.sha256(text.encode()).hexdigest()


def run_identity(
    spec: FabricSpec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan],
    shards: int,
    max_inflight: int,
    fastpath: bool,
    flows: Optional[list[Flow]],
    frr: bool,
    link_schedule: Optional[LinkSchedule],
    int_all: bool,
    batch: bool = True,
) -> dict:
    """Everything that determines a run's outcome, as a flat JSON dict.

    A checkpoint directory is bound to one identity; resuming with any
    other is refused, so two different runs can never cross-pollinate
    through a shared checkpoint path.
    """
    return {
        "format": CHECKPOINT_FORMAT,
        "topology": spec.key,
        "workload": workload.key,
        "seed": workload.seed,
        "plan": plan.name if plan is not None else None,
        "plan_seed": plan.seed if plan is not None else None,
        "shards": shards,
        "max_inflight": max_inflight,
        "fastpath": fastpath,
        "flows": _flows_digest(flows),
        "frr": frr,
        "link_schedule": (link_schedule.key
                          if link_schedule is not None else None),
        "int_all": int_all,
        "batch": batch,
    }


class CheckpointStore:
    """Durable per-shard results under one run's identity header.

    Layout: ``run.json`` (the identity) plus one ``shard-<i>.json``
    per accepted shard, each written atomically (tmp + rename) so a
    supervisor killed mid-write never leaves a torn shard file.  Loads
    re-verify the stored fingerprint and silently discard anything
    garbled — a bad checkpoint costs a recompute, never a bad merge.
    """

    def __init__(self, root: str | os.PathLike, identity: dict):
        self.root = Path(root)
        self.identity = identity
        self.root.mkdir(parents=True, exist_ok=True)
        header = self.root / "run.json"
        if header.exists():
            try:
                recorded = json.loads(header.read_text())
            except ValueError:
                raise ValueError(
                    f"checkpoint header {header} is unreadable; "
                    "remove the directory to start fresh"
                ) from None
            if recorded != identity:
                raise ValueError(
                    f"checkpoint at {self.root} belongs to a different "
                    f"run: {recorded} != {identity}"
                )
        else:
            self._write(header, json.dumps(identity, sort_keys=True,
                                           indent=2) + "\n")

    @staticmethod
    def _write(path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text)
        tmp.replace(path)

    def _shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index}.json"

    def load(self, index: int) -> Optional[FabricReport]:
        """The surviving report for ``index``, or ``None`` if absent,
        torn, or failing its own stored fingerprint."""
        path = self._shard_path(index)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            report = report_from_dict(payload["report"])
        except (ValueError, KeyError, TypeError):
            return None
        if report.fingerprint() != payload.get("fingerprint"):
            return None
        return report

    def save(self, index: int, report: FabricReport) -> None:
        payload = {
            "fingerprint": report.fingerprint(),
            "report": report_to_dict(report),
        }
        self._write(self._shard_path(index),
                    json.dumps(payload, sort_keys=True))


# ----------------------------------------------------------------------
# The worker side
# ----------------------------------------------------------------------
def _corrupt_report(report: FabricReport) -> None:
    """The seeded ``shard_corrupt`` action: bit rot in the result
    channel.  Mangles both a counter (caught by the fingerprint
    recheck) and a partition id (caught by the membership check) so
    either integrity guard alone would refuse the report."""
    if report.records:
        report.records[0].delivered += 1_000_000
        report.records[-1].flow_id += 1
    else:
        report.device_forwarded["corrupted"] = 1


def _shard_worker(conn, job: tuple, chaos_action: Optional[str],
                  heartbeat_s: float) -> None:
    """One worker process: heartbeat thread + one shard's flows.

    The chaos action was drawn in the supervisor (per (shard, attempt),
    from the chaos plan's derived seeds) and ships with the launch, so
    worker-side chaos needs no RNG and no timing: ``crash`` exits
    without a result, ``hang`` wedges with heartbeats stopped (a truly
    dead worker does not heartbeat), ``corrupt`` mangles the result
    *after* self-fingerprinting — exactly what the merge-boundary
    integrity check exists to catch.
    """
    from repro.fabric.shard import _run_shard

    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            try:
                conn.send((_HEARTBEAT, time.monotonic()))
            except (BrokenPipeError, OSError):
                return
            stop.wait(heartbeat_s)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    if chaos_action == "crash":
        conn.send((_HEARTBEAT, time.monotonic()))
        os._exit(_CRASH_EXIT_CODE)
    if chaos_action == "hang":
        stop.set()  # a wedged process stops heartbeating too
        while True:  # pragma: no cover - killed by the supervisor
            time.sleep(60.0)
    report = _run_shard(*job)
    fingerprint = report.fingerprint()
    if chaos_action == "corrupt":
        _corrupt_report(report)
    stop.set()
    thread.join(timeout=1.0)
    try:
        conn.send((_RESULT, report, fingerprint))
    finally:
        conn.close()


def _chaos_action(chaos: Optional[FaultPlan], index: int,
                  attempt: int) -> Optional[str]:
    """The seeded action for launching shard ``index``, try ``attempt``."""
    if chaos is None or chaos.shard is None:
        return None
    return chaos.derived("shard", index, attempt).session().shard_fault()


def reject_reason(report, fingerprint, shards: int,
                  index: int) -> Optional[str]:
    """Why a worker's result must not be merged (``None`` = accept).

    The merge-boundary integrity check: the report must be a real
    :class:`FabricReport`, its recomputed fingerprint must equal the
    worker's self-fingerprint (anything mangled in the result channel
    diverges), and every record must belong to this worker's partition
    (a wrong-partition report would *pass* the duplicate-id merge guard
    if its twin shard crashed, so membership is checked here).
    """
    if not isinstance(report, FabricReport):
        return f"result is {type(report).__name__}, not a FabricReport"
    if report.fingerprint() != fingerprint:
        return "fingerprint mismatch: result corrupted in transit"
    bad = [r.flow_id for r in report.records if r.flow_id % shards != index]
    if bad:
        return (f"wrong partition: flow ids {bad[:4]} are not "
                f"≡ {index} (mod {shards})")
    return None


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class _Worker:
    """One live attempt: the process, its pipe, and its clocks."""

    __slots__ = ("index", "attempt", "process", "conn", "started",
                 "last_beat", "result")

    def __init__(self, index: int, attempt: int, process: Process, conn):
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = time.monotonic()
        self.last_beat = self.started
        self.result: Optional[tuple] = None  # (report, fingerprint)

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(timeout=2.0)
        self.conn.close()

    def drain(self) -> None:
        """Pull every buffered message; keeps the last result seen."""
        try:
            while self.conn.poll():
                message = self.conn.recv()
                if message[0] == _HEARTBEAT:
                    self.last_beat = time.monotonic()
                elif message[0] == _RESULT:
                    self.result = (message[1], message[2])
        except (EOFError, OSError):
            pass  # worker went away mid-message; health check decides


def run_supervised(
    spec: FabricSpec,
    workload: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    *,
    shards: int,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    fastpath: bool = True,
    flows: Optional[list[Flow]] = None,
    frr: bool = False,
    link_schedule: Optional[LinkSchedule] = None,
    int_all: bool = False,
    batch: bool = True,
    chaos: Optional[FaultPlan] = None,
    checkpoint: Optional[str | os.PathLike] = None,
    options: Optional[SupervisorOptions] = None,
) -> FabricReport:
    """Run a sharded fabric workload under supervision and merge.

    The drop-in supervised equivalent of the bare pool: same partition
    (``flow_id % shards``), same merge, same fingerprint — plus worker
    deadlines/heartbeats, seeded ``chaos``, bounded retries with the
    inline fallback, and optional ``checkpoint`` (a directory) for
    resume.  The merged report carries the supervision ledger in
    ``report.supervision``.
    """
    from repro.fabric.shard import _pool_size, _run_shard, merge_reports

    options = options or SupervisorOptions()
    stats = SupervisorStats()
    identity = run_identity(spec, workload, plan, shards, max_inflight,
                            fastpath, flows, frr, link_schedule, int_all,
                            batch)
    store = (CheckpointStore(checkpoint, identity)
             if checkpoint is not None else None)

    def job(index: int) -> tuple:
        return (spec, workload, plan, shards, index, max_inflight,
                fastpath, flows, frr, link_schedule, int_all, batch)

    results: dict[int, FabricReport] = {}
    waiting: set[int] = set()
    for index in range(shards):
        restored = store.load(index) if store is not None else None
        if (restored is not None and reject_reason(
                restored, restored.fingerprint(), shards, index) is None):
            results[index] = restored
            stats.checkpoint_hits += 1
        else:
            waiting.add(index)

    attempts: dict[int, int] = {index: 0 for index in waiting}
    backoff_until: dict[int, float] = {}
    active: dict[int, _Worker] = {}
    cap = _pool_size(shards)

    def accept(index: int, report: FabricReport) -> None:
        results[index] = report
        if store is not None:
            store.save(index, report)
            stats.checkpoint_writes += 1

    def fail(worker: _Worker) -> None:
        """One attempt lost; relaunch after backoff or fall back inline."""
        index = worker.index
        del active[index]
        attempts[index] += 1
        if attempts[index] > options.max_retries:
            # Graceful degradation: the shard runs deterministically in
            # this process.  Chaos only ever touches workers, so the
            # fallback cannot fail the same way — the run always lands.
            stats.fallbacks += 1
            accept(index, _run_shard(*job(index)))
            return
        stats.retries += 1
        backoff_until[index] = (time.monotonic()
                                + options.backoff(attempts[index]))
        waiting.add(index)

    def launch(index: int) -> None:
        attempt = attempts[index]
        action = _chaos_action(chaos, index, attempt)
        parent_conn, child_conn = Pipe(duplex=False)
        process = Process(
            target=_shard_worker,
            args=(child_conn, job(index), action, options.heartbeat_s),
            daemon=True,
        )
        process.start()
        child_conn.close()
        active[index] = _Worker(index, attempt, process, parent_conn)
        stats.attempts += 1

    while len(results) < shards:
        now = time.monotonic()
        for index in sorted(waiting):
            if len(active) >= cap:
                break
            if backoff_until.get(index, 0.0) > now:
                continue
            waiting.discard(index)
            launch(index)
        if active:
            connection.wait([w.conn for w in active.values()],
                            timeout=options.poll_s)
        elif waiting:
            # Everything alive is backing off; sleep one poll tick.
            time.sleep(options.poll_s)
        now = time.monotonic()
        for worker in list(active.values()):
            worker.drain()
            if worker.result is not None:
                report, fingerprint = worker.result
                reason = reject_reason(report, fingerprint, shards,
                                       worker.index)
                worker.kill()
                if reason is None:
                    del active[worker.index]
                    accept(worker.index, report)
                else:
                    stats.corrupt_results += 1
                    fail(worker)
            elif not worker.process.is_alive():
                # Exited without a result: the crash signature.
                stats.worker_crashes += 1
                worker.conn.close()
                fail(worker)
            elif now - worker.last_beat > options.heartbeat_timeout_s:
                stats.heartbeat_gaps += 1
                worker.kill()
                fail(worker)
            elif now - worker.started > options.deadline_s:
                stats.deadline_kills += 1
                worker.kill()
                fail(worker)

    merged = merge_reports([results[i] for i in range(shards)], shards)
    merged.supervision = stats.as_dict()
    return merged
