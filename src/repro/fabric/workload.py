"""Seeded workload generators: flow descriptions over fabric hosts.

A workload is a *description*, not traffic: :func:`generate_flows`
expands a picklable :class:`WorkloadSpec` into a list of :class:`Flow`
records — host pairs, frame sizes, packet counts, start ticks and
inter-arrival gaps — using only RNG streams derived from the spec's
seed (one independent stream per flow, via
:func:`repro.faults.derive_seed`).  That makes the expansion a pure
function of ``(hosts, spec)``: every shard worker regenerates the exact
same flow list and picks its slice by ``flow_id``, with no flow state
shipped between processes.

Three inter-arrival patterns cover the paper's evaluation shapes:

``uniform``
    Flows start evenly spread across the run window; sources and
    destinations drawn uniformly at random.  The steady-state baseline.

``bursty``
    Flows arrive in synchronized waves (every ``burst_gap`` ticks a
    burst of flows starts at once) — the on/off traffic that stresses
    output queues.

``incast``
    Many senders converge on one rotating sink host per wave — the
    classic partition/aggregate datacenter pattern and the worst case
    for the sink's edge link.

Request/response: flows with ``response_packets > 0`` send a reverse
flow (sink back to source) after the request finishes, modelling RPC
semantics rather than one-way streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults import derive_seed

PATTERNS = ("uniform", "bursty", "incast")

#: Frame sizes drawn for flows, IMIX-flavoured (small-heavy).
_SIZE_CHOICES = (64, 128, 256, 576, 1024, 1518)
_SIZE_WEIGHTS = (7, 4, 3, 3, 2, 1)


@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable, seeded workload description.

    ``flows`` request flows are generated over the run window of
    ``window_ticks`` virtual ticks.  ``packets_per_flow`` bounds the
    request length (drawn 1..bound per flow); ``response_ratio`` is the
    fraction of flows that get a reverse response flow.
    """

    pattern: str = "uniform"
    flows: int = 100
    seed: int = 0
    packets_per_flow: int = 4
    window_ticks: int = 256
    burst_gap: int = 32
    response_ratio: float = 0.5
    #: Fraction of flows carrying an in-band-telemetry trailer
    #: (:mod:`repro.int`); 0.0 keeps the workload byte-identical to
    #: pre-INT specs.
    int_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown workload pattern {self.pattern!r}; "
                f"available: {PATTERNS}"
            )
        if self.flows < 1:
            raise ValueError("workload needs at least one flow")
        if self.packets_per_flow < 1:
            raise ValueError("packets_per_flow must be >= 1")
        if self.window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        if self.burst_gap < 1:
            raise ValueError("burst_gap must be >= 1")
        if not 0.0 <= self.response_ratio <= 1.0:
            raise ValueError("response_ratio must be in [0, 1]")
        if not 0.0 <= self.int_ratio <= 1.0:
            raise ValueError("int_ratio must be in [0, 1]")

    def with_seed(self, seed: int) -> "WorkloadSpec":
        return WorkloadSpec(
            self.pattern, self.flows, seed, self.packets_per_flow,
            self.window_ticks, self.burst_gap, self.response_ratio,
            self.int_ratio,
        )

    @property
    def key(self) -> str:
        """Canonical identity string, part of every run fingerprint."""
        # The int marker appears only when set, so every pre-INT spec's
        # key (and with it every recorded fingerprint input) is stable.
        int_part = f",int={self.int_ratio}" if self.int_ratio else ""
        return (
            f"{self.pattern}(flows={self.flows},ppf={self.packets_per_flow},"
            f"window={self.window_ticks},burst={self.burst_gap},"
            f"resp={self.response_ratio}{int_part})"
        )


@dataclass(frozen=True)
class Flow:
    """One generated flow: who talks to whom, how much, and when."""

    flow_id: int
    src: str
    dst: str
    frame_size: int
    packets: int
    response_packets: int
    start_tick: int
    gap_ticks: int
    #: Whether this flow's frames carry an INT trailer (stamped per hop,
    #: collected at the receiving edge).
    int_enabled: bool = False

    @property
    def request_bytes(self) -> int:
        return self.frame_size * self.packets


def _start_tick(spec: WorkloadSpec, index: int, rng: random.Random) -> int:
    if spec.pattern == "uniform":
        return rng.randrange(spec.window_ticks)
    # bursty and incast: synchronized waves every burst_gap ticks.
    waves = max(1, spec.window_ticks // spec.burst_gap)
    return (index % waves) * spec.burst_gap


def generate_flows(hosts: list[str], spec: WorkloadSpec) -> list[Flow]:
    """Expand a spec into flows over ``hosts`` — pure in (hosts, spec).

    Each flow draws from its own RNG stream seeded by
    ``derive_seed(spec.seed, "flow", i)``, so the description of flow
    ``i`` never depends on how many flows came before it or on which
    shard regenerates it.
    """
    if len(hosts) < 2:
        raise ValueError("workload needs at least two hosts")
    flows: list[Flow] = []
    for i in range(spec.flows):
        rng = random.Random(derive_seed(spec.seed, "flow", i))
        if spec.pattern == "incast":
            # One rotating sink per wave; everyone else fans in.
            wave = i % max(1, spec.window_ticks // spec.burst_gap)
            dst = hosts[wave % len(hosts)]
            src = rng.choice([h for h in hosts if h != dst])
        else:
            src = rng.choice(hosts)
            dst = rng.choice([h for h in hosts if h != src])
        packets = rng.randint(1, spec.packets_per_flow)
        responds = rng.random() < spec.response_ratio
        frame_size = rng.choices(_SIZE_CHOICES, weights=_SIZE_WEIGHTS)[0]
        response_packets = rng.randint(1, packets) if responds else 0
        start_tick = _start_tick(spec, i, rng)
        gap_ticks = rng.randint(1, 4)
        # Drawn last so int_ratio == 0 consumes no RNG and every
        # pre-INT flow list is regenerated bit-for-bit.
        int_enabled = bool(spec.int_ratio) and rng.random() < spec.int_ratio
        flows.append(Flow(
            flow_id=i,
            src=src,
            dst=dst,
            frame_size=frame_size,
            packets=packets,
            response_packets=response_packets,
            start_tick=start_tick,
            gap_ticks=gap_ticks,
            int_enabled=int_enabled,
        ))
    return flows


#: Named workload presets (`nf-mon fabric --workload <name>`).
WORKLOADS: dict[str, WorkloadSpec] = {
    "uniform-small": WorkloadSpec("uniform", flows=64, packets_per_flow=2,
                                  window_ticks=128),
    "uniform-1k": WorkloadSpec("uniform", flows=1000, packets_per_flow=4,
                               window_ticks=1024),
    "bursty-256": WorkloadSpec("bursty", flows=256, packets_per_flow=4,
                               window_ticks=256, burst_gap=32),
    "incast-64": WorkloadSpec("incast", flows=64, packets_per_flow=3,
                              window_ticks=128, burst_gap=16,
                              response_ratio=0.25),
    "uniform-int": WorkloadSpec("uniform", flows=64, packets_per_flow=2,
                                window_ticks=128, int_ratio=1.0),
}


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a preset name, with the registry's friendly error."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown fabric workload {name!r}; "
            f"available: {tuple(sorted(WORKLOADS))}"
        ) from None
