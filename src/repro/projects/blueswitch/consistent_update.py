"""Naive vs. atomic configuration update — the BlueSwitch experiment (E6).

A cycle-stepped model of a store-and-forward pipeline under
reconfiguration:

* Packets enter one per ``arrival_gap`` cycles; a packet tagged at cycle
  *t* performs its table-*k* lookup at cycle ``t + k * stage_cycles``.
* A **naive** updater applies ``writes_per_cycle`` in-place writes per
  cycle to the live tables, starting at ``update_start``.  A packet in
  flight across the update window can match old state in one table and
  new state in the next.
* The **consistent** (BlueSwitch) updater stages the same writes in the
  shadow banks (invisible), then flips the version in a single cycle;
  packets keep the bank their ingress tag names.

Every packet's actual output is compared against its output under the
pure-old and pure-new configurations.  ``misforwarded`` counts packets
whose output matches *neither* — the quantity BlueSwitch drives to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.projects.blueswitch.flow_table import FlowEntry
from repro.projects.blueswitch.pipeline import BlueSwitchPipeline


@dataclass(frozen=True)
class UpdateWrite:
    """One table write of an update plan."""

    table_id: int
    slot: int
    entry: Optional[FlowEntry]  # None clears the slot


@dataclass
class UpdateReport:
    """Outcome of one update experiment."""

    mode: str
    packets: int = 0
    old_consistent: int = 0
    new_consistent: int = 0
    ambiguous: int = 0  # same output under both configs
    misforwarded: int = 0
    update_cycles: int = 0
    details: list[tuple[int, int, int, int]] = field(default_factory=list)
    # details rows: (packet idx, actual, old, new) output bit masks

    @property
    def misforward_rate(self) -> float:
        return self.misforwarded / self.packets if self.packets else 0.0


def _outputs_under(pipeline: BlueSwitchPipeline, traffic, version: int) -> list[int]:
    """Classify the whole stream against one frozen configuration."""
    outs = []
    for frame, in_port in traffic:
        result = pipeline.classify(frame, in_port, version=version)
        outs.append(0 if result.dropped else result.output_bits)
    return outs


def run_update_experiment(
    pipeline: BlueSwitchPipeline,
    plan: list[UpdateWrite],
    traffic: list[tuple[bytes, int]],
    mode: str = "naive",
    stage_cycles: int = 4,
    arrival_gap: int = 1,
    update_start: int = 0,
    writes_per_cycle: int = 1,
) -> UpdateReport:
    """Run one reconfiguration under load and audit every packet.

    The pipeline's *current active bank* is the old configuration; the
    plan applied on top of it is the new one.  The pipeline is left in
    the new configuration afterwards.
    """
    if mode not in ("naive", "consistent"):
        raise ValueError("mode must be 'naive' or 'consistent'")
    if not traffic:
        raise ValueError("need traffic to measure")

    old_version = pipeline.active_version
    new_version = pipeline.shadow_version

    # Build the full new configuration in the shadow bank (both modes
    # need it: the consistent updater to flip to, the audit to compare
    # against).
    pipeline.sync_shadow()
    for write in plan:
        pipeline.write_shadow(write.table_id, write.slot, write.entry)

    old_outputs = _outputs_under(pipeline, traffic, old_version)
    new_outputs = _outputs_under(pipeline, traffic, new_version)

    num_tables = len(pipeline.tables)
    report = UpdateReport(mode=mode, packets=len(traffic))

    # --- cycle-stepped run -------------------------------------------
    # Lookup schedule: packet i is tagged at cycle i*arrival_gap and
    # visits table k at tag_cycle + k*stage_cycles.  We replay lookups
    # in global time order, interleaving the updater's writes.
    if mode == "naive":
        # The naive switch has one live bank: apply writes to the OLD
        # (active) bank over time; packets always read the active bank.
        writes = list(plan)
        total_cycles = (
            len(traffic) * arrival_gap
            + num_tables * stage_cycles
            + update_start
            + (len(writes) + writes_per_cycle - 1) // writes_per_cycle
        )
        report.update_cycles = (len(writes) + writes_per_cycle - 1) // writes_per_cycle

        # Precompute, for each packet and table, the lookup cycle.
        actual_outputs: list[int] = []
        for i, (frame, in_port) in enumerate(traffic):
            tag_cycle = i * arrival_gap
            # Determine, table by table, the table state at lookup time:
            # writes with (write index // writes_per_cycle) + update_start
            # <= lookup_cycle have landed.  We emulate by temporarily
            # applying the prefix of writes, classifying table-by-table.
            output = _classify_timed_naive(
                pipeline,
                frame,
                in_port,
                old_version,
                tag_cycle,
                stage_cycles,
                writes,
                update_start,
                writes_per_cycle,
            )
            actual_outputs.append(output)
        # Leave the switch fully updated: flip to the new bank (it holds
        # the complete new configuration) for state cleanliness.
        pipeline.commit()
    else:
        # Consistent: shadow already holds the new config; the flip
        # happens at update_start.  A packet tagged before the flip uses
        # the old bank for its whole walk; tagged at/after uses the new.
        report.update_cycles = 1
        actual_outputs = []
        for i, (frame, in_port) in enumerate(traffic):
            tag_cycle = i * arrival_gap
            version = old_version if tag_cycle < update_start else new_version
            result = pipeline.classify(frame, in_port, version=version)
            actual_outputs.append(0 if result.dropped else result.output_bits)
        pipeline.commit()

    # --- audit ---------------------------------------------------------
    for i, actual in enumerate(actual_outputs):
        old, new = old_outputs[i], new_outputs[i]
        if old == new:
            if actual == old:
                report.ambiguous += 1
            else:
                report.misforwarded += 1
                report.details.append((i, actual, old, new))
        elif actual == old:
            report.old_consistent += 1
        elif actual == new:
            report.new_consistent += 1
        else:
            report.misforwarded += 1
            report.details.append((i, actual, old, new))
    return report


def _classify_timed_naive(
    pipeline: BlueSwitchPipeline,
    frame: bytes,
    in_port: int,
    bank: int,
    tag_cycle: int,
    stage_cycles: int,
    writes: list[UpdateWrite],
    update_start: int,
    writes_per_cycle: int,
) -> int:
    """Classify one packet while the active bank mutates under it.

    For each table the packet visits, exactly the writes that landed by
    that table's lookup cycle are visible.  Implemented by applying
    write prefixes to the bank around each per-table lookup, then
    restoring — semantically identical to a time-ordered interleaving
    and much simpler than a full event queue.
    """
    from repro.projects.blueswitch.flow_table import ActionDrop, ActionGoto, ActionOutput
    from repro.projects.blueswitch.flow_table import flow_key_of

    # Snapshot the bank so we can restore after temporary mutations.
    snapshots = [
        (table.banks[bank].snapshot(), list(table._actions[bank]))
        for table in pipeline.tables
    ]

    def writes_landed_by(cycle: int) -> int:
        if cycle < update_start:
            return 0
        return min(len(writes), (cycle - update_start + 1) * writes_per_cycle)

    output_bits = 0
    dropped = False
    table_id = 0
    applied = 0
    try:
        while table_id < len(pipeline.tables):
            lookup_cycle = tag_cycle + table_id * stage_cycles
            landed = writes_landed_by(lookup_cycle)
            # Apply any writes that have landed since the last table.
            while applied < landed:
                write = writes[applied]
                pipeline.tables[write.table_id].write(bank, write.slot, write.entry)
                applied += 1
            actions = pipeline.tables[table_id].lookup(
                bank, flow_key_of(frame, in_port)
            )
            if actions is None:
                dropped = True
                break
            next_table = None
            for action in actions:
                if isinstance(action, ActionOutput):
                    output_bits |= action.port_bits
                elif isinstance(action, ActionDrop):
                    dropped = True
                elif isinstance(action, ActionGoto):
                    next_table = action.table_id
            if next_table is None:
                break
            table_id = next_table
    finally:
        for table, (tcam_snapshot, action_snapshot) in zip(pipeline.tables, snapshots):
            table.banks[bank].restore(tcam_snapshot)
            table._actions[bank] = action_snapshot
    return 0 if dropped else output_bits
