"""BlueSwitch: provably consistent switch configuration (reference [2]).

Han et al.'s BlueSwitch (ANCS 2015) is a NetFPGA-hosted OpenFlow switch
whose headline property is *atomic* multi-table configuration update:
every packet is processed entirely by the old configuration or entirely
by the new one, never a mixture.  The mechanism is double-buffered flow
tables plus per-packet version tagging at ingress — reproduced here
bit-for-bit in behaviour:

* :mod:`flow_table` — match/action types and the double-banked TCAM table;
* :mod:`pipeline` — the multi-table match pipeline with version tagging;
* :mod:`consistent_update` — naive vs. atomic updaters and the
  cycle-stepped experiment (E6) that counts misforwarded packets.
"""

from repro.projects.blueswitch.flow_table import (
    ActionDrop,
    ActionGoto,
    ActionOutput,
    FlowEntry,
    FlowMatch,
    FlowTable,
    FLOW_KEY,
    flow_key_of,
)
from repro.projects.blueswitch.pipeline import BlueSwitchPipeline, PipelineResult
from repro.projects.blueswitch.consistent_update import (
    UpdateReport,
    UpdateWrite,
    run_update_experiment,
)

__all__ = [
    "ActionDrop",
    "ActionGoto",
    "ActionOutput",
    "FlowEntry",
    "FlowMatch",
    "FlowTable",
    "FLOW_KEY",
    "flow_key_of",
    "BlueSwitchPipeline",
    "PipelineResult",
    "UpdateReport",
    "UpdateWrite",
    "run_update_experiment",
]
