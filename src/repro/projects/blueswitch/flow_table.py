"""BlueSwitch flow tables: OpenFlow-style match/action over a TCAM.

A :class:`FlowMatch` compiles to a ternary (value, mask) pair over the
128-bit flow key; a :class:`FlowTable` holds *two* TCAM banks — the
double buffering that makes atomic update possible.  Bank selection is
the packet's version tag, applied by the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cores.header_parser import parse_headers
from repro.cores.tcam import Tcam, TcamEntry
from repro.utils.bitfield import BitField, mask

#: The match key: the OpenFlow 1.0 field set BlueSwitch matches on.
FLOW_KEY = BitField(
    224,
    [
        ("in_port", 8),
        ("eth_dst", 48),
        ("eth_src", 48),
        ("eth_type", 16),
        ("ip_src", 32),
        ("ip_dst", 32),
        ("ip_proto", 8),
        ("l4_src", 16),
        ("l4_dst", 16),
    ],
)


def flow_key_of(frame: bytes, in_port_bits: int) -> int:
    """Build the lookup key for a frame arriving on ``in_port_bits``."""
    parsed = parse_headers(frame[:64])
    return FLOW_KEY.pack(
        in_port=in_port_bits & 0xFF,
        eth_dst=parsed.dst_mac.value if parsed.dst_mac else 0,
        eth_src=parsed.src_mac.value if parsed.src_mac else 0,
        eth_type=parsed.ethertype or 0,
        ip_src=parsed.ip_src.value if parsed.ip_src else 0,
        ip_dst=parsed.ip_dst.value if parsed.ip_dst else 0,
        ip_proto=parsed.ip_proto or 0,
        l4_src=parsed.l4_src_port or 0,
        l4_dst=parsed.l4_dst_port or 0,
    )


@dataclass(frozen=True)
class ActionOutput:
    """Forward out the ports in ``port_bits`` (one-hot, SUME convention)."""

    port_bits: int


@dataclass(frozen=True)
class ActionGoto:
    """Continue matching at table ``table_id`` (must be downstream)."""

    table_id: int


@dataclass(frozen=True)
class ActionDrop:
    """Explicitly drop (distinct from a table miss)."""


Action = Union[ActionOutput, ActionGoto, ActionDrop]


@dataclass(frozen=True)
class FlowMatch:
    """Wildcard-capable match; ``None`` = don't care.

    IP addresses take an optional prefix length for LPM-style masks.
    """

    in_port: Optional[int] = None
    eth_dst: Optional[int] = None
    eth_src: Optional[int] = None
    eth_type: Optional[int] = None
    ip_src: Optional[int] = None
    ip_src_prefix: int = 32
    ip_dst: Optional[int] = None
    ip_dst_prefix: int = 32
    ip_proto: Optional[int] = None
    l4_src: Optional[int] = None
    l4_dst: Optional[int] = None

    def _ip_mask(self, prefix: int) -> int:
        if not 0 <= prefix <= 32:
            raise ValueError(f"bad prefix {prefix}")
        return (mask(prefix) << (32 - prefix)) & mask(32)

    def to_tcam(self, result: int = 0) -> TcamEntry:
        value = 0
        key_mask = 0
        fields: list[tuple[str, Optional[int], int]] = [
            ("in_port", self.in_port, mask(8)),
            ("eth_dst", self.eth_dst, mask(48)),
            ("eth_src", self.eth_src, mask(48)),
            ("eth_type", self.eth_type, mask(16)),
            ("ip_src", self.ip_src, self._ip_mask(self.ip_src_prefix)),
            ("ip_dst", self.ip_dst, self._ip_mask(self.ip_dst_prefix)),
            ("ip_proto", self.ip_proto, mask(8)),
            ("l4_src", self.l4_src, mask(16)),
            ("l4_dst", self.l4_dst, mask(16)),
        ]
        for name, want, field_mask in fields:
            if want is None:
                continue
            value = FLOW_KEY.insert(value, name, want & field_mask)
            shifted = FLOW_KEY.insert(0, name, field_mask)
            key_mask |= shifted
        return TcamEntry(value=value, mask=key_mask, result=result)


@dataclass(frozen=True)
class FlowEntry:
    """A complete flow: match + ordered action list."""

    match: FlowMatch
    actions: tuple[Action, ...]

    def __post_init__(self) -> None:
        if not self.actions:
            raise ValueError("a flow entry needs at least one action")


class FlowTable:
    """A double-banked match table.

    ``banks[0]`` and ``banks[1]`` are full TCAM copies; which one a
    packet consults is its version tag.  Actions are stored side-by-side
    (the TCAM result is an index into the bank's action store).
    """

    def __init__(self, table_id: int, slots: int = 64):
        self.table_id = table_id
        self.slots = slots
        self.banks = (Tcam(slots, FLOW_KEY.width), Tcam(slots, FLOW_KEY.width))
        self._actions: list[list[Optional[tuple[Action, ...]]]] = [
            [None] * slots,
            [None] * slots,
        ]
        # The installed match per slot: the TCAM encoding is lossy
        # (masked-out bits are gone), so keep the software view beside
        # it — this is what lets ``read`` round-trip a FlowEntry for
        # the resilience auditor's desired-vs-hardware diff.
        self._matches: list[list[Optional[FlowMatch]]] = [
            [None] * slots,
            [None] * slots,
        ]
        # Per-slot match counters, per bank (the OpenFlow flow counters).
        self.hit_counts: list[list[int]] = [[0] * slots, [0] * slots]
        self.matches = 0
        self.misses = 0
        #: Monotonic state-change counter over installed flows (both
        #: banks); every write bumps it, so any flow-cache layered on
        #: top of the classifier invalidates on table churn.
        self.generation = 0

    def write(self, bank: int, slot: int, entry: Optional[FlowEntry]) -> None:
        """Install or clear (None) one slot in one bank.

        Writing a slot resets its counter — a new flow starts at zero.
        """
        if bank not in (0, 1):
            raise ValueError("bank must be 0 or 1")
        if entry is None:
            self.banks[bank].write_slot(slot, None)
            self._actions[bank][slot] = None
            self._matches[bank][slot] = None
        else:
            self.banks[bank].write_slot(slot, entry.match.to_tcam(result=slot))
            self._actions[bank][slot] = entry.actions
            self._matches[bank][slot] = entry.match
        self.hit_counts[bank][slot] = 0
        self.generation += 1

    def read(self, bank: int, slot: int) -> Optional[FlowEntry]:
        tcam_entry = self.banks[bank].read_slot(slot)
        actions = self._actions[bank][slot]
        if tcam_entry is None or actions is None:
            return None
        match = self._matches[bank][slot]
        return FlowEntry(match=match if match is not None else FlowMatch(),
                         actions=actions)

    def lookup(self, bank: int, key: int) -> Optional[tuple[Action, ...]]:
        hit = self.banks[bank].lookup(key)
        if hit is None:
            self.misses += 1
            return None
        slot, _result = hit
        self.matches += 1
        self.hit_counts[bank][slot] += 1
        return self._actions[bank][slot]

    def flow_counts(self, bank: int) -> list[tuple[int, int]]:
        """``[(slot, matches)]`` for every occupied slot of ``bank``."""
        return [
            (slot, self.hit_counts[bank][slot])
            for slot in range(self.slots)
            if self.banks[bank].read_slot(slot) is not None
        ]

    def copy_bank(self, src: int, dst: int) -> None:
        """Clone one bank onto the other (shadow resynchronization).

        Counters follow the configuration so a commit does not zero the
        statistics of unchanged flows.
        """
        self.banks[dst].restore(self.banks[src].snapshot())
        self._actions[dst] = list(self._actions[src])
        self._matches[dst] = list(self._matches[src])
        self.hit_counts[dst] = list(self.hit_counts[src])
