"""The BlueSwitch multi-table match pipeline with version tagging.

Packets are tagged with the switch's *active version* the moment they
enter the pipeline; every table lookup on that packet's path consults
the bank named by the tag.  Because a commit only flips the active
version (a single-cycle register write), each packet sees exactly one
configuration — old or new, never a mix — across *all* tables.  That is
BlueSwitch's consistency mechanism, and the reason E6 measures zero
misforwardings for the atomic updater.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.projects.blueswitch.flow_table import (
    ActionDrop,
    ActionGoto,
    ActionOutput,
    FlowEntry,
    FlowTable,
    flow_key_of,
)


@dataclass
class PipelineResult:
    """The fate of one packet: output ports and the per-table trace."""

    output_bits: int = 0
    dropped: bool = False
    tables_visited: list[int] = field(default_factory=list)
    version: int = 0

    @property
    def forwarded(self) -> bool:
        return self.output_bits != 0 and not self.dropped


class BlueSwitchPipeline:
    """``num_tables`` chained double-banked flow tables."""

    def __init__(self, num_tables: int = 3, slots_per_table: int = 64):
        if num_tables <= 0:
            raise ValueError("need at least one table")
        self.tables = [FlowTable(i, slots_per_table) for i in range(num_tables)]
        self.active_version = 0
        self.commits = 0
        self.packets = 0
        self.table_miss_drops = 0

    # ------------------------------------------------------------------
    # Configuration plane
    # ------------------------------------------------------------------
    @property
    def shadow_version(self) -> int:
        return 1 - self.active_version

    def write_active(self, table_id: int, slot: int, entry: Optional[FlowEntry]) -> None:
        """In-place write, visible immediately — the *naive* switch's op."""
        self.tables[table_id].write(self.active_version, slot, entry)

    def write_shadow(self, table_id: int, slot: int, entry: Optional[FlowEntry]) -> None:
        """Write the inactive bank — invisible until :meth:`commit`."""
        self.tables[table_id].write(self.shadow_version, slot, entry)

    def sync_shadow(self) -> None:
        """Copy active → shadow so an update can be expressed as a delta."""
        for table in self.tables:
            table.copy_bank(self.active_version, self.shadow_version)

    def commit(self) -> None:
        """Atomically flip every table to the shadow configuration."""
        self.active_version = self.shadow_version
        self.commits += 1

    def state_generation(self) -> int:
        """Monotonic counter over classification-visible state.

        Covers every bank write plus the atomic version flips — a
        shadow write alone does not change what packets see, but it
        will have flipped into view by the time ``commits`` moves, so
        the sum is a safe (slightly conservative) invalidation key.
        """
        return self.commits + sum(t.generation for t in self.tables)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def ingress_version(self) -> int:
        """The version tag stamped on a packet entering the pipeline now."""
        return self.active_version

    def classify(
        self, frame: bytes, in_port_bits: int, version: Optional[int] = None
    ) -> PipelineResult:
        """Walk the tables for one packet.

        ``version`` is the packet's ingress tag; passing ``None`` tags it
        with the current active version (the common case — the explicit
        parameter exists for the cycle-stepped update experiment, where
        tagging and lookup happen at different simulated times).
        """
        tag = self.ingress_version() if version is None else version
        self.packets += 1
        result = PipelineResult(version=tag)
        table_id = 0
        while table_id < len(self.tables):
            result.tables_visited.append(table_id)
            actions = self.tables[table_id].lookup(tag, flow_key_of(frame, in_port_bits))
            if actions is None:
                # OpenFlow table-miss default: drop.
                self.table_miss_drops += 1
                result.dropped = True
                return result
            next_table: Optional[int] = None
            for action in actions:
                if isinstance(action, ActionOutput):
                    result.output_bits |= action.port_bits
                elif isinstance(action, ActionDrop):
                    result.dropped = True
                elif isinstance(action, ActionGoto):
                    if action.table_id <= table_id:
                        raise ValueError(
                            f"goto must move forward (table {table_id} → "
                            f"{action.table_id})"
                        )
                    next_table = action.table_id
            if next_table is None:
                return result
            table_id = next_table
        return result
