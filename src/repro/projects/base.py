"""The shared reference-pipeline skeleton.

All four reference projects are the same five-stage pipeline —

    rx ports → input arbiter → output port lookup → output queues → tx ports

— differing *only* in the OPL stage (and its tables).  This class builds
the common structure once; projects inject their lookup through a
factory.  That one-line swap is the modularity claim C3 made executable,
and what experiment E7 exercises for the scheduler stage.

Port convention: 8 logical ports — physical nf0..nf3 (one-hot bits
0,2,4,6) and DMA queues 0..3 (bits 1,3,5,7), per
:mod:`repro.core.metadata`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.axilite import AxiLiteInterconnect
from repro.core.axis import AxiStreamChannel, StreamPacket
from repro.core.metadata import (
    NUM_DMA_PORTS,
    NUM_PHYS_PORTS,
    SUME_TUSER,
    dma_port_bit,
    pack_tuser_len_src,
    phys_port_bit,
)
from repro.core.module import Module
from repro.cores.input_arbiter import InputArbiter
from repro.fastpath import MicroflowCache, session_has_datapath_sites
from repro.int.codec import is_int_frame
from repro.cores.output_port_lookup import OutputPortLookup
from repro.cores.output_queues import OutputQueues, QueueConfig
from repro.cores.stats import StatsCollector

#: Register window bases shared by all projects (64 KiB each).
OPL_REG_BASE = 0x0000_0000
STATS_REG_BASE = 0x0001_0000
#: Window reserved for the host driver's recovery-counter block.
RECOVERY_REG_BASE = 0x0002_0000
#: Window reserved for the telemetry registry's counter block.
TELEMETRY_REG_BASE = 0x0003_0000
PROJECT_REG_SIZE = 0x1_0000


@dataclass(frozen=True)
class PortRef:
    """A logical port: ('phys'|'dma', index)."""

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("phys", "dma"):
            raise ValueError(f"unknown port kind {self.kind!r}")
        limit = NUM_PHYS_PORTS if self.kind == "phys" else NUM_DMA_PORTS
        if not 0 <= self.index < limit:
            raise ValueError(f"{self.kind} port index {self.index} out of range")

    @property
    def bit(self) -> int:
        if self.kind == "phys":
            return phys_port_bit(self.index)
        return dma_port_bit(self.index)

    def __str__(self) -> str:
        return f"nf{self.index}" if self.kind == "phys" else f"dma{self.index}"


ALL_PORTS: tuple[PortRef, ...] = tuple(
    [PortRef("phys", i) for i in range(NUM_PHYS_PORTS)]
    + [PortRef("dma", i) for i in range(NUM_DMA_PORTS)]
)


class ReferencePipeline(Module):
    """rx → arbiter → OPL → output queues → tx, with stats and registers."""

    def __init__(
        self,
        name: str,
        opl_factory: Callable[
            [str, AxiStreamChannel, AxiStreamChannel], OutputPortLookup
        ],
        queue_config: QueueConfig = QueueConfig(),
        classify: Optional[Callable[[StreamPacket], int]] = None,
    ):
        super().__init__(name)
        self.ports = ALL_PORTS
        self.rx = {p: AxiStreamChannel(f"{name}.rx_{p}") for p in self.ports}
        self.tx = {p: AxiStreamChannel(f"{name}.tx_{p}") for p in self.ports}
        arb_to_opl = AxiStreamChannel(f"{name}.arb_to_opl")
        opl_to_oq = AxiStreamChannel(f"{name}.opl_to_oq")

        self.arbiter = self.submodule(
            InputArbiter(f"{name}.arbiter", [self.rx[p] for p in self.ports], arb_to_opl)
        )
        self.opl = self.submodule(opl_factory(f"{name}.opl", arb_to_opl, opl_to_oq))
        self.oq = self.submodule(
            OutputQueues(
                f"{name}.oq",
                opl_to_oq,
                [(p.bit, self.tx[p]) for p in self.ports],
                config=queue_config,
                classify=classify,
            )
        )
        self.stats = self.submodule(
            StatsCollector(
                f"{name}.stats",
                [(f"rx_{p}", self.rx[p]) for p in self.ports]
                + [(f"tx_{p}", self.tx[p]) for p in self.ports],
            )
        )

        # Flow-cache fast path for behavioural forwarding.  Always
        # byte-identical to the slow path (invalidation + counter-delta
        # replay guarantee it); flip ``fastpath.enabled`` off for A/B
        # comparisons.
        self.fastpath = MicroflowCache()
        #: The fault session armed on this device's data path, if any
        #: (set by :class:`repro.faults.injector.FaultInjector`); the
        #: fast path bypasses itself while one is attached.
        self.datapath_faults = None
        self.soft_resets = 0

        # Control plane: the project's register address map.
        self.interconnect = AxiLiteInterconnect(f"{name}.axil")
        opl_regs = getattr(self.opl, "registers", None)
        if opl_regs is not None:
            self.interconnect.attach(OPL_REG_BASE, PROJECT_REG_SIZE, opl_regs)
        self.interconnect.attach(STATS_REG_BASE, PROJECT_REG_SIZE, self.stats.registers)

    # ------------------------------------------------------------------
    # Recovery telemetry
    # ------------------------------------------------------------------
    def attach_recovery_registers(self, regfile) -> None:
        """Mount a driver's recovery-counter block into the address map.

        Management tools then read the self-healing ledger (MMIO retries,
        ring repairs, counted losses) over the same AXI4-Lite path as the
        datapath statistics.
        """
        self.interconnect.attach(RECOVERY_REG_BASE, PROJECT_REG_SIZE, regfile)

    def attach_telemetry_registers(self, registry) -> None:
        """Mount a telemetry registry's counter block into the address map.

        ``registry`` is a :class:`~repro.telemetry.registry.MetricsRegistry`;
        every series it holds at attach time becomes a live-backed
        read-only register (with the 64-bit ``_hi``/``_lo`` face), read
        over the same AXI4-Lite path as the datapath statistics.
        """
        self.interconnect.attach(
            TELEMETRY_REG_BASE, PROJECT_REG_SIZE,
            registry.register_file(f"{self.name}_telemetry"),
        )

    # ------------------------------------------------------------------
    # Soft reset
    # ------------------------------------------------------------------
    def soft_reset(self) -> None:
        """Model a soft device reset: volatile table state is wiped.

        Registers, the address map and queued datapath traffic survive
        (this is the FPGA-side logic reset the reference designs wire to
        a control register, not a reconfiguration); what is lost is the
        lookup state software loaded — which is precisely what the
        resilience auditor must restore.  Projects with tables override
        :meth:`_wipe_volatile`.
        """
        self.soft_resets += 1
        self._wipe_volatile()

    def _wipe_volatile(self) -> None:
        """Clear project-specific volatile lookup state (default: none)."""

    def state_generation(self) -> int:
        """Monotonic counter over everything a forwarding decision reads.

        The sum of the OPL's table generations and the soft-reset count;
        cached decisions are valid exactly while it is stable.  Wiping
        already-empty tables bumps only the reset term, and a reset that
        clears tables bumps both — double counting is harmless, the
        contract is monotone-and-moves-on-change.
        """
        return self.soft_resets + self.opl.state_generation()

    # ------------------------------------------------------------------
    # Link state
    # ------------------------------------------------------------------
    def set_port_state(self, index: int, up: bool) -> bool:
        """Report physical port ``index`` link state to the lookup.

        Returns True if the state changed.  The liveness flip bumps the
        OPL's state generation, so microflow-cache entries and network
        path-cache walks that crossed this port are invalidated.
        """
        return self.opl.set_port_state(index, up)

    def port_is_up(self, index: int) -> bool:
        """Whether physical port ``index`` currently has link."""
        return self.opl.port_is_up(index)

    # ------------------------------------------------------------------
    # Convenience lookups
    # ------------------------------------------------------------------
    def phys(self, index: int) -> PortRef:
        return PortRef("phys", index)

    def dma(self, index: int) -> PortRef:
        return PortRef("dma", index)

    # ------------------------------------------------------------------
    # Behavioural ("hw mode") forwarding — same decision logic, no kernel
    # ------------------------------------------------------------------
    def forward_behavioural(
        self, frame: bytes, src: PortRef
    ) -> list[tuple[PortRef, bytes]]:
        """One-shot forwarding using the OPL's decide() directly.

        This is the path the unified test environment's ``hw`` mode and
        the large benchmark sweeps use; experiment E11 checks it agrees
        packet-for-packet with the cycle kernel.  A microflow cache
        (:mod:`repro.fastpath`) short-circuits repeated (port, header)
        pairs between table mutations; the E18 suite pins that the
        cache changes no observable — outputs, counters, fingerprints.
        """
        cache = self.fastpath
        if not cache.enabled or not self.opl.CACHEABLE:
            outputs, decision = self._forward_slow(frame, src)
            return self._int_stamp_outputs(outputs, src, decision.note)
        if self.datapath_faults is not None and session_has_datapath_sites(
            self.datapath_faults
        ):
            cache.bypasses += 1
            outputs, decision = self._forward_slow(frame, src)
            return self._int_stamp_outputs(outputs, src, decision.note)
        generation = self.state_generation()
        cache.validate(generation)
        key = (src.bit, frame[:64], len(frame))
        entry = cache.entries.get(key)
        if entry is not None:
            cache.hits += 1
            return self._int_stamp_outputs(
                self._replay_cached(entry, frame), src, entry[2]
            )
        cache.misses += 1
        counters_before = dict(self.opl.counters)
        outputs, decision = self._forward_slow(frame, src)
        if self.state_generation() != generation:
            # decide() itself mutated table state (e.g. a learning
            # switch's first sighting of this source MAC): the frozen
            # decision could differ from a re-decide, so skip the fill.
            # The next identical packet re-learns as a no-op and fills.
            return self._int_stamp_outputs(outputs, src, decision.note)
        deltas: dict[str, int] = {}
        for name, count in self.opl.counters.items():
            delta = count - counters_before.get(name, 0)
            if delta:
                deltas[name] = delta
        # The note bump is replayed explicitly on hits; keep only the
        # bumps decide() made internally (e.g. the router's "to_cpu").
        deltas[decision.note] = deltas.get(decision.note, 0) - 1
        dst_bits = SUME_TUSER.extract(decision.tuser, "dst_port")
        cache.store(key, (
            tuple(p for p in self.ports if dst_bits & p.bit),
            tuple((off, bytes(rep)) for off, rep in decision.rewrites.items()),
            decision.note,
            decision.drop,
            tuple((n, d) for n, d in deltas.items() if d),
        ))
        return self._int_stamp_outputs(outputs, src, decision.note)

    def _int_stamp_outputs(
        self,
        outputs: list[tuple[PortRef, bytes]],
        src: PortRef,
        note: str,
    ) -> list[tuple[PortRef, bytes]]:
        """Stamp INT hop records onto physical-egress copies of a frame.

        Applied as the last step of *every* forwarding path — slow
        decisions, cache-bypass decisions and microflow-cache replays —
        so the fast path and the slow path emit byte-identical stamped
        frames.  DMA deliveries (host-bound copies) are left unstamped:
        the host sees the stack exactly as it stood at its edge switch.
        """
        if not outputs or not is_int_frame(outputs[0][1]):
            return outputs
        ingress = src.index if src.kind == "phys" else 0xF0 | src.index
        return [
            (port, self.opl.int_stamp(frame, ingress, port.index, note))
            if port.kind == "phys" else (port, frame)
            for port, frame in outputs
        ]

    def _forward_slow(self, frame: bytes, src: PortRef):
        """The uncached decision path; returns (outputs, decision)."""
        tuser = pack_tuser_len_src(len(frame), src.bit)
        decision = self.opl.decide(frame[:64], tuser)
        self.opl.bump(decision.note)
        self.opl.packets += 1
        if decision.drop:
            self.opl.drops += 1
            return [], decision
        data = bytearray(frame)
        for offset, replacement in decision.rewrites.items():
            data[offset : offset + len(replacement)] = replacement
        dst_bits = SUME_TUSER.extract(decision.tuser, "dst_port")
        out = []
        for port in self.ports:
            if dst_bits & port.bit:
                out.append((port, bytes(data)))
        return out, decision

    def _replay_cached(
        self, entry: tuple, frame: bytes
    ) -> list[tuple[PortRef, bytes]]:
        """Re-apply a frozen decision: counters, rewrites, fan-out."""
        ports, rewrites, note, drop, deltas = entry
        opl = self.opl
        counters = opl.counters
        for name, delta in deltas:
            counters[name] = counters.get(name, 0) + delta
        counters[note] = counters.get(note, 0) + 1
        opl.packets += 1
        if drop:
            opl.drops += 1
            return []
        if rewrites:
            data = bytearray(frame)
            for offset, replacement in rewrites:
                data[offset : offset + len(replacement)] = replacement
            frame = bytes(data)
        return [(port, frame) for port in ports]
