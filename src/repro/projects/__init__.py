"""NetFPGA reference and contributed projects.

Each project mirrors the structure §3 describes — "Each project consists
of hardware, software, testing and documentation components":

* hardware — a composition of :mod:`repro.cores` blocks on the kernel;
* software — register maps consumed by :mod:`repro.host` managers;
* testing  — harness scenarios under ``tests/`` via :mod:`repro.testenv`;
* documentation — the class docstrings and DESIGN.md entries.

Reference projects (every release ships these four):
``reference_nic``, ``reference_switch`` (+ ``_lite``),
``reference_router``, ``acceptance_test`` (the I/O exerciser).

Contributed projects: :mod:`repro.projects.osnt` (the Open Source Network
Tester [1]) and :mod:`repro.projects.blueswitch` (consistent OpenFlow
switch configuration [2]).
"""

from repro.projects.base import PortRef, ReferencePipeline
from repro.projects.reference_nic import ReferenceNic
from repro.projects.reference_switch import ReferenceSwitch, ReferenceSwitchLite
from repro.projects.reference_router import ReferenceRouter, default_router_tables
from repro.projects.acceptance_test import AcceptanceTestProject, IoSelfTest
from repro.projects.firewall import (
    AclAction,
    AclRule,
    FirewallProject,
    SynFloodDetector,
)

__all__ = [
    "PortRef",
    "ReferencePipeline",
    "ReferenceNic",
    "ReferenceSwitch",
    "ReferenceSwitchLite",
    "ReferenceRouter",
    "default_router_tables",
    "AcceptanceTestProject",
    "IoSelfTest",
    "AclAction",
    "AclRule",
    "FirewallProject",
    "SynFloodDetector",
]
