"""Reference NIC project.

The simplest reference design (§3): four 10G ports wired straight to the
four host DMA queues.  Hardware does no forwarding decisions beyond the
fixed port↔queue mapping, so the project is dominated by infrastructure —
which makes it the utilization baseline in experiment E4.

The software half (driver, rings) lives in :mod:`repro.host.driver`;
:meth:`ReferenceNic.attach_dma` bridges a board DMA engine into the
pipeline's DMA-side ports for full host-to-wire simulations.
"""

from __future__ import annotations

from repro.core.axis import AxiStreamChannel
from repro.cores.lookups import NicLookup
from repro.cores.output_port_lookup import OutputPortLookup
from repro.cores.output_queues import QueueConfig
from repro.projects.base import ReferencePipeline


class ReferenceNic(ReferencePipeline):
    """The reference NIC: phys *i* ↔ DMA queue *i*."""

    DESCRIPTION = "Reference NIC: 4x10G ports bridged to host DMA queues"

    def __init__(self, name: str = "reference_nic"):
        def make_opl(
            opl_name: str, s: AxiStreamChannel, m: AxiStreamChannel
        ) -> OutputPortLookup:
            return NicLookup(opl_name, s, m)

        super().__init__(name, make_opl, QueueConfig(capacity_bytes=64 * 1024))
