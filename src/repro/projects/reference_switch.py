"""Reference switch projects: the learning switch and switch_lite.

The learning switch is the reference Ethernet switch shipped with every
NetFPGA release: MAC learning into an exact-match CAM, flooding on miss.
``switch_lite`` is the table-free variant with a static port crossing —
the cheapest design that still switches, and the throughput upper bound
among the reference projects (experiment E3).
"""

from __future__ import annotations

from repro.core.axis import AxiStreamChannel
from repro.core.metadata import NUM_PHYS_PORTS, phys_port_bit
from repro.cores.lookups import LearningSwitchLookup, SwitchLiteLookup
from repro.cores.output_port_lookup import OutputPortLookup
from repro.cores.output_queues import QueueConfig
from repro.packet.addresses import MacAddr
from repro.projects.base import ReferencePipeline


class ReferenceSwitch(ReferencePipeline):
    """Learning Ethernet switch with a configurable MAC table size.

    ``learning=False`` freezes the FDB: source addresses are no longer
    inserted on ingress, so forwarding becomes a pure function of the
    entries software installed with :meth:`install_static_mac` — the
    statically programmed (SDN-style) switch the fabric builders deploy,
    where dynamic learning over multipath wiring would be
    order-dependent and loops would storm.
    """

    DESCRIPTION = "Reference learning switch: CAM MAC table, flood on miss"

    def __init__(
        self,
        name: str = "reference_switch",
        table_size: int = 512,
        learning: bool = True,
    ):
        self.table_size = table_size
        self.learning = learning

        def make_opl(
            opl_name: str, s: AxiStreamChannel, m: AxiStreamChannel
        ) -> OutputPortLookup:
            return LearningSwitchLookup(
                opl_name, s, m, table_size=table_size, learn=learning
            )

        super().__init__(name, make_opl, QueueConfig(capacity_bytes=128 * 1024))

    @property
    def mac_table(self):
        """The switch's CAM, for software-side inspection."""
        return self.opl.mac_table  # type: ignore[attr-defined]

    def install_static_mac(self, mac: MacAddr | str, port_index: int) -> bool:
        """Pin ``mac`` to physical port ``port_index`` in the FDB.

        The same CAM write the learning path performs, driven from
        software — False means the table rejected the entry (full with
        eviction disabled).
        """
        if not 0 <= port_index < NUM_PHYS_PORTS:
            raise ValueError(f"physical port index {port_index} out of range")
        value = mac.value if isinstance(mac, MacAddr) else MacAddr.parse(mac).value
        return self.mac_table.insert(value, phys_port_bit(port_index))

    @property
    def backup_table(self):
        """The backup next-hop column, for software-side inspection."""
        return self.opl.backup_table  # type: ignore[attr-defined]

    def install_backup_mac(self, mac: MacAddr | str, port_index: int) -> bool:
        """Pin the fast-reroute backup port for ``mac``.

        Consulted by the lookup only when the primary FDB port has lost
        link; installing a backup never changes live-path forwarding.
        """
        if not 0 <= port_index < NUM_PHYS_PORTS:
            raise ValueError(f"physical port index {port_index} out of range")
        value = mac.value if isinstance(mac, MacAddr) else MacAddr.parse(mac).value
        return self.backup_table.insert(value, phys_port_bit(port_index))

    def _wipe_volatile(self) -> None:
        """A soft reset forgets every learned (and static) MAC entry."""
        self.mac_table.clear()
        self.backup_table.clear()


class ReferenceSwitchLite(ReferencePipeline):
    """Static port-pair switch: no tables, minimum logic."""

    DESCRIPTION = "Reference switch_lite: static port pairing, no learning"

    def __init__(self, name: str = "reference_switch_lite"):
        def make_opl(
            opl_name: str, s: AxiStreamChannel, m: AxiStreamChannel
        ) -> OutputPortLookup:
            return SwitchLiteLookup(opl_name, s, m)

        super().__init__(name, make_opl, QueueConfig(capacity_bytes=64 * 1024))
