"""OSNT: the Open Source Network Tester (Antichi et al., reference [1]).

A NetFPGA-hosted traffic generator and monitor.  The generator replays
pcap traces (or synthetic specs) per port with precise rate control and
embeds hardware timestamps; the monitor filters, optionally truncates
("cuts") and captures traffic with arrival timestamps, from which
latency and rate statistics fall out.

The kernel-level building blocks (:class:`~repro.cores.timestamp.TimestampCore`,
:class:`~repro.cores.rate_limiter.RateLimiter`,
:class:`~repro.cores.packet_cutter.PacketCutter`) model the gateware;
the classes here are the behavioural instruments used by experiment E5
and by any test that needs calibrated traffic.
"""

from repro.projects.osnt.generator import GeneratorConfig, OsntGenerator, STAMP_OFFSET
from repro.projects.osnt.monitor import FilterRule, MonitorStats, OsntMonitor
from repro.projects.osnt.gateware import (
    OsntGeneratorPath,
    OsntMonitorPath,
    OsntProject,
)

__all__ = [
    "GeneratorConfig",
    "OsntGenerator",
    "STAMP_OFFSET",
    "FilterRule",
    "MonitorStats",
    "OsntMonitor",
    "OsntGeneratorPath",
    "OsntMonitorPath",
    "OsntProject",
]
