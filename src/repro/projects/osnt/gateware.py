"""OSNT gateware: the generator/monitor paths as kernel-core pipelines.

The behavioural :mod:`generator`/:mod:`monitor` instruments model OSNT's
*timing*; these classes model its *structure* — the OSNT datapaths
assembled from the same library blocks every other project uses:

* **generator path**: rate limiter → timestamp inserter, per port;
* **monitor path**: timestamp recorder → packet cutter → stats, per port.

Both are ordinary :class:`~repro.core.module.Module` trees, so they
simulate in the cycle kernel, report resources for utilization
comparisons (OSNT rows appear alongside the reference projects), and
demonstrate C3 once more: a tester built by *composition*.
"""

from __future__ import annotations

from typing import Optional

from repro.core.axis import AxiStreamChannel
from repro.core.module import Module, Resources
from repro.cores.packet_cutter import PacketCutter
from repro.cores.rate_limiter import RateLimiter
from repro.cores.stats import StatsCollector
from repro.cores.timestamp import TimestampCore
from repro.projects.osnt.generator import STAMP_OFFSET


class OsntGeneratorPath(Module):
    """One port of the OSNT generator datapath.

    ``s_axis`` takes replayed trace beats (from DMA in the real design,
    from a test source here); the stream is shaped to ``rate_bytes_per_cycle``
    and stamped on the way out.
    """

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        rate_bytes_per_cycle: float = 32.0,
        burst_bytes: int = 4096,
        stamp_offset: int = STAMP_OFFSET,
    ):
        super().__init__(name)
        shaped = AxiStreamChannel(f"{name}.shaped")
        self.limiter = self.submodule(
            RateLimiter(f"{name}.limiter", s_axis, shaped,
                        rate_bytes_per_cycle=rate_bytes_per_cycle,
                        burst_bytes=burst_bytes)
        )
        self.stamper = self.submodule(
            TimestampCore(f"{name}.stamper", shaped, m_axis,
                          mode="insert", offset=stamp_offset)
        )

    @property
    def packets_sent(self) -> int:
        return self.stamper.stamped

    def resources(self) -> Resources:
        # DMA ingress glue beyond the child blocks.
        return Resources(luts=350, ffs=280, brams=1.0)


class OsntMonitorPath(Module):
    """One port of the OSNT monitor datapath.

    Records arrival timestamps against the embedded stamp, cuts the
    packet to the capture snap length, and counts traffic — the order
    the OSNT monitor pipeline uses (stamp first: cutting must not
    disturb timing fidelity).
    """

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        snap_bytes: Optional[int] = 64,
        stamp_offset: int = STAMP_OFFSET,
    ):
        super().__init__(name)
        recorded = AxiStreamChannel(f"{name}.recorded")
        self.recorder = self.submodule(
            TimestampCore(f"{name}.recorder", s_axis, recorded,
                          mode="record", offset=stamp_offset)
        )
        self.cutter = self.submodule(
            PacketCutter(f"{name}.cutter", recorded, m_axis,
                         snap_bytes=snap_bytes if snap_bytes else 1 << 16)
        )
        self.stats = self.submodule(
            StatsCollector(f"{name}.stats", [("capture", m_axis)])
        )

    @property
    def records(self) -> list[tuple[int, int]]:
        """(embedded stamp, arrival cycle) pairs, in capture order."""
        return self.recorder.records

    def latencies_cycles(self) -> list[int]:
        return [arrival - stamp for stamp, arrival in self.records]

    def resources(self) -> Resources:
        return Resources(luts=300, ffs=260, brams=2.0)


class OsntProject(Module):
    """The full 4-port OSNT instrument: generator + monitor per port.

    Exposes ``gen_in[i]``/``gen_out[i]`` and ``mon_in[i]``/``mon_out[i]``
    channels.  In a deployment the generator outputs and monitor inputs
    attach to the MACs; in tests they attach to sources/sinks.
    """

    NUM_PORTS = 4

    def __init__(self, name: str = "osnt",
                 rate_bytes_per_cycle: float = 32.0,
                 snap_bytes: Optional[int] = 64):
        super().__init__(name)
        self.gen_in = [AxiStreamChannel(f"{name}.gen_in{i}") for i in range(self.NUM_PORTS)]
        self.gen_out = [AxiStreamChannel(f"{name}.gen_out{i}") for i in range(self.NUM_PORTS)]
        self.mon_in = [AxiStreamChannel(f"{name}.mon_in{i}") for i in range(self.NUM_PORTS)]
        self.mon_out = [AxiStreamChannel(f"{name}.mon_out{i}") for i in range(self.NUM_PORTS)]
        self.generators = [
            self.submodule(
                OsntGeneratorPath(f"{name}.gen{i}", self.gen_in[i], self.gen_out[i],
                                  rate_bytes_per_cycle=rate_bytes_per_cycle)
            )
            for i in range(self.NUM_PORTS)
        ]
        self.monitors = [
            self.submodule(
                OsntMonitorPath(f"{name}.mon{i}", self.mon_in[i], self.mon_out[i],
                                snap_bytes=snap_bytes)
            )
            for i in range(self.NUM_PORTS)
        ]

    def resources(self) -> Resources:
        # Shared timing reference (the OSNT timestamp unit with its
        # PPS/GPS sync input) plus per-port DMA plumbing.
        return Resources(luts=2_000, ffs=1_600, brams=8.0)
