"""OSNT traffic generator.

Replays a loaded trace out of a MAC at a configured rate, stamping each
departing frame with a sequence number and a departure timestamp.  Rate
control is ideal-arrival-time based (not inter-packet-gap accumulation),
so long runs do not drift — the property E5's precision measurement
checks.

The stamp rides inside the packet payload at :data:`STAMP_OFFSET`
(sequence u32 + timestamp-ns u64, little endian), the same idea as
OSNT's in-payload stamp format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.board.mac import EthernetMacModel, serialization_time_ns
from repro.core.eventsim import EventSimulator
from repro.packet.ethernet import FCS_SIZE
from repro.packet.pcap import PcapRecord

#: Byte offset of the embedded stamp: past eth(14)+ipv4(20)+udp(8).
STAMP_OFFSET = 42
STAMP_SIZE = 12  # u32 seq + u64 t_ns


@dataclass
class GeneratorConfig:
    """One port's replay configuration."""

    rate_bps: Optional[float] = None  # None = line rate
    loop: int = 1  # replay the trace this many times
    stamp: bool = True
    respect_trace_timing: bool = False  # replay with original pcap gaps


class OsntGenerator:
    """Drives one MAC with trace replay + rate control + stamping."""

    def __init__(self, sim: EventSimulator, mac: EthernetMacModel, name: str = "osnt_gen"):
        self.sim = sim
        self.mac = mac
        self.name = name
        self._trace: list[PcapRecord] = []
        self.sent = 0
        self.departures: list[tuple[int, float]] = []  # (seq, scheduled ns)
        self._running = False

    # ------------------------------------------------------------------
    def load_records(self, records: list[PcapRecord]) -> None:
        if not records:
            raise ValueError("empty trace")
        self._trace = list(records)

    def load_frames(self, frames: list[bytes], interval_ns: int = 0) -> None:
        self.load_records(
            [PcapRecord(timestamp_ns=i * interval_ns, data=f) for i, f in enumerate(frames)]
        )

    # ------------------------------------------------------------------
    def _stamped(self, data: bytes, seq: int, t_ns: float) -> bytes:
        if len(data) < STAMP_OFFSET + STAMP_SIZE:
            return data  # too short to stamp; sent as-is, like OSNT
        stamp = seq.to_bytes(4, "little") + int(t_ns).to_bytes(8, "little")
        return data[:STAMP_OFFSET] + stamp + data[STAMP_OFFSET + STAMP_SIZE :]

    def start(self, config: GeneratorConfig = GeneratorConfig()) -> int:
        """Schedule the whole replay; returns the number of frames queued.

        Departure times are computed up front (ideal schedule) and each
        frame is handed to the MAC at its slot; the MAC serializes from
        there, so achieved rate = min(configured, line rate).
        """
        if not self._trace:
            raise RuntimeError("no trace loaded")
        if self._running:
            raise RuntimeError("generator already running")
        self._running = True
        t = self.sim.now_ns
        seq = 0
        first_ts = self._trace[0].timestamp_ns
        for _ in range(config.loop):
            for record in self._trace:
                if config.respect_trace_timing:
                    slot = self.sim.now_ns + (record.timestamp_ns - first_ts)
                else:
                    slot = t
                    wire = len(record.data) + FCS_SIZE if len(record.data) >= 60 else 64
                    if config.rate_bps is not None:
                        # Ideal arrival spacing for the *configured* rate.
                        t += (wire + 20) * 8 / config.rate_bps * 1e9
                    else:
                        t += serialization_time_ns(wire, self.mac.rate_bps)
                data = record.data
                if config.stamp:
                    data = self._stamped(data, seq, slot)
                self._schedule_send(slot, data, seq)
                seq += 1
        return seq

    def _schedule_send(self, slot_ns: float, data: bytes, seq: int) -> None:
        def send() -> None:
            if len(data) > FCS_SIZE:
                self.mac.transmit(data)
                self.sent += 1
                self.departures.append((seq, slot_ns))

        self.sim.schedule_at(slot_ns, send)

    # ------------------------------------------------------------------
    def achieved_rate_bps(self) -> float:
        """Mean wire rate over the scheduled replay (incl. overheads)."""
        if len(self.departures) < 2:
            return 0.0
        span_ns = self.departures[-1][1] - self.departures[0][1]
        if span_ns <= 0:
            return 0.0
        # Wire bits per frame (mean over the trace), counted for every
        # inter-departure interval in the span.
        sizes = []
        for record in self._trace:
            wire = max(len(record.data), 60) + FCS_SIZE
            sizes.append((wire + 20) * 8)
        mean_frame_bits = sum(sizes) / len(sizes)
        return (len(self.departures) - 1) * mean_frame_bits / (span_ns * 1e-9)
