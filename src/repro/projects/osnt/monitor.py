"""OSNT traffic monitor.

Attaches to a MAC's receive side and, per arriving frame: applies the
configured 5-tuple filters, records an arrival timestamp, optionally
cuts the frame to a snap length, accumulates statistics, and stores a
:class:`~repro.packet.pcap.PcapRecord` for export.  If frames carry the
generator's embedded stamp, per-packet latency and loss (sequence gaps)
are computed — OSNT's measurement workflow end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.board.mac import EthernetMacModel
from repro.cores.header_parser import parse_headers
from repro.packet.pcap import PcapRecord
from repro.projects.osnt.generator import STAMP_OFFSET, STAMP_SIZE


@dataclass(frozen=True)
class FilterRule:
    """A 5-tuple filter; ``None`` fields are wildcards."""

    ip_src: Optional[int] = None
    ip_dst: Optional[int] = None
    ip_proto: Optional[int] = None
    l4_src: Optional[int] = None
    l4_dst: Optional[int] = None

    def matches(self, data: bytes) -> bool:
        parsed = parse_headers(data[:64])
        if not parsed.is_ipv4:
            # Non-IP traffic only matches the all-wildcard rule.
            return all(
                f is None
                for f in (self.ip_src, self.ip_dst, self.ip_proto, self.l4_src, self.l4_dst)
            )
        checks = (
            (self.ip_src, parsed.ip_src.value if parsed.ip_src else None),
            (self.ip_dst, parsed.ip_dst.value if parsed.ip_dst else None),
            (self.ip_proto, parsed.ip_proto),
            (self.l4_src, parsed.l4_src_port),
            (self.l4_dst, parsed.l4_dst_port),
        )
        return all(want is None or want == have for want, have in checks)


@dataclass
class MonitorStats:
    frames: int = 0
    bytes: int = 0
    filtered_out: int = 0
    truncated: int = 0
    stamped_frames: int = 0
    lost: int = 0  # sequence gaps seen


class OsntMonitor:
    """One capture port: filter → timestamp → cut → record."""

    def __init__(
        self,
        mac: EthernetMacModel,
        rules: Optional[list[FilterRule]] = None,
        snap_bytes: Optional[int] = None,
    ):
        self.mac = mac
        self.rules = rules  # None = capture everything
        self.snap_bytes = snap_bytes
        self.stats = MonitorStats()
        self.records: list[PcapRecord] = []
        self.latencies_ns: list[float] = []
        self._next_seq: Optional[int] = None
        mac.rx_callback = self._on_frame

    # ------------------------------------------------------------------
    def _passes(self, data: bytes) -> bool:
        if self.rules is None:
            return True
        return any(rule.matches(data) for rule in self.rules)

    def _extract_stamp(self, data: bytes, arrival_ns: float) -> None:
        if len(data) < STAMP_OFFSET + STAMP_SIZE:
            return
        seq = int.from_bytes(data[STAMP_OFFSET : STAMP_OFFSET + 4], "little")
        t_ns = int.from_bytes(
            data[STAMP_OFFSET + 4 : STAMP_OFFSET + STAMP_SIZE], "little"
        )
        if t_ns > arrival_ns:
            return  # implausible: not a stamp we wrote
        self.stats.stamped_frames += 1
        self.latencies_ns.append(arrival_ns - t_ns)
        if self._next_seq is not None and seq > self._next_seq:
            self.stats.lost += seq - self._next_seq
        self._next_seq = seq + 1

    def _on_frame(self, data: bytes, arrival_ns: float) -> None:
        if not self._passes(data):
            self.stats.filtered_out += 1
            return
        self.stats.frames += 1
        self.stats.bytes += len(data)
        self._extract_stamp(data, arrival_ns)
        stored = data
        if self.snap_bytes is not None and len(data) > self.snap_bytes:
            stored = data[: self.snap_bytes]
            self.stats.truncated += 1
        self.records.append(
            PcapRecord(timestamp_ns=int(arrival_ns), data=stored, orig_len=len(data))
        )

    # ------------------------------------------------------------------
    def mean_rate_bps(self) -> float:
        """Mean captured payload rate between first and last arrival."""
        if len(self.records) < 2:
            return 0.0
        span_ns = self.records[-1].timestamp_ns - self.records[0].timestamp_ns
        if span_ns <= 0:
            return 0.0
        payload_bits = sum(r.original_length * 8 for r in self.records[:-1])
        return payload_bits / (span_ns * 1e-9)

    def latency_summary(self) -> dict[str, float]:
        if not self.latencies_ns:
            return {"count": 0.0, "min": 0.0, "mean": 0.0, "max": 0.0}
        lat = self.latencies_ns
        return {
            "count": float(len(lat)),
            "min": min(lat),
            "mean": sum(lat) / len(lat),
            "max": max(lat),
        }
