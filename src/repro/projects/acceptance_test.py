"""The acceptance-test project: "a project that exercises all the I/O
interfaces" (§3).

Two parts:

* :class:`AcceptanceTestProject` — the gateware: the standard pipeline
  with a passthrough OPL, so test traffic steered by TUSER can be pushed
  through any port pairing.
* :class:`IoSelfTest` — the test program run against a
  :class:`~repro.board.sume.NetFpgaSume` board: MAC loopback on every
  port, QDR and DDR3 march tests, a PCIe DMA loopback, storage
  write/read-back, and a power-telemetry sanity check.  Each step
  returns pass/fail plus a measured figure, and the E1 benchmark prints
  the resulting board-inventory table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.board.mac import Wire
from repro.board.sume import NetFpgaSume
from repro.core.axis import AxiStreamChannel
from repro.cores.lookups import PassthroughLookup
from repro.cores.output_port_lookup import OutputPortLookup
from repro.cores.output_queues import QueueConfig
from repro.packet.generator import uniform_random_frames
from repro.projects.base import ReferencePipeline


class AcceptanceTestProject(ReferencePipeline):
    """Passthrough pipeline used to drive arbitrary port-to-port traffic."""

    DESCRIPTION = "Acceptance test: passthrough OPL, exercises all interfaces"

    def __init__(self, name: str = "acceptance_test"):
        def make_opl(
            opl_name: str, s: AxiStreamChannel, m: AxiStreamChannel
        ) -> OutputPortLookup:
            return PassthroughLookup(opl_name, s, m)

        super().__init__(name, make_opl, QueueConfig(capacity_bytes=64 * 1024))


@dataclass
class SelfTestResult:
    subsystem: str
    passed: bool
    detail: str


class IoSelfTest:
    """Runs the §2 subsystem checks against a board model."""

    def __init__(self, board: NetFpgaSume | None = None):
        self.board = board if board is not None else NetFpgaSume()
        self.results: list[SelfTestResult] = []

    def _record(self, subsystem: str, passed: bool, detail: str) -> None:
        self.results.append(SelfTestResult(subsystem, passed, detail))

    # ------------------------------------------------------------------
    def test_mac_loopback(self, frames: int = 16) -> None:
        """Every SFP+ port echoes traffic through an external loopback."""
        board = self.board
        for i, mac in enumerate(board.macs):
            peer_rx: list[bytes] = []
            peer = type(mac)(board.sim, f"tester{i}", rate_bps=mac.rate_bps)
            Wire(board.sim, mac, peer)
            peer.rx_callback = lambda data, _t, rx=peer_rx: rx.append(data)
            sent = [f.pack() for f in uniform_random_frames(frames, seed=100 + i, size=256)]
            for frame in sent:
                mac.transmit(frame)
            board.sim.run_until_idle()
            ok = [r[: len(s)] for r, s in zip(peer_rx, sent)] == sent
            self._record(
                f"sfp{i}_mac",
                ok and peer.rx_stats.fcs_errors == 0,
                f"{len(peer_rx)}/{frames} frames, {peer.rx_stats.fcs_errors} FCS errors",
            )
            mac.wire = None  # detach the tester

    def test_qdr(self, words: int = 256) -> None:
        """March test: write a pattern, read it back, per device."""
        for i, qdr in enumerate(self.board.qdr):
            word = qdr.config.word_bytes
            got: dict[int, bytes] = {}
            for w in range(words):
                qdr.write(w * word, bytes([(w + i) % 256]) * word)
            for w in range(words):
                qdr.read(w * word, lambda d, w=w: got.__setitem__(w, d))
            self.board.sim.run_until_idle()
            ok = all(got[w] == bytes([(w + i) % 256]) * word for w in range(words))
            self._record(f"qdr{i}", ok, f"{words} words verified")

    def test_ddr3(self, bursts: int = 256) -> None:
        for i, ddr in enumerate(self.board.ddr3):
            size = ddr.config.burst_bytes
            got: dict[int, bytes] = {}
            for b in range(bursts):
                ddr.write(b * size, bytes([(b * 7 + i) % 256]) * size)
            for b in range(bursts):
                ddr.read(b * size, lambda d, b=b: got.__setitem__(b, d))
            self.board.sim.run_until_idle()
            ok = all(got[b] == bytes([(b * 7 + i) % 256]) * size for b in range(bursts))
            self._record(
                f"ddr3_{i}",
                ok,
                f"{bursts} bursts verified, row hit rate {ddr.row_hit_rate:.0%}",
            )

    def test_storage(self) -> None:
        for dev in self.board.storage.devices():
            payload = bytes(range(256)) * 2  # one 512B block
            dev.write(0, payload)
            got: list[bytes] = []
            dev.read(0, len(payload), got.append)
            self.board.sim.run_until_idle()
            ok = bool(got) and got[0] == payload
            self._record(dev.spec.name, ok, "512B write/read-back")

    def test_pcie_dma(self, frames: int = 8) -> None:
        """Host→board→host DMA loopback through the rings."""
        board = self.board
        echoed: list[bytes] = []
        board.dma.tx_callback = lambda frame, port: (
            echoed.append(frame),
            board.dma.receive(frame, port),
        )
        # Post RX buffers, then TX descriptors, driver-style.
        from repro.board.pcie import DmaDescriptor

        rx_buf_base = 0x0100_0000
        for i in range(frames):
            board.dma.rx_ring.write_desc(
                i, DmaDescriptor(rx_buf_base + i * 2048, 2048)
            )
        board.dma.post_rx_buffers(frames)
        tx_buf_base = 0x0200_0000
        sent = [f.pack() for f in uniform_random_frames(frames, seed=7, size=512)]
        for i, frame in enumerate(sent):
            board.host_memory.write(tx_buf_base + i * 2048, frame)
            board.dma.tx_ring.write_desc(
                i, DmaDescriptor(tx_buf_base + i * 2048, len(frame))
            )
        board.dma.doorbell_tx(frames)
        board.sim.run_until_idle()
        back = [
            board.host_memory.read(rx_buf_base + i * 2048, len(sent[i]))
            for i in range(frames)
        ]
        ok = back == sent and board.dma.rx_frames == frames
        self._record("pcie_dma", ok, f"{board.dma.rx_frames}/{frames} frames looped")

    def test_power(self) -> None:
        power = self.board.power
        idle = power.total_power_w
        for rail in power.rails:
            rail.set_activity(1.0)
        loaded = power.total_power_w
        for rail in power.rails:
            rail.set_activity(0.0)
        ok = loaded > idle > 0
        self._record("power", ok, f"idle {idle:.1f} W, full load {loaded:.1f} W")

    def test_serial_inventory(self) -> None:
        bank = self.board.serial
        ok = len(bank) == 30 and self.board.supports_100g()
        self._record(
            "serial",
            ok,
            f"{len(bank)} lanes, {len(bank.available('qth'))} free for expansion",
        )

    # ------------------------------------------------------------------
    def run_all(self) -> list[SelfTestResult]:
        self.test_serial_inventory()
        self.test_mac_loopback()
        self.test_qdr()
        self.test_ddr3()
        self.test_storage()
        self.test_pcie_dma()
        self.test_power()
        return self.results

    @property
    def all_passed(self) -> bool:
        return bool(self.results) and all(r.passed for r in self.results)
