"""Reference IPv4 router project.

The flagship reference design: hardware LPM forwarding with a software
slow path.  The hardware half is :class:`~repro.cores.router_lookup.RouterLookup`
inside the standard pipeline; the software half (ARP resolution, ICMP
generation, routing-table management) is
:class:`repro.host.router_manager.RouterManager`, which talks to the
same :class:`~repro.cores.router_lookup.RouterTables` the hardware reads
— mirroring how the real project shares tables between the Verilog and
the management application through registers.
"""

from __future__ import annotations

from repro.core.axis import AxiStreamChannel
from repro.cores.lpm import LpmEntry
from repro.cores.output_port_lookup import OutputPortLookup
from repro.cores.output_queues import QueueConfig
from repro.cores.router_lookup import RouterLookup, RouterTables
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.projects.base import ReferencePipeline


def default_router_tables() -> RouterTables:
    """The demo topology used by docs, tests and the quickstart example.

    Port *i* is interface 10.0.*i*.1/24 with MAC 02:53:55:4d:45:0*i*
    (the ASCII of "SUME" in the OUI bytes, a NetFPGA in-joke).
    """
    macs = [MacAddr(0x02_53_55_4D_45_00 + i) for i in range(4)]
    ips = [Ipv4Addr.parse(f"10.0.{i}.1") for i in range(4)]
    tables = RouterTables(macs, ips)
    for i in range(4):
        tables.add_route(
            LpmEntry(
                prefix=Ipv4Addr.parse(f"10.0.{i}.0"),
                prefix_len=24,
                next_hop=Ipv4Addr(0),  # directly connected
                port_bits=1 << (2 * i),
            )
        )
    return tables


class ReferenceRouter(ReferencePipeline):
    """IPv4 router: LPM + ARP cache in hardware, exceptions to the CPU."""

    DESCRIPTION = "Reference IPv4 router: hardware LPM/ARP, software slow path"

    def __init__(self, name: str = "reference_router", tables: RouterTables | None = None):
        self.tables = tables if tables is not None else default_router_tables()

        def make_opl(
            opl_name: str, s: AxiStreamChannel, m: AxiStreamChannel
        ) -> OutputPortLookup:
            return RouterLookup(opl_name, s, m, self.tables)

        super().__init__(name, make_opl, QueueConfig(capacity_bytes=256 * 1024))

    def _wipe_volatile(self) -> None:
        """A soft reset wipes routes, the ARP cache and extra filters."""
        self.tables.clear_volatile()
