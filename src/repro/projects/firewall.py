"""Contributed project: a transparent firewall (network security).

§1 singles out the NetFPGA-1G-CML as "especially suited for
network-security applications"; this project is the canonical example —
a bump-in-the-wire firewall assembled entirely from library blocks:

* a TCAM-backed 5-tuple ACL (first match wins, default configurable);
* a SYN-flood detector: per-destination SYN counting over a sliding
  window, with an automatic per-destination block once the rate
  threshold trips (and release when the window cools);
* transparent bridging on the switch_lite port pairs (0↔1, 2↔3), so the
  device needs no addresses of its own.

The software side is :class:`repro.host.firewall_manager.FirewallManager`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.axilite import RegisterFile
from repro.core.axis import AxiStreamChannel
from repro.core.metadata import DMA_PORT_BITS, PHYS_PORT_BITS, SUME_TUSER
from repro.core.module import Resources
from repro.cores.header_parser import ParsedHeaders, parse_headers
from repro.cores.output_port_lookup import Decision, OutputPortLookup
from repro.cores.output_queues import QueueConfig
from repro.cores.tcam import Tcam, TcamEntry
from repro.projects.base import ReferencePipeline
from repro.utils.bitfield import BitField, mask

#: ACL match key: proto(8) | src_ip(32) | dst_ip(32) | sport(16) | dport(16).
ACL_KEY = BitField(
    104,
    [
        ("proto", 8),
        ("src_ip", 32),
        ("dst_ip", 32),
        ("sport", 16),
        ("dport", 16),
    ],
)

#: TCP flag bit used by the SYN-flood detector.
TCP_FLAG_SYN = 0x02
TCP_FLAG_ACK = 0x10


class AclAction(enum.Enum):
    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class AclRule:
    """One wildcardable 5-tuple rule; ``None`` fields match anything."""

    action: AclAction
    proto: Optional[int] = None
    src_ip: Optional[int] = None
    src_prefix: int = 32
    dst_ip: Optional[int] = None
    dst_prefix: int = 32
    sport: Optional[int] = None
    dport: Optional[int] = None

    def _ip_mask(self, prefix: int) -> int:
        if not 0 <= prefix <= 32:
            raise ValueError(f"bad prefix {prefix}")
        return (mask(prefix) << (32 - prefix)) & mask(32)

    def to_tcam(self, slot: int) -> TcamEntry:
        value = 0
        key_mask = 0
        fields = [
            ("proto", self.proto, mask(8)),
            ("src_ip", self.src_ip, self._ip_mask(self.src_prefix)),
            ("dst_ip", self.dst_ip, self._ip_mask(self.dst_prefix)),
            ("sport", self.sport, mask(16)),
            ("dport", self.dport, mask(16)),
        ]
        for name, want, field_mask in fields:
            if want is None:
                continue
            value = ACL_KEY.insert(value, name, want & field_mask)
            key_mask |= ACL_KEY.insert(0, name, field_mask)
        result = 1 if self.action is AclAction.PERMIT else 0
        return TcamEntry(value=value, mask=key_mask, result=result)


def acl_key_of(parsed: ParsedHeaders) -> int:
    return ACL_KEY.pack(
        proto=parsed.ip_proto or 0,
        src_ip=parsed.ip_src.value if parsed.ip_src else 0,
        dst_ip=parsed.ip_dst.value if parsed.ip_dst else 0,
        sport=parsed.l4_src_port or 0,
        dport=parsed.l4_dst_port or 0,
    )


class SynFloodDetector:
    """Sliding-window SYN rate tracking with automatic blocking.

    Counts bare SYNs (SYN without ACK) per destination IP in
    ``window_packets``-sized epochs of *observed traffic* (hardware
    counts in time windows; packet-count epochs keep the model
    deterministic).  A destination whose per-epoch SYN count reaches
    ``threshold`` is blocked for ``block_epochs`` epochs.
    """

    def __init__(self, threshold: int = 64, window_packets: int = 256,
                 block_epochs: int = 4):
        if threshold <= 0 or window_packets <= 0 or block_epochs <= 0:
            raise ValueError("detector parameters must be positive")
        self.threshold = threshold
        self.window_packets = window_packets
        self.block_epochs = block_epochs
        self._seen = 0
        self._epoch = 0
        self._syn_counts: dict[int, int] = {}
        self._blocked_until: dict[int, int] = {}
        self.blocks_triggered = 0
        self.syns_dropped = 0

    def observe(self, parsed: ParsedHeaders, tcp_flags: Optional[int]) -> bool:
        """Account one packet; returns True if it must be dropped."""
        self._seen += 1
        if self._seen % self.window_packets == 0:
            self._epoch += 1
            self._syn_counts.clear()
        if parsed.ip_dst is None:
            return False
        dst = parsed.ip_dst.value
        blocked_until = self._blocked_until.get(dst)
        if blocked_until is not None:
            if self._epoch < blocked_until:
                if tcp_flags is not None and tcp_flags & TCP_FLAG_SYN:
                    self.syns_dropped += 1
                    return True
                return False
            del self._blocked_until[dst]
        if tcp_flags is None or not (tcp_flags & TCP_FLAG_SYN) or tcp_flags & TCP_FLAG_ACK:
            return False
        count = self._syn_counts.get(dst, 0) + 1
        self._syn_counts[dst] = count
        if count >= self.threshold:
            self._blocked_until[dst] = self._epoch + self.block_epochs
            self.blocks_triggered += 1
            self.syns_dropped += 1
            return True
        return False

    def blocked_destinations(self) -> list[int]:
        return [
            dst for dst, until in self._blocked_until.items() if self._epoch < until
        ]


def _tcp_flags_of(header: bytes, parsed: ParsedHeaders) -> Optional[int]:
    """Extract the TCP flags byte if present in the header window."""
    if parsed.ip_proto != 6 or parsed.ip_header_offset is None:
        return None
    flags_at = parsed.ip_header_offset + (parsed.ip_header_len or 20) + 13
    if flags_at >= len(header):
        return None
    return header[flags_at]


class FirewallLookup(OutputPortLookup):
    """Bridge + ACL + SYN-flood OPL."""

    DECISION_LATENCY_CYCLES = 5  # parse + TCAM + detector update

    #: switch_lite-style transparent pairs, plus DMA→paired port.
    BRIDGE_MAP = {
        PHYS_PORT_BITS[0]: PHYS_PORT_BITS[1],
        PHYS_PORT_BITS[1]: PHYS_PORT_BITS[0],
        PHYS_PORT_BITS[2]: PHYS_PORT_BITS[3],
        PHYS_PORT_BITS[3]: PHYS_PORT_BITS[2],
        DMA_PORT_BITS[0]: PHYS_PORT_BITS[0],
        DMA_PORT_BITS[1]: PHYS_PORT_BITS[1],
        DMA_PORT_BITS[2]: PHYS_PORT_BITS[2],
        DMA_PORT_BITS[3]: PHYS_PORT_BITS[3],
    }

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        acl_slots: int = 64,
        default_permit: bool = True,
        detector: Optional[SynFloodDetector] = None,
    ):
        super().__init__(name, s_axis, m_axis)
        self.acl = Tcam(slots=acl_slots, key_bits=ACL_KEY.width)
        self.default_permit = default_permit
        self.detector = detector if detector is not None else SynFloodDetector()
        self.registers = RegisterFile(f"{name}_regs")
        for offset, counter in (
            (0x00, "permitted"),
            (0x04, "acl_denied"),
            (0x08, "syn_flood_dropped"),
            (0x0C, "non_ip_bridged"),
        ):
            self.registers.add_register(
                counter, offset, read_only=True,
                on_read=lambda c=counter: self.counters.get(c, 0),
            )
        self.registers.add_register(
            "blocked_dst_count", 0x10, read_only=True,
            on_read=lambda: len(self.detector.blocked_destinations()),
        )
        self.registers.add_register(
            "default_permit", 0x14, init=int(default_permit),
            on_write=self._set_default,
        )

    #: The SYN-flood detector advances on every observed packet, so two
    #: identical frames can legitimately get different decisions — this
    #: lookup is not a pure function of (header, tables) and must never
    #: be served from the microflow cache.
    CACHEABLE = False

    def _set_default(self, value: int) -> None:
        self.default_permit = bool(value & 1)

    def decide(self, header: bytes, tuser: int) -> Decision:
        src = SUME_TUSER.extract(tuser, "src_port")
        out_bits = self.BRIDGE_MAP.get(src)
        if out_bits is None:
            return Decision(tuser, drop=True, note="unknown_source")
        forward = Decision(SUME_TUSER.insert(tuser, "dst_port", out_bits))

        parsed = parse_headers(header)
        if not parsed.is_ipv4:
            # Non-IP (ARP &c.) bridges transparently, like real firewalls
            # in transparent mode.
            forward.note = "non_ip_bridged"
            return forward

        # SYN-flood detector runs before the ACL, like a DoS pre-filter.
        if self.detector.observe(parsed, _tcp_flags_of(header, parsed)):
            return Decision(tuser, drop=True, note="syn_flood_dropped")

        hit = self.acl.lookup(acl_key_of(parsed))
        if hit is not None:
            _slot, permit = hit
            if not permit:
                return Decision(tuser, drop=True, note="acl_denied")
            forward.note = "permitted"
            return forward
        if self.default_permit:
            forward.note = "permitted"
            return forward
        return Decision(tuser, drop=True, note="acl_denied")

    def resources(self) -> Resources:
        return (
            super().resources()
            + self.acl.resources()
            + Resources(luts=1_400, ffs=1_100, brams=4.0)  # detector tables
        )


class FirewallProject(ReferencePipeline):
    """The firewall as a standard five-stage project."""

    DESCRIPTION = "Transparent ACL firewall with SYN-flood protection"

    def __init__(
        self,
        name: str = "firewall",
        acl_slots: int = 64,
        default_permit: bool = True,
        detector: Optional[SynFloodDetector] = None,
    ):
        def make_opl(opl_name, s_axis, m_axis):
            return FirewallLookup(
                opl_name, s_axis, m_axis,
                acl_slots=acl_slots,
                default_permit=default_permit,
                detector=detector,
            )

        super().__init__(name, make_opl, QueueConfig(capacity_bytes=64 * 1024))

    @property
    def firewall(self) -> FirewallLookup:
        return self.opl  # type: ignore[return-value]
