"""The per-device microflow cache behind behavioural forwarding.

Between table mutations, a statically-programmed pipeline's forwarding
decision is a pure function of (ingress port, first 64 header bytes) —
the same observation behind microflow caches in Open vSwitch and the
fixed-function fast path of hybrid switch ASICs.  This module supplies
the cache the :meth:`ReferencePipeline.forward_behavioural` fast path
consults before running ``opl.decide``:

* **Exact-match**: the key is ``(src_port_bit, header[:64], len)``;
  there is no masking or flow classification, so a hit can simply
  replay the frozen decision.
* **Generation-based invalidation**: every table mutation — CAM
  learn/evict/static install, router route/ARP/filter writes, BlueSwitch
  flow installs, ``soft_reset``, resilience repairs, corrupting ctrl
  faults — bumps a monotonic generation counter.  The cache stores the
  generation its entries were filled under and flushes wholesale the
  moment the device's current generation differs, so a stale decision
  can never be served (it is *lazy* invalidation: mutators never touch
  the cache directly).
* **Counter-delta replay**: a decision is more than its outputs — the
  slow path bumps ``opl`` counters (including bumps *inside* decide(),
  like the router's ``to_cpu``).  The fill captures the exact counter
  delta and a hit replays it, so telemetry, register reads and the
  fabric fingerprint are byte-identical with the cache on or off.
* **Fault bypass**: when a fault session with armed data-path sites is
  attached to the device, the fast path steps aside entirely so
  per-packet fault draws and ``FaultReport`` fingerprints keep their
  exact sequence.

Decisions that mutate state while deciding (a learning switch's *first*
sighting of a source MAC) are detected by re-reading the generation
after the slow path and are simply not cached — the next identical
packet re-learns as a no-op, decides pure, and fills the cache then.
"""

from __future__ import annotations

from typing import Any

#: Bound on resident entries per device; far above any test workload,
#: small enough that a pathological header sweep cannot hoard memory.
DEFAULT_CAPACITY = 8192


def session_has_datapath_sites(session: Any) -> bool:
    """True if ``session``'s plan arms sites on the per-packet data path.

    Link, DMA and output-queue faults are drawn per packet event, so a
    cache hit that skipped the slow path would desynchronise the draw
    sequence.  Control-plane sites (``ctrl``, ``mmio``) land through
    table writes and register reads — the generation counters already
    cover those — so a ctrl-only session does not force a bypass.
    """
    plan = getattr(session, "plan", None)
    if plan is None:
        return False
    return (getattr(plan, "link", None) is not None
            or getattr(plan, "dma", None) is not None
            or getattr(plan, "oq", None) is not None)


class MicroflowCache:
    """Exact-match decision cache for one device.

    ``entries`` maps ``(src_bit, header64, frame_len)`` to a frozen
    ``(ports, rewrites, note, drop, counter_deltas)`` tuple; the
    consulting pipeline owns the fill/replay logic, the cache owns
    bookkeeping and the generation the entries were filled under.
    """

    __slots__ = ("enabled", "capacity", "entries", "generation",
                 "hits", "misses", "invalidations", "bypasses")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.enabled = True
        self.capacity = capacity
        self.entries: dict[tuple, tuple] = {}
        #: Generation the resident entries were filled under; -1 means
        #: "never validated" (device generations are always >= 0).
        self.generation = -1
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.bypasses = 0

    def validate(self, generation: int) -> None:
        """Flush if the device's state moved since the entries were cut."""
        if generation != self.generation:
            if self.entries:
                self.invalidations += 1
                self.entries.clear()
            self.generation = generation

    def store(self, key: tuple, entry: tuple) -> None:
        if len(self.entries) >= self.capacity:
            # FIFO eviction: drop the oldest fill.
            del self.entries[next(iter(self.entries))]
        self.entries[key] = entry

    def clear(self) -> None:
        self.entries.clear()
        self.generation = -1

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "bypasses": self.bypasses,
            "entries": len(self.entries),
        }
