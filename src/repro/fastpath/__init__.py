"""Flow-cache fast path: cached forwarding that is byte-identical.

Two caches make repeated traffic cheap without changing a single
observable:

* :class:`MicroflowCache` — per-device exact-match decision cache
  consulted by behavioural forwarding, invalidated by generation
  counters that every table mutation bumps (see
  :mod:`repro.fastpath.cache` for the invariants).
* the **path cache** inside :class:`repro.testenv.topology.Network` —
  memoizes whole hop walks per (entry attachment, frame) while the
  topology-wide generation vector is stable, and batches injections
  through :meth:`Network.inject_many`.

A third tier batches (S27):

* :class:`FlowBatchCompiler` / :class:`CompiledFlow`
  (:mod:`repro.fastpath.batch`) — a warm cached walk frozen into
  struct-of-arrays form and replayed *N packets at a time* through
  :meth:`Network.inject_batch`, counter deltas applied as ``n * delta``,
  guarded by the same generation counters (a mid-run mutation splits
  the batch exactly where it would invalidate the cache).

Telemetry lives in :func:`repro.telemetry.probes.probe_fastpath`;
``nf-mon fabric`` prints the same stats (and ``--no-fastpath`` turns
the whole subsystem off for A/B runs — the E18 bench asserts the
fingerprints agree and the cache side is >=3x faster; ``--no-batch``
is the batch tier's own A/B switch).
"""

from repro.fastpath.batch import (
    COMPILED_CAPACITY,
    BatchResult,
    CompiledFlow,
    FlowBatchCompiler,
)
from repro.fastpath.cache import (
    DEFAULT_CAPACITY,
    MicroflowCache,
    session_has_datapath_sites,
)

__all__ = [
    "BatchResult",
    "COMPILED_CAPACITY",
    "CompiledFlow",
    "DEFAULT_CAPACITY",
    "FlowBatchCompiler",
    "MicroflowCache",
    "session_has_datapath_sites",
]
