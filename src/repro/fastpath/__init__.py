"""Flow-cache fast path: cached forwarding that is byte-identical.

Two caches make repeated traffic cheap without changing a single
observable:

* :class:`MicroflowCache` — per-device exact-match decision cache
  consulted by behavioural forwarding, invalidated by generation
  counters that every table mutation bumps (see
  :mod:`repro.fastpath.cache` for the invariants).
* the **path cache** inside :class:`repro.testenv.topology.Network` —
  memoizes whole hop walks per (entry attachment, frame) while the
  topology-wide generation vector is stable, and batches injections
  through :meth:`Network.inject_many`.

Telemetry lives in :func:`repro.telemetry.probes.probe_fastpath`;
``nf-mon fabric`` prints the same stats (and ``--no-fastpath`` turns
the whole subsystem off for A/B runs — the E18 bench asserts the
fingerprints agree and the cache side is >=2x faster).
"""

from repro.fastpath.cache import (
    DEFAULT_CAPACITY,
    MicroflowCache,
    session_has_datapath_sites,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "MicroflowCache",
    "session_has_datapath_sites",
]
