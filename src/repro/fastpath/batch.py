"""Batched data plane: precompiled per-flow closures over cached walks.

The S22 caches made the *per-packet* path cheap: a warm microflow
replays a memoized hop walk instead of re-forwarding.  But the hot loop
still built one Python object per packet per hop — the E18 ceiling of
~30k pps.  This module adds the next tier (S27): when a caller knows it
is about to send *N identical packets of one flow*, the whole run
replays through one **compiled flow closure** in a single call.

A :class:`CompiledFlow` is a :class:`~repro.testenv.topology._CachedWalk`
frozen into struct-of-arrays form — parallel tuples of delivery
devices, ports, hop counts and frame lengths instead of per-delivery
objects — plus the walk's per-device counter deltas.  Replaying ``n``
packets applies every delta as ``n * delta`` (one multiply instead of
``n`` increments) and returns a :class:`BatchResult` that aggregates
exactly what ``n`` individual :meth:`~repro.testenv.topology.Network.inject`
calls would have reported.

**Invalidation is the cache's invalidation.**  A closure records the
topology-wide generation it was compiled under; any table/CAM/link
mutation bumps a generation counter, the next lookup sees the mismatch,
drops the closure and counts a *split* — the batch resumes from a fresh
compile after the mutation, exactly as the path cache re-walks.  The
compiler never caches what the path cache would not: uncacheable walks
(CPU handlers, armed datapath faults) simply miss here too, and the
caller falls back to per-packet injects.

**INT sequence numbers.**  Cached walks keep the flow's sequence-zero
template bytes; per-packet delivery frames differ only in the 4-byte
sequence field.  :meth:`BatchResult.frame_with_seq` patches the number
into one reusable per-delivery buffer — a 4-byte write per packet
instead of a frame copy — which is how a batched INT run still exposes
every per-packet frame without materializing N copies.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.int.codec import is_int_frame

#: Bound on compiled closures per network (FIFO eviction, like the
#: path cache it shadows).
COMPILED_CAPACITY = 4096


class BatchResult:
    """What ``n`` identical injections did, in aggregate.

    ``deliveries`` holds the *template* deliveries of one packet as
    ``(attachment, frame, hops)`` tuples — every packet of the batch
    delivered the same way, so per-packet accounting is ``count *``
    the template.  The drop counts and site tuples are per packet,
    mirroring :class:`~repro.testenv.topology.InjectionResult`.
    """

    __slots__ = (
        "count", "deliveries", "dropped_hop_limit", "dropped_link_down",
        "hop_limit_sites", "link_down_sites", "_buffers",
    )

    def __init__(
        self, count: int, deliveries: tuple,
        dropped_hop_limit: int, dropped_link_down: int,
        hop_limit_sites: tuple, link_down_sites: tuple,
    ):
        self.count = count
        self.deliveries = deliveries
        self.dropped_hop_limit = dropped_hop_limit
        self.dropped_link_down = dropped_link_down
        self.hop_limit_sites = hop_limit_sites
        self.link_down_sites = link_down_sites
        self._buffers: Optional[list[bytearray]] = None

    def frame_with_seq(self, index: int, seq: int) -> bytes:
        """Delivery ``index``'s frame with the INT sequence substituted.

        Patches the reusable per-delivery buffer in place (4 bytes) and
        returns a snapshot; non-INT frames come back untouched.  This is
        the per-packet view of a batched delivery without building
        ``count`` frame copies.
        """
        frame = self.deliveries[index][1]
        if not is_int_frame(frame):
            return frame
        if self._buffers is None:
            self._buffers = [bytearray(f) for _, f, _ in self.deliveries]
        buf = self._buffers[index]
        buf[-12:-8] = (seq & 0xFFFFFFFF).to_bytes(4, "big")
        return bytes(buf)


class CompiledFlow:
    """One flow's decision closure: a cached walk in SoA form."""

    __slots__ = (
        "key", "generation", "deliveries", "devices", "ports", "hops",
        "lens", "ops", "dropped", "forwarded", "link_down",
        "hop_limit_sites", "link_down_sites",
    )

    def __init__(self, key: tuple, walk: Any, generation: int):
        self.key = key
        self.generation = generation
        # Struct-of-arrays views of the walk's deliveries: one tuple per
        # field, not one object per delivery — what replay iterates.
        self.deliveries = walk.deliveries
        self.devices = tuple(at.device for at, _, _ in walk.deliveries)
        self.ports = tuple(at.port.index for at, _, _ in walk.deliveries)
        self.hops = tuple(h for _, _, h in walk.deliveries)
        self.lens = tuple(len(f) for _, f, _ in walk.deliveries)
        self.ops = walk.ops
        self.dropped = walk.dropped
        self.forwarded = walk.forwarded
        self.link_down = walk.link_down
        self.hop_limit_sites = walk.hop_limit_sites
        self.link_down_sites = walk.link_down_sites

    def replay(self, network: Any, count: int) -> BatchResult:
        """Apply ``count`` packets' worth of effects in one pass.

        Per-device counters move by ``count * delta`` — byte-identical
        to ``count`` sequential cached replays, just without the loop.
        """
        for opl, packets, drops, deltas in self.ops:
            opl.packets += packets * count
            opl.drops += drops * count
            counters = opl.counters
            for name, delta in deltas:
                counters[name] = counters.get(name, 0) + delta * count
        network.dropped_hop_limit += self.dropped * count
        network.dropped_link_down += self.link_down * count
        network.forwarded_hops += self.forwarded * count
        return BatchResult(
            count, self.deliveries, self.dropped, self.link_down,
            self.hop_limit_sites, self.link_down_sites,
        )


class FlowBatchCompiler:
    """Compiles cached walks into :class:`CompiledFlow` closures.

    Owned by a :class:`~repro.testenv.topology.Network`; consulted by
    :meth:`~repro.testenv.topology.Network.inject_batch`.  The stats it
    keeps are operational (never fingerprinted):

    * ``compiled`` — closures built from warm walks;
    * ``replays`` / ``replayed_packets`` — successful batched calls and
      the packets they carried;
    * ``splits`` — closures dropped because a generation bump landed
      mid-run (the batch resumed after a recompile);
    * ``cold_misses`` — batch calls that found no warm walk and told
      the caller to fall back to a per-packet inject;
    * ``prewarmed`` — walks cached by sandboxed dry walks
      (:meth:`~repro.testenv.topology.Network.warm_paths`) before any
      packet flew, so the first batch compiles without a cold miss.
    """

    def __init__(self, capacity: int = COMPILED_CAPACITY):
        self.capacity = capacity
        self._compiled: dict[tuple, CompiledFlow] = {}
        self.compiled = 0
        self.replays = 0
        self.replayed_packets = 0
        self.splits = 0
        self.cold_misses = 0
        self.prewarmed = 0

    def __len__(self) -> int:
        return len(self._compiled)

    def lookup(self, key: tuple, generation: int) -> Optional[CompiledFlow]:
        """The closure for ``key`` if still valid under ``generation``.

        A stale closure is evicted and counted as a split — the
        batch-tier mirror of a path-cache invalidation.
        """
        closure = self._compiled.get(key)
        if closure is None:
            return None
        if closure.generation != generation:
            del self._compiled[key]
            self.splits += 1
            return None
        return closure

    def compile(self, key: tuple, walk: Any, generation: int) -> CompiledFlow:
        closure = CompiledFlow(key, walk, generation)
        if len(self._compiled) >= self.capacity:
            del self._compiled[next(iter(self._compiled))]
        self._compiled[key] = closure
        self.compiled += 1
        return closure

    def replay(self, network: Any, closure: CompiledFlow,
               count: int) -> BatchResult:
        self.replays += 1
        self.replayed_packets += count
        return closure.replay(network, count)

    def clear(self) -> None:
        self._compiled.clear()

    def stats(self) -> dict[str, int]:
        return {
            "compiled": self.compiled,
            "replays": self.replays,
            "replayed_packets": self.replayed_packets,
            "splits": self.splits,
            "cold_misses": self.cold_misses,
            "prewarmed": self.prewarmed,
            "entries": len(self._compiled),
        }
