"""The platform metrics registry: typed instruments with a hardware face.

OSNT (the paper's ref [1]) treats measurement as a first-class platform
subsystem; this registry is the host-side half of that idea.  It holds
typed instruments — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
— addressed by name plus label values, cheap enough that a probe may
bump one per simulated cycle, and exports the whole set three ways:

* :meth:`MetricsRegistry.snapshot` — a flat ``{series: value}`` dict
  (the form the unified test environment compares across targets);
* :meth:`MetricsRegistry.to_prometheus` / :meth:`to_json` — text
  exposition for scraping and archival;
* :meth:`MetricsRegistry.register_file` — a
  :func:`~repro.cores.stats.counters_register_file`-backed AXI4-Lite
  block, so ``rwaxi``-style register readout keeps working for every
  telemetry series exactly as it does for the datapath statistics.

Instruments carry a ``cycle_dependent`` flag.  Series whose values
depend on kernel scheduling (stall cycles, queue watermarks, grant
interleaving) are marked cycle-dependent and excluded from the
``sim``/``hw`` parity check; packet and byte totals are not, and must
agree between the two targets.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

#: Default histogram bucket upper bounds (in whatever unit the series
#: declares — cycles for the kernel probes, ns for the event-driven side).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)


class TelemetryError(RuntimeError):
    """Registry misuse: duplicate series, bad labels, unknown metric."""


def _format_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{k}="{v}"' for k, v in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count.  ``inc`` is the hot-loop path."""

    __slots__ = ("value", "_fn")

    def __init__(self) -> None:
        self.value = 0
        self._fn: Optional[Callable[[], int]] = None

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def bind(self, fn: Callable[[], int]) -> None:
        """Back this series by a callback read at snapshot time.

        The zero-hot-cost way to mirror an existing live counter (a
        channel's ``packets_transferred``, an OPL's ``drops``) into the
        registry: nothing happens per cycle, the getter runs on export.
        """
        self._fn = fn

    def get(self) -> int:
        return self._fn() if self._fn is not None else self.value


class Gauge:
    """A value that goes up and down (occupancy, ring depth)."""

    __slots__ = ("value", "_fn")

    def __init__(self) -> None:
        self.value = 0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def bind(self, fn: Callable[[], float]) -> None:
        """Back this series by a callback read at snapshot time."""
        self._fn = fn

    def get(self) -> float:
        return self._fn() if self._fn is not None else self.value


class Histogram:
    """Bucketed distribution with sum and count (latency, occupancy)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")


@dataclass(frozen=True)
class _FamilyMeta:
    name: str
    help: str
    kind: str
    labelnames: tuple[str, ...]
    cycle_dependent: bool


class _Family:
    """One named metric family: children keyed by label values."""

    def __init__(self, meta: _FamilyMeta, make_child: Callable[[], object]):
        self.meta = meta
        self._make_child = make_child
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, *values: object, **kv: object):
        """The child instrument for one label-value combination (cached)."""
        meta = self.meta
        if kv:
            if values:
                raise TelemetryError("pass label values positionally or by name")
            try:
                values = tuple(kv[name] for name in meta.labelnames)
            except KeyError as exc:
                raise TelemetryError(
                    f"metric {meta.name!r} has labels {meta.labelnames}, not {exc}"
                ) from None
        key = tuple(str(v) for v in values)
        if len(key) != len(meta.labelnames):
            raise TelemetryError(
                f"metric {meta.name!r} expects {len(meta.labelnames)} "
                f"label values, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # Unlabeled families act as their own single child.
    def _solo(self):
        return self.labels()

    def inc(self, amount: int = 1) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def dec(self, amount: float = 1) -> None:
        self._solo().dec(amount)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def bind(self, fn: Callable[[], float]) -> None:
        self._solo().bind(fn)

    def children(self) -> Iterator[tuple[tuple[str, ...], object]]:
        yield from sorted(self._children.items())


class MetricsRegistry:
    """A session-scoped bag of metric families."""

    def __init__(self, namespace: str = "nf"):
        self.namespace = namespace
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: tuple[str, ...],
        cycle_dependent: bool,
        make_child: Callable[[], object],
    ) -> _Family:
        existing = self._families.get(name)
        if existing is not None:
            if existing.meta.kind != kind or existing.meta.labelnames != tuple(labelnames):
                raise TelemetryError(
                    f"metric {name!r} re-registered as {kind} with labels "
                    f"{tuple(labelnames)}; was {existing.meta.kind} "
                    f"{existing.meta.labelnames}"
                )
            return existing
        meta = _FamilyMeta(name, help, kind, tuple(labelnames), cycle_dependent)
        family = _Family(meta, make_child)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        cycle_dependent: bool = False,
    ) -> _Family:
        return self._family(name, help, "counter", labelnames, cycle_dependent, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        cycle_dependent: bool = True,
    ) -> _Family:
        # Gauges default cycle-dependent: instantaneous state rarely
        # survives the sim/hw comparison.
        return self._family(name, help, "gauge", labelnames, cycle_dependent, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        cycle_dependent: bool = True,
    ) -> _Family:
        return self._family(
            name, help, "histogram", labelnames, cycle_dependent,
            lambda: Histogram(buckets),
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def families(self) -> Iterator[_Family]:
        for name in sorted(self._families):
            yield self._families[name]

    def samples(
        self, cycle_independent_only: bool = False
    ) -> Iterator[tuple[str, str, float]]:
        """Flat series: ``(name, label_suffix, value)``.

        Histograms expand Prometheus-style into ``_bucket`` (cumulative,
        by ``le``), ``_sum`` and ``_count`` series.
        """
        for family in self.families():
            meta = family.meta
            if cycle_independent_only and meta.cycle_dependent:
                continue
            for labelvalues, child in family.children():
                suffix = _format_labels(meta.labelnames, labelvalues)
                if meta.kind == "histogram":
                    assert isinstance(child, Histogram)
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.counts):
                        cumulative += n
                        le = _format_labels(
                            meta.labelnames + ("le",), labelvalues + (str(bound),)
                        )
                        yield f"{meta.name}_bucket", le, cumulative
                    le = _format_labels(
                        meta.labelnames + ("le",), labelvalues + ("+Inf",)
                    )
                    yield f"{meta.name}_bucket", le, child.count
                    yield f"{meta.name}_sum", suffix, child.sum
                    yield f"{meta.name}_count", suffix, child.count
                else:
                    yield meta.name, suffix, child.get()  # type: ignore[union-attr]

    def snapshot(self, cycle_independent_only: bool = False) -> dict[str, float]:
        """``{'name{label="v"}': value}`` for every series."""
        return {
            name + suffix: value
            for name, suffix, value in self.samples(cycle_independent_only)
        }

    def to_json(self, indent: Optional[int] = None, **extra: object) -> str:
        payload: dict[str, object] = {
            "namespace": self.namespace,
            **extra,
            "metrics": self.snapshot(),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, one block per family."""
        lines: list[str] = []
        for family in self.families():
            meta = family.meta
            full = f"{self.namespace}_{meta.name}"
            if meta.help:
                lines.append(f"# HELP {full} {meta.help}")
            lines.append(f"# TYPE {full} {meta.kind}")
            for name, suffix, value in _family_samples(family):
                rendered = int(value) if float(value).is_integer() else value
                lines.append(f"{self.namespace}_{name}{suffix} {rendered}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Hardware-style readout
    # ------------------------------------------------------------------
    def register_file(self, name: str = "telemetry"):
        """The registry as a read-only AXI4-Lite counter block.

        Counters and gauges become live-backed registers (histograms
        contribute their ``_sum``/``_count``); the block carries the
        paired ``_hi``/``_lo`` 64-bit face of
        :func:`~repro.cores.stats.counters_register_file`, so wide
        counters survive register-width truncation.
        """
        from repro.cores.stats import counters_register_file

        getters: dict[str, Callable[[], int]] = {}
        for family in self.families():
            meta = family.meta
            for labelvalues, child in family.children():
                reg = _register_name(meta.name, meta.labelnames, labelvalues)
                if meta.kind == "histogram":
                    assert isinstance(child, Histogram)
                    getters[f"{reg}_sum"] = lambda c=child: int(c.sum)
                    getters[f"{reg}_count"] = lambda c=child: c.count
                else:
                    getters[reg] = lambda c=child: int(c.get())  # type: ignore[union-attr]
        return counters_register_file(name, getters)


def _family_samples(family: _Family) -> Iterator[tuple[str, str, float]]:
    # Reuse the registry sample expansion for a single family.
    registry = MetricsRegistry()
    registry._families[family.meta.name] = family
    yield from registry.samples()


def _register_name(
    name: str, labelnames: tuple[str, ...], labelvalues: tuple[str, ...]
) -> str:
    parts = [name]
    for k, v in zip(labelnames, labelvalues):
        parts.append(f"{k}_{v}")
    safe = "_".join(parts)
    return "".join(c if c.isalnum() or c == "_" else "_" for c in safe)
