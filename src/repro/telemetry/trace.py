"""Cycle-domain tracing: a bounded flight recorder of typed events.

OSNT's value is *precise timestamps*; the simulated platform's analogue
is a recorder whose timestamps live in the executing target's own clock
domain — simulator cycles under the ``sim`` target, wall-clock
nanoseconds under the event-driven/``hw`` side — so an event's position
on the timeline means what the domain means.

The recorder is a ring: the newest :data:`capacity` events are kept and
older ones are discarded (counted in :attr:`TraceRecorder.dropped`),
which is what lets it sit armed in the kernel hot loop without growing
without bound.  :meth:`TraceRecorder.to_chrome` exports the Chrome
``trace_event`` JSON format (load it at ``chrome://tracing`` or in
Perfetto) — instant events for packet/grant/fault activity and counter
events for occupancy series.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Event kinds the platform probes emit (callers may add their own).
EVENT_KINDS = (
    "packet_in",
    "packet_out",
    "arbiter_grant",
    "queue_enq",
    "queue_deq",
    "queue_drop",
    "dma_doorbell",
    "dma_completion",
    "irq",
    "fault_injected",
    "fault_recovered",
)

#: Ticks per exported microsecond for each clock domain.  The ``cycles``
#: domain assumes the 5 ns reference clock (200 MHz); construct the
#: recorder with an explicit ``us_per_tick`` for other clocks.
_DOMAIN_US_PER_TICK = {"cycles": 0.005, "ns": 0.001}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, stamped in the recorder's clock domain."""

    kind: str  # category: one of EVENT_KINDS (or caller-defined)
    name: str  # human label, e.g. "nf0" or "oq_port1"
    ts: float  # domain ticks: sim cycles or wall ns
    args: dict = field(default_factory=dict)


class TraceRecorder:
    """Bounded typed-event recorder with Chrome trace_event export."""

    def __init__(
        self,
        domain: str = "cycles",
        capacity: int = 65536,
        clock: Optional[Callable[[], float]] = None,
        us_per_tick: Optional[float] = None,
        process_name: str = "netfpga",
    ):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        if us_per_tick is None:
            try:
                us_per_tick = _DOMAIN_US_PER_TICK[domain]
            except KeyError:
                raise ValueError(
                    f"unknown clock domain {domain!r}; pass us_per_tick"
                ) from None
        self.domain = domain
        self.capacity = capacity
        self.us_per_tick = us_per_tick
        self.process_name = process_name
        self.clock = clock if clock is not None else _default_clock(domain)
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0  # everything ever emitted, kept or not

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(
        self, kind: str, name: str, ts: Optional[float] = None, **args: object
    ) -> None:
        """Record one instant event; ``ts`` defaults to the domain clock."""
        if ts is None:
            ts = self.clock()
        self._events.append(TraceEvent(kind, name, ts, args))
        self.recorded += 1

    def sample(self, name: str, value: float, ts: Optional[float] = None) -> None:
        """Record one counter sample (rendered as a Chrome counter track)."""
        if ts is None:
            ts = self.clock()
        self._events.append(TraceEvent("counter", name, ts, {"value": value}))
        self.recorded += 1

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (recorded but no longer held)."""
        return self.recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object (dict form).

        Every event carries the required ``ph``/``ts``/``pid``/``tid``
        fields; instant events use phase ``"i"`` with thread scope,
        counter samples use phase ``"C"``.  Timestamps are microseconds,
        converted from the recorder's domain.
        """
        scale = self.us_per_tick
        trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"{self.process_name} ({self.domain})"},
            }
        ]
        for event in self._events:
            ts_us = event.ts * scale
            if event.kind == "counter":
                trace_events.append(
                    {
                        "name": event.name,
                        "ph": "C",
                        "ts": ts_us,
                        "pid": 0,
                        "tid": 0,
                        "args": dict(event.args),
                    }
                )
            else:
                trace_events.append(
                    {
                        "name": f"{event.kind}:{event.name}",
                        "cat": event.kind,
                        "ph": "i",
                        "s": "t",
                        "ts": ts_us,
                        "pid": 0,
                        "tid": 0,
                        "args": dict(event.args),
                    }
                )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "domain": self.domain,
                "recorded": self.recorded,
                "dropped": self.dropped,
            },
        }

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)


def _default_clock(domain: str) -> Callable[[], float]:
    if domain == "ns":
        return lambda: float(time.perf_counter_ns())
    # Cycle-domain recorders are normally fed explicit timestamps by the
    # kernel probes; a recorder used standalone just counts emissions.
    counter = iter(range(1 << 62))
    return lambda: float(next(counter))
