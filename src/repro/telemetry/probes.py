"""Latency/occupancy probes: wiring a live design into a telemetry session.

Design rule: probes are *passive* and *interface-preserving* (claim C3).
Nothing here changes a module's ports or behaviour; the kernel-side
probes watch the lifetime counters the channels and cores already
maintain (``beats_transferred``, ``packets_in``, ``enqueued`` …) and the
event-driven side uses the same optional hook-attribute pattern the
fault layer established (``DmaEngine.telemetry_hook``,
``NetFpgaDriver.event_hook``, ``FaultSession.on_fault``).

Cost discipline: the registry mirrors live counters through snapshot-time
callbacks (:meth:`~repro.telemetry.registry.Counter.bind`), so arming
telemetry adds **zero** per-cycle cost for plain counting.  The only
hot-loop work is the per-cycle delta scan in
:meth:`PipelineProbes.on_cycle` — a flat loop of integer compares that
fires trace events and latency observations only on change — measured at
≤10% kernel slowdown by ``benchmarks/test_bench_telemetry.py``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.session import TelemetrySession

#: Cycles between occupancy gauge samples on the Chrome counter track.
OCCUPANCY_SAMPLE_CYCLES = 64

#: OPL-stage latency histogram buckets (cycles).
LATENCY_BUCKETS = (2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512)


class ProbedChannel:
    """A passive per-cycle watcher over one AXI4-Stream channel.

    Wraps (without replacing) a channel: packet-boundary transfers become
    trace events and the channel's lifetime counters become registry
    series.  ``observe(cycle)`` is the hot path; everything else is
    arm-time setup.
    """

    __slots__ = ("channel", "name", "event_kind", "_trace", "_last_packets")

    def __init__(self, channel: Any, name: str, event_kind: str, session):
        self.channel = channel
        self.name = name
        self.event_kind = event_kind
        self._trace = session.trace
        self._last_packets = channel.packets_transferred
        counters = session.registry.counter(
            "chan_packets_total", "packets across a probed channel",
            labelnames=("chan",), cycle_dependent=True,
        )
        counters.labels(name).bind(lambda c=channel: c.packets_transferred)
        session.registry.counter(
            "chan_beats_total", "beats across a probed channel",
            labelnames=("chan",), cycle_dependent=True,
        ).labels(name).bind(lambda c=channel: c.beats_transferred)
        session.registry.counter(
            "chan_stall_cycles_total", "valid-but-not-ready cycles",
            labelnames=("chan",), cycle_dependent=True,
        ).labels(name).bind(lambda c=channel: c.stall_cycles)

    def observe(self, cycle: int) -> bool:
        """True when a packet completed on this channel this cycle."""
        packets = self.channel.packets_transferred
        if packets == self._last_packets:
            return False
        self._last_packets = packets
        self._trace.emit(self.event_kind, self.name, ts=cycle)
        return True


class PipelineProbes:
    """All kernel-side probes for one :class:`ReferencePipeline` run.

    Arms: per-port packet-in/out watchers, arbiter grant attribution, an
    OPL-stage latency probe (arbiter egress → output-queue ingress),
    output-queue enqueue/drop/wait accounting and periodic occupancy
    sampling.  Attach with ``sim.add_cycle_hook(probes.on_cycle)`` — one
    callback per cycle, not one module per probe, so the combinational
    settle loop never sees the probes at all.
    """

    def __init__(self, project: Any, session: "TelemetrySession",
                 occupancy_sample_cycles: int = OCCUPANCY_SAMPLE_CYCLES):
        self.session = session
        self.project = project
        self.trace = session.trace
        self.occupancy_sample_cycles = occupancy_sample_cycles
        registry = session.registry

        # rx_/tx_ prefixes match the StatsCollector's channel labels and
        # keep the per-direction registry children distinct.
        self._rx = [
            ProbedChannel(project.rx[p], f"rx_{p}", "packet_in", session)
            for p in project.ports
        ]
        self._tx = [
            ProbedChannel(project.tx[p], f"tx_{p}", "packet_out", session)
            for p in project.ports
        ]
        self._arb_out = ProbedChannel(
            project.opl.s_axis, "arb_to_opl", "arbiter_grant", session
        )
        self._opl_out = ProbedChannel(
            project.oq.s_axis, "opl_to_oq", "queue_enq", session
        )
        # Hot-path mirrors of the probes above: mutable scan records
        # ``[channel, last_packets, name, oq_index]`` so the per-cycle
        # scan is plain attribute compares — no per-channel method calls,
        # no enumerate tuples.
        self._rx_scan = [
            [p.channel, p.channel.packets_transferred, p.name] for p in self._rx
        ]
        self._tx_scan = [
            [p.channel, p.channel.packets_transferred, p.name, i]
            for i, p in enumerate(self._tx)
        ]
        self._arb_chan = self._arb_out.channel
        self._arb_last = self._arb_chan.packets_transferred
        self._oplout_chan = self._opl_out.channel
        self._oplout_last = self._oplout_chan.packets_transferred

        # Arbiter grant attribution: which input won the last packet.
        arbiter = project.arbiter
        self._arbiter = arbiter
        self._grants_last = list(arbiter.packets_in)
        grant_counter = registry.counter(
            "arbiter_grants_total", "packet grants per ingress port",
            labelnames=("port",), cycle_dependent=True,
        )
        for i, port in enumerate(project.ports):
            grant_counter.labels(str(port)).bind(
                lambda a=arbiter, i=i: a.packets_in[i]
            )

        # Output queues: per-port admission ledger + occupancy gauges.
        oq = project.oq
        self._oq_ports = oq.ports
        self._port_names = [str(p) for p in project.ports]
        self._oq_enq_last = [ps.enqueued for ps in oq.ports]
        self._oq_drop_last = [ps.dropped for ps in oq.ports]
        for label, attr in (
            ("oq_enqueued_total", "enqueued"),
            ("oq_dequeued_total", "dequeued"),
            ("oq_dropped_total", "dropped"),
            ("oq_ecn_marked_total", "ecn_marked"),
        ):
            fam = registry.counter(
                label, f"output-queue {attr} packets per port",
                labelnames=("port",), cycle_dependent=True,
            )
            for name, ps in zip(self._port_names, oq.ports):
                fam.labels(name).bind(lambda p=ps, a=attr: getattr(p, a))
        occupancy = registry.gauge(
            "oq_occupancy_bytes", "buffered bytes per egress port",
            labelnames=("port",), cycle_dependent=True,
        )
        watermark = registry.gauge(
            "oq_high_watermark_bytes", "peak buffered bytes per egress port",
            labelnames=("port",), cycle_dependent=True,
        )
        for name, ps in zip(self._port_names, oq.ports):
            occupancy.labels(name).bind(lambda p=ps: sum(p.occupancy))
            watermark.labels(name).bind(lambda p=ps: p.high_watermark)

        # OPL decision ledger mirrored from the core's own counters.
        registry.counter(
            "opl_packets_total", "packets through the output-port lookup",
            cycle_dependent=True,
        ).bind(lambda o=project.opl: o.packets)
        registry.counter(
            "opl_drops_total", "packets dropped by the lookup decision",
            cycle_dependent=True,
        ).bind(lambda o=project.opl: o.drops)

        # Latency probes: OPL transit and per-port queue wait.
        self._opl_latency = registry.histogram(
            "opl_latency_cycles", "arbiter-egress to OQ-ingress packet latency",
            buckets=LATENCY_BUCKETS, cycle_dependent=True,
        ).labels()
        self._opl_inflight: deque[int] = deque()
        wait = registry.histogram(
            "oq_wait_cycles", "enqueue-to-egress wait per port",
            labelnames=("port",), buckets=LATENCY_BUCKETS, cycle_dependent=True,
        )
        self._oq_wait = [wait.labels(name) for name in self._port_names]
        self._oq_entered: list[deque[int]] = [deque() for _ in oq.ports]
        self._opl_drops_last = project.opl.drops

    # ------------------------------------------------------------------
    # The hot loop
    # ------------------------------------------------------------------
    def on_cycle(self, cycle: int) -> None:
        """Observe one settled cycle; called via ``Simulator.add_cycle_hook``.

        The common case — no packet boundary anywhere this cycle — must
        stay a flat loop of integer compares over the hot-path mirrors,
        which is why the :class:`ProbedChannel` objects are not consulted
        here (they exist for arm-time registry wiring).
        """
        emit = self.trace.emit

        for entry in self._rx_scan:
            n = entry[0].packets_transferred
            if n != entry[1]:
                entry[1] = n
                emit("packet_in", entry[2], ts=cycle)

        n = self._arb_chan.packets_transferred
        if n != self._arb_last:
            self._arb_last = n
            # A packet left the arbiter: attribute the grant and open an
            # OPL transit measurement.
            emit("arbiter_grant", "arb_to_opl", ts=cycle)
            grants = self._arbiter.packets_in
            glast = self._grants_last
            for i, g in enumerate(grants):
                if g != glast[i]:
                    glast[i] = g
                    emit("arbiter_grant", self._port_names[i], ts=cycle)
            self._opl_inflight.append(cycle)

        n = self._oplout_chan.packets_transferred
        if n != self._oplout_last:
            self._oplout_last = n
            emit("queue_enq", "opl_to_oq", ts=cycle)
            # A packet reached the output queues: close the OPL transit.
            # Packets dropped inside the OPL never arrive — their entries
            # are older than this arrival (decisions are strictly
            # ordered), so discard one stale entry per drop seen since.
            inflight = self._opl_inflight
            drops = self.project.opl.drops
            while drops != self._opl_drops_last and inflight:
                inflight.popleft()
                self._opl_drops_last += 1
            self._opl_drops_last = drops
            if inflight:
                self._opl_latency.observe(cycle - inflight.popleft())
            enq_last = self._oq_enq_last
            drop_last = self._oq_drop_last
            for i, ps in enumerate(self._oq_ports):
                enq = ps.enqueued
                if enq != enq_last[i]:
                    enq_last[i] = enq
                    self._oq_entered[i].append(cycle)
                    emit("queue_enq", self._port_names[i], ts=cycle)
                dropped = ps.dropped
                if dropped != drop_last[i]:
                    drop_last[i] = dropped
                    emit("queue_drop", self._port_names[i], ts=cycle)

        for entry in self._tx_scan:
            n = entry[0].packets_transferred
            if n != entry[1]:
                entry[1] = n
                emit("packet_out", entry[2], ts=cycle)
                i = entry[3]
                entered = self._oq_entered[i]
                if entered:
                    self._oq_wait[i].observe(cycle - entered.popleft())
                emit("queue_deq", self._port_names[i], ts=cycle)

        if cycle % self.occupancy_sample_cycles == 0:
            trace = self.trace
            for i, ps in enumerate(self._oq_ports):
                occupancy = 0
                for occ in ps.occupancy:
                    occupancy += occ
                trace.sample(f"oq_occupancy:{self._port_names[i]}", occupancy,
                             ts=cycle)

        callback = self.session.cycle_callback
        if callback is not None:
            callback(cycle)


# ----------------------------------------------------------------------
# Event-driven ("hw"-domain) probes: board, driver, faults
# ----------------------------------------------------------------------
def probe_dma(dma: Any, session: "TelemetrySession") -> None:
    """Arm a :class:`~repro.board.pcie.DmaEngine`'s telemetry hook.

    Doorbells, completion write-backs and MSI fires become trace events
    (stamped with the engine's simulated event time); ring depth and
    frame totals become registry series, snapshot-backed as always.
    """
    registry = session.registry
    registry.counter("dma_tx_frames_total", "frames the engine transmitted",
                     cycle_dependent=True).bind(lambda d=dma: d.tx_frames)
    registry.counter("dma_rx_frames_total", "frames the engine received",
                     cycle_dependent=True).bind(lambda d=dma: d.rx_frames)
    registry.counter("dma_msi_total", "MSI interrupts fired",
                     cycle_dependent=True).bind(lambda d=dma: d.msi_fired)
    registry.gauge("dma_tx_ring_occupancy", "posted TX descriptors pending"
                   ).bind(lambda d=dma: d.tx_ring.occupancy)
    registry.gauge("dma_rx_ring_space", "free RX descriptors posted"
                   ).bind(lambda d=dma: d.rx_ring.occupancy)
    trace = session.trace
    event_for = {
        "doorbell": "dma_doorbell",
        "rx_completion": "dma_completion",
        "tx_completion": "dma_completion",
        "msi": "irq",
    }

    def hook(site: str) -> None:
        trace.emit(event_for.get(site, site), site, ts=dma.sim.now_ns)

    dma.telemetry_hook = hook


def probe_driver(driver: Any, session: "TelemetrySession") -> None:
    """Mirror a host driver's self-healing ledger and recovery events."""
    registry = session.registry
    recovery = registry.counter(
        "driver_recovery_total", "driver self-healing repairs by kind",
        labelnames=("kind",), cycle_dependent=True,
    )
    for name in driver.recovery.as_dict():
        recovery.labels(name).bind(
            lambda d=driver, n=name: getattr(d.recovery, n)
        )
    registry.counter("driver_mmio_reads_total", "MMIO register reads",
                     cycle_dependent=True).bind(lambda d=driver: d.mmio_reads)
    registry.counter("driver_mmio_writes_total", "MMIO register writes",
                     cycle_dependent=True).bind(lambda d=driver: d.mmio_writes)
    registry.counter("driver_tx_frames_total", "frames handed to the TX ring",
                     cycle_dependent=True).bind(lambda d=driver: d.tx_sent)
    registry.counter("driver_rx_frames_total", "frames harvested from the RX ring",
                     cycle_dependent=True).bind(lambda d=driver: d.rx_received)
    trace = session.trace

    def hook(event: str) -> None:
        trace.emit("fault_recovered", event, ts=driver.board.sim.now_ns)

    driver.event_hook = hook


def probe_faults(fault_session: Any, session: "TelemetrySession") -> None:
    """Turn a fault session's injections into trace events + counters."""
    registry = session.registry
    injected = registry.counter(
        "faults_injected_total", "fault-site decisions that fired",
        labelnames=("site",), cycle_dependent=True,
    )
    trace = session.trace
    clock = trace.clock

    def hook(site: str, outcome: str) -> None:
        injected.labels(site).inc()
        trace.emit("fault_injected", f"{site}:{outcome}", ts=clock())

    fault_session.on_fault = hook


def probe_fabric(report: Any, session: "TelemetrySession") -> None:
    """Publish a finished fabric run into a telemetry session.

    Fabric runs are transaction-level and post-hoc: there is no hot loop
    to hook, so the probe simply feeds the
    :class:`~repro.fabric.FabricReport`'s order-independent aggregates
    into the registry (all ``cycle_dependent=False`` — they describe
    delivered work, so they join the sim/hw parity set) and emits one
    trace span per run for the timeline view.
    """
    report.feed(session.registry)
    session.trace.emit(
        "fabric_run",
        f"{report.topology}:{report.workload}@{report.shards}",
        ts=session.trace.clock(),
    )


def probe_int(report: Any, session: "TelemetrySession") -> None:
    """Publish a fabric run's receiver-side INT summary into a session.

    Like :func:`probe_fabric` this is post-hoc: the summary's outcome
    totals, per-device reroute counts, per-link reroute attribution and
    per-hop latency distribution become registry series.  All
    ``cycle_dependent=False`` — the summary is a pure function of
    (topology, workload, seed), so it joins the sim/hw parity set.
    Reports without a summary (no INT flows) publish nothing.
    """
    summary = getattr(report, "int_summary", None) or report
    if not isinstance(summary, dict):
        return
    registry = session.registry
    outcomes = registry.counter(
        "int_packets_total", "INT packets by receiver-observed outcome",
        labelnames=("outcome",), cycle_dependent=False,
    )
    for outcome in ("packets", "delivered", "lost", "blackholes",
                    "overflows"):
        count = summary.get(outcome, 0)
        if count:
            outcomes.labels(outcome).inc(count)
    reroutes = registry.counter(
        "int_reroutes_total", "FRR-flagged stamps per rerouting device",
        labelnames=("device",), cycle_dependent=False,
    )
    for device, count in summary.get("reroutes", {}).items():
        reroutes.labels(device).inc(count)
    links = registry.counter(
        "int_reroute_links_total", "reroutes attributed to a failed link",
        labelnames=("link",), cycle_dependent=False,
    )
    for link, count in summary.get("reroute_links", {}).items():
        links.labels(link).inc(count)
    latency = registry.histogram(
        "int_hop_latency_cycles", "per-hop latency from stamp deltas",
        labelnames=("device",),
        buckets=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        cycle_dependent=False,
    )
    for key, count in summary.get("hop_latency", {}).items():
        device, _, cycles = key.rpartition(":")
        child = latency.labels(device)
        for _ in range(count):
            child.observe(float(cycles))


def probe_fastpath(network: Any, session: "TelemetrySession") -> None:
    """Mirror a test network's flow-cache counters into the registry.

    One ``fastpath_events_total`` series per (device, event) for the
    microflow caches, plus the network-wide path cache under the
    pseudo-device ``net``; ``fastpath_entries`` gauges track occupancy.
    All ``cycle_dependent=False``: cache behaviour is a pure function of
    the traffic and table mutations, so sim and hw runs of the same
    scenario must agree — the counters join the parity set rather than
    being waived from it.
    """
    registry = session.registry
    events = registry.counter(
        "fastpath_events_total", "flow-cache lookups by outcome",
        labelnames=("device", "event"), cycle_dependent=False,
    )
    entries = registry.gauge(
        "fastpath_entries", "entries resident per flow cache",
        labelnames=("device",), cycle_dependent=False,
    )
    for name in network.device_names():
        cache = getattr(network.device(name), "fastpath", None)
        if cache is None:
            continue
        for event, attr in (("hit", "hits"), ("miss", "misses"),
                            ("invalidation", "invalidations"),
                            ("bypass", "bypasses")):
            events.labels(name, event).bind(
                lambda c=cache, a=attr: getattr(c, a)
            )
        entries.labels(name).bind(lambda c=cache: len(c.entries))
    for event, attr in (("hit", "path_hits"), ("miss", "path_misses"),
                        ("invalidation", "path_invalidations"),
                        ("bypass", "path_bypasses")):
        events.labels("net", event).bind(
            lambda n=network, a=attr: getattr(n, a)
        )
    entries.labels("net").bind(lambda n=network: n.path_entries)


def probe_shard(report: Any, session: "TelemetrySession") -> None:
    """Publish a supervised shard run's supervision ledger.

    Post-hoc like :func:`probe_fabric`: the report's ``supervision``
    dict (attempts, retries, worker crashes, heartbeat gaps, deadline
    kills, corrupt results, inline fallbacks, checkpoint hits/writes)
    becomes one ``shard_events_total`` series per event.  All
    ``cycle_dependent=False`` — the ledger is a pure function of the
    (chaos plan, seed, shard count) and joins the parity set, so a run
    that degraded to inline fallback is *visible* in telemetry even
    though its fingerprint is identical to the clean run.  Reports from
    unsupervised paths (empty ledger) publish nothing.
    """
    supervision = getattr(report, "supervision", None)
    if not supervision:
        return
    events = session.registry.counter(
        "shard_events_total", "shard supervisor events by kind",
        labelnames=("event",), cycle_dependent=False,
    )
    for event, count in sorted(supervision.items()):
        if count:
            events.labels(event).inc(count)
    session.trace.emit(
        "shard_supervised",
        f"{report.topology}:{report.workload}@{report.shards}",
        ts=session.trace.clock(),
    )


def probe_frr(network: Any, session: "TelemetrySession") -> None:
    """Mirror a network's fast-reroute ledger into the registry.

    One ``frr_reroutes_total`` / ``frr_blackholed_total`` series per
    device (from the lookup cores' own decision counters) plus a
    ``frr_port_liveness`` gauge holding each device's one-hot live-port
    bitmap.  All ``cycle_dependent=False``: reroute decisions are a pure
    function of (traffic, tables, link state), so sim and hw runs of the
    same scenario must agree — the FRR ledger joins the parity set.
    """
    registry = session.registry
    reroutes = registry.counter(
        "frr_reroutes_total", "packets forwarded via the backup next-hop",
        labelnames=("device",), cycle_dependent=False,
    )
    blackholed = registry.counter(
        "frr_blackholed_total", "packets dropped with primary down, no backup",
        labelnames=("device",), cycle_dependent=False,
    )
    liveness = registry.gauge(
        "frr_port_liveness", "one-hot bitmap of live physical ports",
        labelnames=("device",), cycle_dependent=False,
    )
    for name in network.device_names():
        opl = getattr(network.device(name), "opl", None)
        if opl is None:
            continue
        reroutes.labels(name).bind(
            lambda o=opl: o.counters.get("frr_reroute", 0)
        )
        blackholed.labels(name).bind(
            lambda o=opl: o.counters.get("frr_blackhole", 0)
        )
        liveness.labels(name).bind(lambda o=opl: o.port_liveness)


#: The control plane's reconciliation/supervision ledger, mirrored into
#: the registry.  Deliberately ``cycle_dependent=False``: these counters
#: are pure functions of the (plan, seed, tick sequence), so they join
#: the parity set the sim and hw soak runs must agree on.
RESILIENCE_COUNTERS = (
    "audits",
    "drift_entries",
    "repair_writes",
    "repair_retries",
    "repair_failures",
    "heartbeat_failures",
    "manager_restarts",
    "degraded_entries",
    "degraded_exits",
    "mutations_applied",
    "mutations_queued",
    "mutations_replayed",
)


def probe_resilience(plane: Any, session: "TelemetrySession") -> None:
    """Mirror a :class:`~repro.resilience.control.ControlPlane`'s ledger.

    Reconciliation/supervision counters become snapshot-backed registry
    series (in the sim/hw parity set), the degraded flag and mutation
    queue depth become gauges, and every resilience event (drift found,
    manager restarted, degraded entered/left, queue replayed) becomes a
    trace event — all through the plane's ``event_hook``, same
    hook-attribute pattern as the driver and fault probes.
    """
    registry = session.registry
    ledger = registry.counter(
        "resilience_total", "control-plane reconciliation/supervision events",
        labelnames=("event",),
    )
    for name in RESILIENCE_COUNTERS:
        ledger.labels(name).bind(lambda p=plane, n=name: p.counters.get(n, 0))
    registry.gauge(
        "resilience_degraded", "1 while the breaker holds the plane degraded",
    ).bind(lambda p=plane: 1 if p.degraded else 0)
    registry.gauge(
        "resilience_queued_mutations", "mutations parked awaiting recovery",
    ).bind(lambda p=plane: len(p.queue))
    trace = session.trace
    clock = trace.clock

    def hook(kind: str, detail: str) -> None:
        trace.emit("resilience", f"{kind}:{detail}", ts=clock())

    plane.event_hook = hook
