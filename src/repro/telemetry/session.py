"""One telemetry session: a registry, a trace, and a snapshot contract.

A session is scoped to one run (one ``run_test`` execution, one
``nf-mon`` invocation) and owns the clock-domain decision: ``sim``
sessions stamp trace events in kernel cycles, ``hw`` sessions in
nanoseconds.  :meth:`TelemetrySession.snapshot` freezes the registry
into a :class:`TelemetrySnapshot`, whose ``parity`` subset — the
cycle-independent series — is what the unified test environment demands
be identical between the two execution targets (extending experiment
E11's packet-level agreement to the measurement plane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import TraceRecorder

MODES = ("sim", "hw")


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A frozen view of one session's registry at run end."""

    mode: str
    counters: dict[str, float] = field(default_factory=dict)
    parity: dict[str, float] = field(default_factory=dict)
    trace_events: int = 0
    trace_dropped: int = 0

    def cycle_independent(self) -> dict[str, float]:
        """The series both execution targets must agree on."""
        return dict(self.parity)

    def get(self, series: str, default: float = 0) -> float:
        return self.counters.get(series, default)

    def assert_parity(self, other: "TelemetrySnapshot") -> None:
        """Demand the cycle-independent series agree with ``other``'s.

        This is experiment E11's packet-level sim/hw agreement lifted to
        the measurement plane; raises ``AssertionError`` naming every
        divergent series.
        """
        mine, theirs = self.parity, other.parity
        diffs = [
            f"  {series}: {self.mode}={mine.get(series, '<absent>')} "
            f"{other.mode}={theirs.get(series, '<absent>')}"
            for series in sorted(set(mine) | set(theirs))
            if mine.get(series) != theirs.get(series)
        ]
        if diffs:
            raise AssertionError(
                "cycle-independent telemetry diverges between "
                f"{self.mode} and {other.mode}:\n" + "\n".join(diffs)
            )


class TelemetrySession:
    """Registry + trace recorder for one run, in one clock domain."""

    def __init__(
        self,
        mode: str = "sim",
        clock_period_ns: float = 5.0,
        trace_capacity: int = 65536,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.registry = MetricsRegistry()
        if mode == "sim":
            self.trace = TraceRecorder(
                domain="cycles",
                capacity=trace_capacity,
                us_per_tick=clock_period_ns / 1_000.0,
            )
        else:
            self.trace = TraceRecorder(domain="ns", capacity=trace_capacity)
        #: Optional per-cycle observer (sim mode), invoked by the
        #: pipeline probes after their own scan — ``nf-mon watch`` uses
        #: it to cut interval snapshots without touching the harness.
        self.cycle_callback = None

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            mode=self.mode,
            counters=self.registry.snapshot(),
            parity=self.registry.snapshot(cycle_independent_only=True),
            trace_events=len(self.trace),
            trace_dropped=self.trace.dropped,
        )


def make_session(telemetry, mode: str) -> Optional[TelemetrySession]:
    """Normalize a harness ``telemetry=`` argument into a session.

    ``False``/``None`` → no telemetry; ``True`` → a fresh session for
    ``mode``; an existing session is validated against ``mode`` and
    passed through (letting callers pre-register their own series).
    """
    if not telemetry:
        return None
    if telemetry is True:
        return TelemetrySession(mode)
    if not isinstance(telemetry, TelemetrySession):
        raise TypeError("telemetry must be bool or a TelemetrySession")
    if telemetry.mode != mode:
        raise ValueError(
            f"telemetry session is for mode {telemetry.mode!r}, run is {mode!r}"
        )
    return telemetry
