"""Platform telemetry: metrics, cycle-domain tracing, latency probes.

The measurement face of the platform (S19).  The paper's claims are
about *measurable* designs — per-port statistics over AXI4-Lite (§3),
OSNT's precise timestamping (ref [1]), utilization comparison (C4) —
and this package gives every layer one uniform way to be measured:

* :class:`MetricsRegistry` — typed Counter/Gauge/Histogram series with
  labels; exports to JSON, Prometheus text, and an AXI4-Lite register
  block (64-bit ``_hi``/``_lo`` pairs) so hardware-style readout works;
* :class:`TraceRecorder` — a bounded flight recorder of typed events
  stamped in the executing target's clock domain (sim cycles / wall ns),
  exportable as Chrome ``trace_event`` JSON;
* :class:`PipelineProbes` / :class:`ProbedChannel` and the
  ``probe_dma`` / ``probe_driver`` / ``probe_faults`` hooks — passive,
  interface-preserving observation of a live design;
* :class:`TelemetrySession` — one run's registry+trace pair, snapshotted
  into a :class:`TelemetrySnapshot` whose cycle-independent subset must
  agree between the ``sim`` and ``hw`` targets.

Quickstart::

    from repro.testenv import run_test

    result = run_test(my_test, "sim", telemetry=True)
    print(result.telemetry.counters["port_packets_out{port=\\"nf1\\"}"])
    # or from the shell:  nf-mon dump --project reference_switch
"""

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
)
from repro.telemetry.probes import (
    PipelineProbes,
    ProbedChannel,
    probe_dma,
    probe_driver,
    probe_fabric,
    probe_fastpath,
    probe_frr,
    probe_int,
    probe_shard,
    probe_faults,
    probe_resilience,
)
from repro.telemetry.session import TelemetrySession, TelemetrySnapshot, make_session
from repro.telemetry.trace import TraceEvent, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryError",
    "PipelineProbes",
    "ProbedChannel",
    "probe_dma",
    "probe_driver",
    "probe_fabric",
    "probe_fastpath",
    "probe_frr",
    "probe_int",
    "probe_shard",
    "probe_faults",
    "probe_resilience",
    "TelemetrySession",
    "TelemetrySnapshot",
    "make_session",
    "TraceEvent",
    "TraceRecorder",
]
