"""ICMP (RFC 792): echo and the error messages the router generates."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet.checksum import internet_checksum

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

HEADER_SIZE = 8


@dataclass
class IcmpPacket:
    """An ICMP message; the 32-bit "rest of header" is type-dependent."""

    icmp_type: int
    code: int = 0
    rest: int = 0
    payload: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if not 0 <= self.icmp_type <= 0xFF:
            raise ValueError(f"ICMP type out of range: {self.icmp_type}")
        if not 0 <= self.code <= 0xFF:
            raise ValueError(f"ICMP code out of range: {self.code}")
        if not 0 <= self.rest <= 0xFFFFFFFF:
            raise ValueError(f"ICMP rest-of-header out of range: {self.rest:#x}")

    def pack(self) -> bytes:
        body = (
            bytes([self.icmp_type, self.code])
            + b"\x00\x00"
            + self.rest.to_bytes(4, "big")
            + self.payload
        )
        checksum = internet_checksum(body)
        return body[:2] + checksum.to_bytes(2, "big") + body[4:]

    @classmethod
    def parse(cls, data: bytes, verify: bool = True) -> "IcmpPacket":
        if len(data) < HEADER_SIZE:
            raise ValueError(f"too short for ICMP: {len(data)}B")
        if verify and internet_checksum(data) != 0:
            raise ValueError("ICMP checksum mismatch")
        return cls(
            icmp_type=data[0],
            code=data[1],
            rest=int.from_bytes(data[4:8], "big"),
            payload=data[8:],
        )

    @classmethod
    def echo_request(cls, ident: int, seq: int, payload: bytes = b"") -> "IcmpPacket":
        return cls(ICMP_ECHO_REQUEST, 0, (ident << 16) | seq, payload)

    @classmethod
    def echo_reply_to(cls, request: "IcmpPacket") -> "IcmpPacket":
        if request.icmp_type != ICMP_ECHO_REQUEST:
            raise ValueError("not an echo request")
        return cls(ICMP_ECHO_REPLY, 0, request.rest, request.payload)
