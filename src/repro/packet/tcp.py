"""TCP segment encoding (RFC 793) — header-level only.

The platform's projects treat TCP as opaque payload beyond the header
fields used for classification (BlueSwitch match keys, OSNT flow hashing),
so no state machine is provided; packing/parsing is byte-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet.addresses import Ipv4Addr
from repro.packet.checksum import transport_checksum
from repro.packet.ipv4 import IPPROTO_TCP

MIN_HEADER_SIZE = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


@dataclass
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = FLAG_ACK
    window: int = 0xFFFF
    urgent: int = 0
    options: bytes = field(default=b"")
    payload: bytes = field(default=b"")

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        if len(self.options) % 4 != 0:
            raise ValueError("TCP options must be 32-bit padded")
        if len(self.options) > 40:
            raise ValueError("TCP options exceed 40 bytes")
        if not 0 <= self.seq <= 0xFFFFFFFF or not 0 <= self.ack <= 0xFFFFFFFF:
            raise ValueError("seq/ack out of range")

    @property
    def header_length(self) -> int:
        return MIN_HEADER_SIZE + len(self.options)

    def pack(self, src_ip: Ipv4Addr | None = None, dst_ip: Ipv4Addr | None = None) -> bytes:
        data_offset = self.header_length // 4
        header = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.seq.to_bytes(4, "big")
            + self.ack.to_bytes(4, "big")
            + bytes([(data_offset << 4), self.flags & 0x3F])
            + self.window.to_bytes(2, "big")
            + b"\x00\x00"
            + self.urgent.to_bytes(2, "big")
            + self.options
        )
        segment = header + self.payload
        if src_ip is None or dst_ip is None:
            return segment
        checksum = transport_checksum(src_ip.packed, dst_ip.packed, IPPROTO_TCP, segment)
        return segment[:16] + checksum.to_bytes(2, "big") + segment[18:]

    @classmethod
    def parse(cls, data: bytes) -> "TcpSegment":
        if len(data) < MIN_HEADER_SIZE:
            raise ValueError(f"too short for TCP: {len(data)}B")
        data_offset = (data[12] >> 4) * 4
        if data_offset < MIN_HEADER_SIZE or data_offset > len(data):
            raise ValueError(f"bad TCP data offset {data_offset}")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            seq=int.from_bytes(data[4:8], "big"),
            ack=int.from_bytes(data[8:12], "big"),
            flags=data[13] & 0x3F,
            window=int.from_bytes(data[14:16], "big"),
            urgent=int.from_bytes(data[18:20], "big"),
            options=data[MIN_HEADER_SIZE:data_offset],
            payload=data[data_offset:],
        )
