"""IPv4 header handling (RFC 791), options supported, no fragmentation reassembly."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet.addresses import Ipv4Addr
from repro.packet.checksum import internet_checksum

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

MIN_HEADER_SIZE = 20


@dataclass
class Ipv4Packet:
    """An IPv4 packet; ``pack()`` computes total length and checksum."""

    src: Ipv4Addr
    dst: Ipv4Addr
    protocol: int
    payload: bytes = field(default=b"")
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    identification: int = 0
    flags: int = 0  # bit 1 = DF, bit 0 = MF (in the 3-bit field: [evil,DF,MF])
    fragment_offset: int = 0
    options: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if not 0 <= self.protocol <= 0xFF:
            raise ValueError(f"protocol out of range: {self.protocol}")
        if not 0 <= self.ttl <= 0xFF:
            raise ValueError(f"TTL out of range: {self.ttl}")
        if len(self.options) % 4 != 0:
            raise ValueError("IPv4 options must be 32-bit padded")
        if len(self.options) > 40:
            raise ValueError("IPv4 options exceed 40 bytes")
        if not 0 <= self.fragment_offset <= 0x1FFF:
            raise ValueError(f"fragment offset out of range: {self.fragment_offset}")

    @property
    def header_length(self) -> int:
        return MIN_HEADER_SIZE + len(self.options)

    @property
    def total_length(self) -> int:
        return self.header_length + len(self.payload)

    def pack(self) -> bytes:
        ihl = self.header_length // 4
        version_ihl = (4 << 4) | ihl
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.fragment_offset
        header = bytearray()
        header.append(version_ihl)
        header.append(tos)
        header += self.total_length.to_bytes(2, "big")
        header += self.identification.to_bytes(2, "big")
        header += flags_frag.to_bytes(2, "big")
        header.append(self.ttl)
        header.append(self.protocol)
        header += b"\x00\x00"  # checksum placeholder
        header += self.src.packed
        header += self.dst.packed
        header += self.options
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        return bytes(header) + self.payload

    @classmethod
    def parse(cls, data: bytes, verify: bool = True) -> "Ipv4Packet":
        if len(data) < MIN_HEADER_SIZE:
            raise ValueError(f"too short for IPv4 header: {len(data)}B")
        version = data[0] >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version {version})")
        ihl = data[0] & 0x0F
        header_len = ihl * 4
        if header_len < MIN_HEADER_SIZE or len(data) < header_len:
            raise ValueError(f"bad IHL {ihl}")
        total_length = int.from_bytes(data[2:4], "big")
        if total_length < header_len or total_length > len(data):
            raise ValueError(
                f"bad total length {total_length} (have {len(data)}B, "
                f"header {header_len}B)"
            )
        if verify and internet_checksum(data[:header_len]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        tos = data[1]
        flags_frag = int.from_bytes(data[6:8], "big")
        return cls(
            src=Ipv4Addr.from_bytes(data[12:16]),
            dst=Ipv4Addr.from_bytes(data[16:20]),
            protocol=data[9],
            payload=data[header_len:total_length],
            ttl=data[8],
            dscp=tos >> 2,
            ecn=tos & 0x3,
            identification=int.from_bytes(data[4:6], "big"),
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            options=data[MIN_HEADER_SIZE:header_len],
        )
