"""Workload generation for tests and benchmarks.

All generators take an explicit seeded ``random.Random`` (or a seed) so
every experiment in EXPERIMENTS.md is bit-reproducible.  The IMIX mix is
the classic 7:4:1 of 64/576/1518-byte frames used across the industry for
"internet-like" load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.packet.addresses import BROADCAST_MAC, Ipv4Addr, MacAddr
from repro.packet.arp import ARP_OP_REQUEST, ArpPacket
from repro.packet.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    MAX_FRAME_SIZE,
    MIN_FRAME_SIZE,
    EthernetFrame,
)
from repro.packet.ipv4 import Ipv4Packet
from repro.packet.udp import UdpDatagram

#: (size_with_fcs, weight) — the standard simple IMIX.
IMIX_MIX: tuple[tuple[int, int], ...] = ((64, 7), (576, 4), (1518, 1))


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(0 if seed_or_rng is None else seed_or_rng)


def make_udp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    sport: int = 10000,
    dport: int = 20000,
    size: int = 256,
    ttl: int = 64,
    fill: bytes = b"\xa5",
) -> EthernetFrame:
    """A UDP/IPv4/Ethernet frame padded to ``size`` bytes on the wire
    (including FCS).  ``size`` below the protocol minimum raises."""
    overhead = 14 + 20 + 8 + 4  # eth + ipv4 + udp + fcs
    if size < max(overhead, MIN_FRAME_SIZE):
        raise ValueError(f"frame size {size} too small for UDP/IPv4 ({overhead}B min)")
    payload_len = size - overhead
    udp = UdpDatagram(sport, dport, fill * payload_len)
    ip = Ipv4Packet(src_ip, dst_ip, 17, udp.pack(src_ip, dst_ip), ttl=ttl)
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, ip.pack())


def make_arp_request(
    sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr
) -> EthernetFrame:
    arp = ArpPacket(
        op=ARP_OP_REQUEST,
        sender_mac=sender_mac,
        sender_ip=sender_ip,
        target_mac=MacAddr(0),
        target_ip=target_ip,
    )
    return EthernetFrame(BROADCAST_MAC, sender_mac, ETHERTYPE_ARP, arp.pack())


def random_frame(
    rng: int | random.Random | None = None,
    size: Optional[int] = None,
    src_mac: Optional[MacAddr] = None,
    dst_mac: Optional[MacAddr] = None,
) -> EthernetFrame:
    """A random-but-well-formed UDP frame, deterministic under a seed."""
    rand = _rng(rng)
    if size is None:
        size = rand.randint(MIN_FRAME_SIZE, MAX_FRAME_SIZE)
    def _unicast_laa() -> MacAddr:
        # Clear the I/G bit (multicast) and set the U/L bit (locally
        # administered); both live in the first transmitted octet.
        value = rand.getrandbits(48)
        return MacAddr((value & ~(1 << 40)) | (1 << 41))

    return make_udp_frame(
        src_mac=src_mac or _unicast_laa(),
        dst_mac=dst_mac or _unicast_laa(),
        src_ip=Ipv4Addr(rand.getrandbits(32)),
        dst_ip=Ipv4Addr(rand.getrandbits(32)),
        sport=rand.randint(1024, 65535),
        dport=rand.randint(1024, 65535),
        size=size,
    )


def uniform_random_frames(
    count: int, seed: int = 0, size: Optional[int] = None
) -> list[EthernetFrame]:
    rand = random.Random(seed)
    return [random_frame(rand, size=size) for _ in range(count)]


@dataclass
class TrafficSpec:
    """A reproducible traffic description for the benchmark harness.

    ``sizes`` gives the wire sizes (with FCS) and ``weights`` their mix;
    a single-element spec is a fixed-size stream.  ``flows`` spreads the
    stream over that many (src_ip, dst_ip, ports) tuples round-robin,
    which exercises lookup tables realistically.
    """

    sizes: Sequence[int] = (1518,)
    weights: Sequence[int] = (1,)
    flows: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights):
            raise ValueError("sizes and weights must align")
        if not self.sizes:
            raise ValueError("at least one frame size required")
        if self.flows <= 0:
            raise ValueError("flows must be positive")

    @classmethod
    def imix(cls, flows: int = 1, seed: int = 0) -> "TrafficSpec":
        sizes, weights = zip(*IMIX_MIX)
        return cls(sizes=sizes, weights=weights, flows=flows, seed=seed)

    @classmethod
    def fixed(cls, size: int, flows: int = 1, seed: int = 0) -> "TrafficSpec":
        return cls(sizes=(size,), weights=(1,), flows=flows, seed=seed)

    def mean_size(self) -> float:
        total_weight = sum(self.weights)
        return sum(s * w for s, w in zip(self.sizes, self.weights)) / total_weight

    def frames(self, count: int) -> Iterator[EthernetFrame]:
        """Yield ``count`` frames following the spec, deterministically."""
        rand = random.Random(self.seed)
        flow_tuples = [
            (
                MacAddr(0x02_00_00_00_00_00 | f),
                MacAddr(0x02_00_00_00_01_00 | f),
                Ipv4Addr(0x0A000000 | f),  # 10.0.x.x
                Ipv4Addr(0x0A010000 | f),
                1024 + f,
                2048 + f,
            )
            for f in range(self.flows)
        ]
        for i in range(count):
            size = rand.choices(self.sizes, weights=self.weights)[0]
            smac, dmac, sip, dip, sport, dport = flow_tuples[i % self.flows]
            yield make_udp_frame(smac, dmac, sip, dip, sport, dport, size=size)
