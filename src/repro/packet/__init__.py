"""Packet construction, parsing and capture.

A from-scratch packet library covering the protocols the NetFPGA reference
projects handle in hardware: Ethernet (with 802.1Q VLAN), ARP, IPv4, ICMP,
UDP and TCP, plus pcap file I/O and workload generators for the test and
benchmark harnesses.

Design note: each protocol is an explicit dataclass with ``pack()`` /
``parse()`` — no metaclass field magic — because the datapath cores need
byte-exact, auditable encodings (they parse headers straight off beat
boundaries).
"""

from repro.packet.addresses import BROADCAST_MAC, Ipv4Addr, MacAddr
from repro.packet.arp import ArpPacket, ARP_OP_REPLY, ARP_OP_REQUEST
from repro.packet.checksum import internet_checksum, incremental_update16, verify_checksum
from repro.packet.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    MIN_FRAME_SIZE,
    MAX_FRAME_SIZE,
    EthernetFrame,
)
from repro.packet.icmp import IcmpPacket, ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST, ICMP_TIME_EXCEEDED
from repro.packet.ipv4 import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, Ipv4Packet
from repro.packet.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.packet.tcp import TcpSegment
from repro.packet.udp import UdpDatagram
from repro.packet.vlan import VlanTag
from repro.packet.analysis import (
    CaptureSummary,
    flow_breakdown,
    interarrival_stats,
    rate_timeseries,
    size_histogram,
    summarize,
)
from repro.packet.generator import (
    TrafficSpec,
    make_arp_request,
    make_udp_frame,
    random_frame,
    uniform_random_frames,
)

__all__ = [
    "BROADCAST_MAC",
    "Ipv4Addr",
    "MacAddr",
    "ArpPacket",
    "ARP_OP_REPLY",
    "ARP_OP_REQUEST",
    "internet_checksum",
    "incremental_update16",
    "verify_checksum",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "MIN_FRAME_SIZE",
    "MAX_FRAME_SIZE",
    "EthernetFrame",
    "IcmpPacket",
    "ICMP_ECHO_REPLY",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "Ipv4Packet",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "TcpSegment",
    "UdpDatagram",
    "VlanTag",
    "CaptureSummary",
    "flow_breakdown",
    "interarrival_stats",
    "rate_timeseries",
    "size_histogram",
    "summarize",
    "TrafficSpec",
    "make_arp_request",
    "make_udp_frame",
    "random_frame",
    "uniform_random_frames",
]
