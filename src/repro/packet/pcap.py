"""Classic pcap file format (libpcap 2.4), from scratch.

OSNT replays pcap traces and writes captures back out; the unified test
environment exchanges expected/actual packet sets as pcap.  Both
microsecond and nanosecond (magic ``0xA1B23C4D``) variants are supported,
as is reading foreign-endian files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

MAGIC_US = 0xA1B2C3D4
MAGIC_NS = 0xA1B23C4D
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: timestamp (ns since epoch) and frame bytes."""

    timestamp_ns: int
    data: bytes
    orig_len: int = -1  # -1 = same as len(data)

    @property
    def original_length(self) -> int:
        return len(self.data) if self.orig_len < 0 else self.orig_len

    @property
    def truncated(self) -> bool:
        return self.original_length > len(self.data)


class PcapWriter:
    """Writes nanosecond-resolution pcap; context-manager friendly."""

    def __init__(self, fileobj: IO[bytes], snaplen: int = 65535, nanosecond: bool = True):
        self._file = fileobj
        self.snaplen = snaplen
        self.nanosecond = nanosecond
        self._file.write(
            _GLOBAL_HEADER.pack(
                MAGIC_NS if nanosecond else MAGIC_US,
                2,
                4,
                0,
                0,
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )
        self.records_written = 0

    def write(self, record: PcapRecord) -> None:
        data = record.data[: self.snaplen]
        if self.nanosecond:
            sec, frac = divmod(record.timestamp_ns, 1_000_000_000)
        else:
            sec, frac = divmod(record.timestamp_ns // 1000, 1_000_000)
        self._file.write(
            _RECORD_HEADER.pack(sec, frac, len(data), record.original_length)
        )
        self._file.write(data)
        self.records_written += 1

    def write_packets(self, packets: Iterable[bytes], interval_ns: int = 1000) -> None:
        """Convenience: write raw frames with synthetic evenly spaced stamps."""
        for i, data in enumerate(packets):
            self.write(PcapRecord(timestamp_ns=i * interval_ns, data=data))


class PcapReader:
    """Iterates :class:`PcapRecord` from any endian/resolution pcap file."""

    def __init__(self, fileobj: IO[bytes]):
        self._file = fileobj
        header = fileobj.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError("truncated pcap global header")
        magic_le = struct.unpack("<I", header[:4])[0]
        magic_be = struct.unpack(">I", header[:4])[0]
        if magic_le in (MAGIC_US, MAGIC_NS):
            self._endian, magic = "<", magic_le
        elif magic_be in (MAGIC_US, MAGIC_NS):
            self._endian, magic = ">", magic_be
        else:
            raise ValueError(f"not a pcap file (magic {header[:4].hex()})")
        self.nanosecond = magic == MAGIC_NS
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]
        self._record = struct.Struct(self._endian + "IIII")

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            header = self._file.read(self._record.size)
            if not header:
                return
            if len(header) < self._record.size:
                raise ValueError("truncated pcap record header")
            sec, frac, incl_len, orig_len = self._record.unpack(header)
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise ValueError("truncated pcap record body")
            if self.nanosecond:
                timestamp_ns = sec * 1_000_000_000 + frac
            else:
                timestamp_ns = (sec * 1_000_000 + frac) * 1000
            yield PcapRecord(timestamp_ns=timestamp_ns, data=data, orig_len=orig_len)


def write_pcap(path: str, records: Iterable[PcapRecord], nanosecond: bool = True) -> int:
    """Write records to ``path``; returns the record count."""
    with open(path, "wb") as fileobj:
        writer = PcapWriter(fileobj, nanosecond=nanosecond)
        for record in records:
            writer.write(record)
        return writer.records_written


def read_pcap(path: str) -> list[PcapRecord]:
    with open(path, "rb") as fileobj:
        return list(PcapReader(fileobj))
