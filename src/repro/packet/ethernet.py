"""Ethernet II framing.

The MAC models deal in frames *without* FCS (the NetFPGA datapath strips
and regenerates FCS at the MAC boundary, so TUSER ``len`` excludes it);
``pack()`` therefore emits header+payload and the FCS helpers are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet.addresses import MacAddr
from repro.utils.crc import crc32_ethernet

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

HEADER_SIZE = 14
#: Minimum/maximum Ethernet frame sizes including FCS (64..1518 untagged).
MIN_FRAME_SIZE = 64
MAX_FRAME_SIZE = 1518
FCS_SIZE = 4
#: Line overhead per frame: 7B preamble + 1B SFD + 12B inter-frame gap.
PREAMBLE_SFD_IFG = 20


@dataclass
class EthernetFrame:
    """An Ethernet II frame (dst, src, ethertype, payload), FCS excluded."""

    dst: MacAddr
    src: MacAddr
    ethertype: int
    payload: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {self.ethertype:#x}")

    def pack(self, pad: bool = True) -> bytes:
        """Serialize; pads to the 60-byte minimum (64 with FCS) by default."""
        raw = (
            self.dst.packed
            + self.src.packed
            + self.ethertype.to_bytes(2, "big")
            + self.payload
        )
        if pad and len(raw) < MIN_FRAME_SIZE - FCS_SIZE:
            raw += b"\x00" * (MIN_FRAME_SIZE - FCS_SIZE - len(raw))
        return raw

    def pack_with_fcs(self, pad: bool = True) -> bytes:
        raw = self.pack(pad=pad)
        return raw + crc32_ethernet(raw).to_bytes(4, "little")

    @classmethod
    def parse(cls, data: bytes) -> "EthernetFrame":
        if len(data) < HEADER_SIZE:
            raise ValueError(f"frame too short for Ethernet header: {len(data)}B")
        return cls(
            dst=MacAddr.from_bytes(data[0:6]),
            src=MacAddr.from_bytes(data[6:12]),
            ethertype=int.from_bytes(data[12:14], "big"),
            payload=data[14:],
        )

    @classmethod
    def parse_with_fcs(cls, data: bytes) -> "EthernetFrame":
        """Parse a frame carrying FCS; raises on a CRC mismatch."""
        if len(data) < HEADER_SIZE + FCS_SIZE:
            raise ValueError(f"frame too short for Ethernet+FCS: {len(data)}B")
        body, fcs = data[:-FCS_SIZE], data[-FCS_SIZE:]
        expected = crc32_ethernet(body).to_bytes(4, "little")
        if fcs != expected:
            raise ValueError(
                f"FCS mismatch: got {fcs.hex()}, expected {expected.hex()}"
            )
        return cls.parse(body)

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including FCS (before preamble/IFG)."""
        return max(len(self.pack(pad=False)), MIN_FRAME_SIZE - FCS_SIZE) + FCS_SIZE

    def __len__(self) -> int:
        return HEADER_SIZE + len(self.payload)


def wire_time_ns(frame_bytes_with_fcs: int, line_rate_bps: float) -> float:
    """Serialization time of one frame including preamble, SFD and IFG.

    This is the quantity that turns into the classic rate-vs-frame-size
    curve: small frames pay the fixed 20-byte overhead proportionally more.
    """
    if line_rate_bps <= 0:
        raise ValueError("line rate must be positive")
    total_bytes = frame_bytes_with_fcs + PREAMBLE_SFD_IFG
    return total_bytes * 8 / line_rate_bps * 1e9
