"""MAC and IPv4 address value types.

Both types wrap a plain integer, so the hardware models (CAM keys, LPM
prefixes, TUSER words) can use them directly while software-facing code
gets parsing and pretty-printing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.utils.bitfield import mask


@lru_cache(maxsize=4096)
def _parse_mac_value(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` to its 48-bit value, memoized.

    Host tooling re-parses the same small set of MAC strings constantly
    (fabric host maps, desired-state stores).  Only *successful* parses
    are cached — ``lru_cache`` does not cache raised exceptions, so
    malformed inputs fail identically on every call.
    """
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    try:
        octets = [int(p, 16) for p in parts]
    except ValueError as exc:
        raise ValueError(f"malformed MAC address: {text!r}") from exc
    if any(not 0 <= o <= 0xFF for o in octets):
        raise ValueError(f"malformed MAC address: {text!r}")
    value = 0
    for octet in octets:
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class MacAddr:
    """A 48-bit IEEE 802 MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= mask(48):
            raise ValueError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddr":
        return cls(_parse_mac_value(text))

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddr":
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def packed(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == mask(48)

    @property
    def is_multicast(self) -> bool:
        """True for group addresses (I/G bit set), including broadcast."""
        return bool((self.value >> 40) & 0x01)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.packed)


BROADCAST_MAC = MacAddr(mask(48))


@dataclass(frozen=True, order=True)
class Ipv4Addr:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= mask(32):
            raise ValueError(f"IPv4 address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Addr":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        try:
            octets = [int(p, 10) for p in parts]
        except ValueError as exc:
            raise ValueError(f"malformed IPv4 address: {text!r}") from exc
        if any(not 0 <= o <= 255 for o in octets):
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv4Addr":
        if len(data) != 4:
            raise ValueError(f"IPv4 address needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def packed(self) -> bytes:
        return self.value.to_bytes(4, "big")

    def in_prefix(self, network: "Ipv4Addr", prefix_len: int) -> bool:
        """True if this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length {prefix_len}")
        if prefix_len == 0:
            return True
        shift = 32 - prefix_len
        return (self.value >> shift) == (network.value >> shift)

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.packed)
