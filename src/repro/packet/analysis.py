"""Capture analysis: what a measurement researcher does with a pcap.

OSNT's output is a timestamped capture; these helpers turn one into the
numbers papers report — rate over time, inter-arrival statistics, size
and flow breakdowns.  They operate on
:class:`~repro.packet.pcap.PcapRecord` sequences, so they work equally
on OSNT monitor output and on files read back with
:func:`~repro.packet.pcap.read_pcap`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.cores.header_parser import parse_headers
from repro.packet.pcap import PcapRecord


@dataclass(frozen=True)
class CaptureSummary:
    """Headline statistics of one capture."""

    packets: int
    bytes: int
    duration_ns: int
    mean_rate_bps: float
    mean_size: float
    min_size: int
    max_size: int


def summarize(records: Sequence[PcapRecord]) -> CaptureSummary:
    """The `capinfos`-style one-liner."""
    if not records:
        return CaptureSummary(0, 0, 0, 0.0, 0.0, 0, 0)
    sizes = [r.original_length for r in records]
    total = sum(sizes)
    duration = records[-1].timestamp_ns - records[0].timestamp_ns
    # Rate convention: bytes of all-but-last over the span (each interval
    # carries the packet that opened it).
    rate = (total - sizes[-1]) * 8 / (duration * 1e-9) if duration > 0 else 0.0
    return CaptureSummary(
        packets=len(records),
        bytes=total,
        duration_ns=duration,
        mean_rate_bps=rate,
        mean_size=total / len(records),
        min_size=min(sizes),
        max_size=max(sizes),
    )


def interarrival_ns(records: Sequence[PcapRecord]) -> list[int]:
    """Gaps between consecutive arrivals."""
    return [
        b.timestamp_ns - a.timestamp_ns for a, b in zip(records, records[1:])
    ]


@dataclass(frozen=True)
class InterarrivalStats:
    count: int
    min_ns: int
    mean_ns: float
    max_ns: int
    stddev_ns: float


def interarrival_stats(records: Sequence[PcapRecord]) -> InterarrivalStats:
    gaps = interarrival_ns(records)
    if not gaps:
        return InterarrivalStats(0, 0, 0.0, 0, 0.0)
    mean = sum(gaps) / len(gaps)
    variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    return InterarrivalStats(
        count=len(gaps),
        min_ns=min(gaps),
        mean_ns=mean,
        max_ns=max(gaps),
        stddev_ns=variance**0.5,
    )


def rate_timeseries(
    records: Sequence[PcapRecord], bin_ns: int
) -> list[tuple[int, float]]:
    """``[(bin_start_ns, bits_per_second)]`` — throughput over time."""
    if bin_ns <= 0:
        raise ValueError("bin width must be positive")
    if not records:
        return []
    start = records[0].timestamp_ns
    bins: Counter[int] = Counter()
    for record in records:
        bins[(record.timestamp_ns - start) // bin_ns] += record.original_length
    last_bin = max(bins)
    return [
        (start + i * bin_ns, bins.get(i, 0) * 8 / (bin_ns * 1e-9))
        for i in range(last_bin + 1)
    ]


def size_histogram(
    records: Sequence[PcapRecord],
    edges: Sequence[int] = (64, 128, 256, 512, 1024, 1519),
) -> list[tuple[str, int]]:
    """RMON-style frame-size buckets (upper edges inclusive)."""
    if list(edges) != sorted(edges) or not edges:
        raise ValueError("edges must be ascending and non-empty")
    counts = [0] * (len(edges) + 1)
    for record in records:
        size = record.original_length
        for i, edge in enumerate(edges):
            if size <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = []
    low = 0
    for edge in edges:
        labels.append(f"{low}-{edge}")
        low = edge + 1
    labels.append(f">{edges[-1]}")
    return list(zip(labels, counts))


@dataclass(frozen=True)
class FlowKey:
    """The classic 5-tuple (missing layers zeroed)."""

    ip_src: int
    ip_dst: int
    proto: int
    sport: int
    dport: int


def flow_breakdown(
    records: Iterable[PcapRecord], top: Optional[int] = None
) -> list[tuple[FlowKey, int, int]]:
    """``[(flow, packets, bytes)]`` sorted by bytes, descending."""
    packets: Counter[FlowKey] = Counter()
    volume: Counter[FlowKey] = Counter()
    for record in records:
        parsed = parse_headers(record.data[:64])
        key = FlowKey(
            ip_src=parsed.ip_src.value if parsed.ip_src else 0,
            ip_dst=parsed.ip_dst.value if parsed.ip_dst else 0,
            proto=parsed.ip_proto or 0,
            sport=parsed.l4_src_port or 0,
            dport=parsed.l4_dst_port or 0,
        )
        packets[key] += 1
        volume[key] += record.original_length
    flows = sorted(
        ((key, packets[key], volume[key]) for key in packets),
        key=lambda item: item[2],
        reverse=True,
    )
    return flows[:top] if top is not None else flows
