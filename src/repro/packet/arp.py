"""ARP for IPv4-over-Ethernet (RFC 826).

The reference router's software slow path answers ARP requests for the
router's interfaces and resolves next hops; both sides use this encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.packet.addresses import Ipv4Addr, MacAddr

ARP_OP_REQUEST = 1
ARP_OP_REPLY = 2

HTYPE_ETHERNET = 1
PTYPE_IPV4 = 0x0800
PACKET_SIZE = 28


@dataclass
class ArpPacket:
    """An Ethernet/IPv4 ARP packet."""

    op: int
    sender_mac: MacAddr
    sender_ip: Ipv4Addr
    target_mac: MacAddr
    target_ip: Ipv4Addr

    def __post_init__(self) -> None:
        if self.op not in (ARP_OP_REQUEST, ARP_OP_REPLY):
            raise ValueError(f"unsupported ARP op {self.op}")

    def pack(self) -> bytes:
        return (
            HTYPE_ETHERNET.to_bytes(2, "big")
            + PTYPE_IPV4.to_bytes(2, "big")
            + bytes([6, 4])
            + self.op.to_bytes(2, "big")
            + self.sender_mac.packed
            + self.sender_ip.packed
            + self.target_mac.packed
            + self.target_ip.packed
        )

    @classmethod
    def parse(cls, data: bytes) -> "ArpPacket":
        if len(data) < PACKET_SIZE:
            raise ValueError(f"too short for ARP: {len(data)}B")
        htype = int.from_bytes(data[0:2], "big")
        ptype = int.from_bytes(data[2:4], "big")
        hlen, plen = data[4], data[5]
        if (htype, ptype, hlen, plen) != (HTYPE_ETHERNET, PTYPE_IPV4, 6, 4):
            raise ValueError(
                f"unsupported ARP encoding htype={htype} ptype={ptype:#x} "
                f"hlen={hlen} plen={plen}"
            )
        return cls(
            op=int.from_bytes(data[6:8], "big"),
            sender_mac=MacAddr.from_bytes(data[8:14]),
            sender_ip=Ipv4Addr.from_bytes(data[14:18]),
            target_mac=MacAddr.from_bytes(data[18:24]),
            target_ip=Ipv4Addr.from_bytes(data[24:28]),
        )
