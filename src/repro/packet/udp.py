"""UDP (RFC 768) with full pseudo-header checksum support."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet.addresses import Ipv4Addr
from repro.packet.checksum import transport_checksum
from repro.packet.ipv4 import IPPROTO_UDP

HEADER_SIZE = 8


@dataclass
class UdpDatagram:
    """A UDP datagram.  Checksums need the IPv4 endpoints, so packing with
    a valid checksum is ``pack(src_ip, dst_ip)``; ``pack()`` emits zero
    (checksum disabled), which is legal for UDP over IPv4."""

    src_port: int
    dst_port: int
    payload: bytes = field(default=b"")

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")

    @property
    def length(self) -> int:
        return HEADER_SIZE + len(self.payload)

    def pack(self, src_ip: Ipv4Addr | None = None, dst_ip: Ipv4Addr | None = None) -> bytes:
        header = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
        )
        if src_ip is None or dst_ip is None:
            return header + b"\x00\x00" + self.payload
        checksum = transport_checksum(
            src_ip.packed, dst_ip.packed, IPPROTO_UDP, header + b"\x00\x00" + self.payload
        )
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return header + checksum.to_bytes(2, "big") + self.payload

    @classmethod
    def parse(cls, data: bytes) -> "UdpDatagram":
        if len(data) < HEADER_SIZE:
            raise ValueError(f"too short for UDP: {len(data)}B")
        length = int.from_bytes(data[4:6], "big")
        if length < HEADER_SIZE or length > len(data):
            raise ValueError(f"bad UDP length {length} (have {len(data)}B)")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            payload=data[HEADER_SIZE:length],
        )
