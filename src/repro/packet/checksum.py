"""The Internet checksum (RFC 1071) and its incremental update (RFC 1624).

The reference router updates the IPv4 header checksum *incrementally* when
it decrements TTL — recomputing over the full header would cost another
pipeline stage.  ``incremental_update16`` implements RFC 1624 equation 3,
the same arithmetic as the Verilog.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data`` (odd length padded)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries; two folds suffice for any length input.
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (including its checksum field) sums to zero."""
    return internet_checksum(data) == 0


def incremental_update16(checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 incremental checksum update for one 16-bit field change.

    ``HC' = ~(~HC + ~m + m')`` where ``m``/``m'`` are the old/new field
    values.  Used by the router for the TTL/protocol word after TTL
    decrement.
    """
    if not 0 <= checksum <= 0xFFFF:
        raise ValueError(f"checksum out of range: {checksum:#x}")
    if not 0 <= old_word <= 0xFFFF or not 0 <= new_word <= 0xFFFF:
        raise ValueError("field words must be 16-bit")
    total = (~checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header_checksum_words(
    src: bytes, dst: bytes, protocol: int, length: int
) -> int:
    """Partial sum of the TCP/UDP pseudo header (not folded or inverted)."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("pseudo header needs 4-byte IPv4 addresses")
    total = 0
    for addr in (src, dst):
        total += (addr[0] << 8 | addr[1]) + (addr[2] << 8 | addr[3])
    total += protocol
    total += length
    return total


def transport_checksum(
    src: bytes, dst: bytes, protocol: int, segment: bytes
) -> int:
    """Full TCP/UDP checksum including the IPv4 pseudo header."""
    data = segment if len(segment) % 2 == 0 else segment + b"\x00"
    total = pseudo_header_checksum_words(src, dst, protocol, len(segment))
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF
