"""IEEE 802.1Q VLAN tagging."""

from __future__ import annotations

from dataclasses import dataclass

from repro.packet.ethernet import ETHERTYPE_VLAN, EthernetFrame


@dataclass(frozen=True)
class VlanTag:
    """The 802.1Q TCI fields: priority (PCP), drop-eligible (DEI), VID."""

    vid: int
    pcp: int = 0
    dei: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.vid <= 0xFFF:
            raise ValueError(f"VLAN ID out of range: {self.vid}")
        if not 0 <= self.pcp <= 7:
            raise ValueError(f"PCP out of range: {self.pcp}")

    @property
    def tci(self) -> int:
        return (self.pcp << 13) | (int(self.dei) << 12) | self.vid

    @classmethod
    def from_tci(cls, tci: int) -> "VlanTag":
        return cls(vid=tci & 0xFFF, pcp=(tci >> 13) & 0x7, dei=bool((tci >> 12) & 1))


def tag_frame(frame: EthernetFrame, tag: VlanTag) -> EthernetFrame:
    """Insert an 802.1Q tag, pushing the original ethertype inward."""
    inner = frame.ethertype.to_bytes(2, "big") + frame.payload
    return EthernetFrame(
        dst=frame.dst,
        src=frame.src,
        ethertype=ETHERTYPE_VLAN,
        payload=tag.tci.to_bytes(2, "big") + inner,
    )


def untag_frame(frame: EthernetFrame) -> tuple[EthernetFrame, VlanTag]:
    """Strip the outer 802.1Q tag; raises if the frame is untagged."""
    if frame.ethertype != ETHERTYPE_VLAN:
        raise ValueError(f"frame is not VLAN-tagged (ethertype {frame.ethertype:#x})")
    if len(frame.payload) < 4:
        raise ValueError("truncated VLAN tag")
    tag = VlanTag.from_tci(int.from_bytes(frame.payload[0:2], "big"))
    inner_type = int.from_bytes(frame.payload[2:4], "big")
    return (
        EthernetFrame(frame.dst, frame.src, inner_type, frame.payload[4:]),
        tag,
    )
