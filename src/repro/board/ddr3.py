"""DDR3 SDRAM model with bank/row timing.

§2: "DRAM (DDR3 SoDIMM, running at 1866MT/s)".  Unlike QDR SRAM, DRAM
access cost depends on *locality*: a access to the currently open row of
a bank (row hit) needs only CAS latency, while a different row (row
miss/conflict) pays precharge + activate + CAS.  Sequential packet-buffer
writes are nearly all row hits; random flow-table lookups are nearly all
misses — the asymmetry experiment E9 quantifies.

The SUME SoDIMM: 64-bit data bus, DDR3-1866 (933 MHz clock, 1866 MT/s),
8 banks per rank, 8 KiB rows.  Timing parameters are the JEDEC -13-13-13
grade expressed in nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.eventsim import EventSimulator


@dataclass(frozen=True)
class Ddr3Timing:
    """The subset of JEDEC timing that dominates access cost."""

    tCL_ns: float = 13.91  # CAS latency (13 cycles @ 933MHz)
    tRCD_ns: float = 13.91  # RAS-to-CAS (activate to column)
    tRP_ns: float = 13.91  # row precharge
    tRFC_ns: float = 260.0  # refresh cycle (4Gb parts)
    tREFI_ns: float = 7800.0  # mean refresh interval
    burst_len: int = 8  # BL8 — 8 beats per column access


@dataclass(frozen=True)
class Ddr3Config:
    name: str
    capacity_bytes: int
    data_bits: int
    transfer_rate_mtps: float  # mega-transfers per second
    banks: int
    row_bytes: int
    timing: Ddr3Timing

    @property
    def burst_bytes(self) -> int:
        return self.data_bits // 8 * self.timing.burst_len

    @property
    def burst_transfer_ns(self) -> float:
        """Data-bus occupancy of one BL8 burst."""
        return self.timing.burst_len / (self.transfer_rate_mtps * 1e6) * 1e9

    @property
    def peak_bandwidth_bps(self) -> float:
        return self.data_bits * self.transfer_rate_mtps * 1e6


SUME_DDR3 = Ddr3Config(
    name="ddr3_sodimm_4g",
    capacity_bytes=4 * 1024**3,
    data_bits=64,
    transfer_rate_mtps=1866.0,
    banks=8,
    row_bytes=8192,
    timing=Ddr3Timing(),
)


class Ddr3Model:
    """Open-page DDR3 controller + device model.

    Tracks the open row per bank and a single shared data bus.  Each
    access is one BL8 burst (64 bytes on the SUME DIMM); larger transfers
    are split by the caller (the DMA and packet-buffer models do this).
    Refresh steals the device for tRFC every tREFI, as real controllers
    must.
    """

    def __init__(self, sim: EventSimulator, config: Ddr3Config = SUME_DDR3):
        self.sim = sim
        self.config = config
        self._open_row: dict[int, int] = {}  # bank -> row
        self._bus_free_ns = 0.0
        self._next_refresh_ns = config.timing.tREFI_ns
        self._mem: dict[int, bytes] = {}
        self.row_hits = 0
        self.row_misses = 0
        self.refreshes = 0
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def _locate(self, addr: int) -> tuple[int, int]:
        """Map a byte address to (bank, row) with row-interleaved banks."""
        if not 0 <= addr < self.config.capacity_bytes:
            raise ValueError(f"address {addr:#x} outside DDR3 capacity")
        row_index = addr // self.config.row_bytes
        bank = row_index % self.config.banks
        row = row_index // self.config.banks
        return bank, row

    def _maybe_refresh(self, at_ns: float) -> float:
        """Insert refresh stalls that became due before ``at_ns``."""
        timing = self.config.timing
        while self._next_refresh_ns <= at_ns:
            at_ns = max(at_ns, self._next_refresh_ns) + timing.tRFC_ns
            self._next_refresh_ns += timing.tREFI_ns
            self.refreshes += 1
            self._open_row.clear()  # refresh closes all rows
        return at_ns

    def _access_latency(self, addr: int) -> tuple[float, float]:
        """Common row/bank/bus bookkeeping; returns (start, complete) times.

        Row hits pipeline: the CAS latency overlaps with earlier
        transfers, so back-to-back hits occupy the data bus for only the
        burst time (this is what lets sequential traffic approach the
        interface's peak bandwidth).  A row miss stalls the command
        stream for precharge + activate before its column access.
        """
        timing = self.config.timing
        bank, row = self._locate(addr)
        start = max(self.sim.now_ns, self._bus_free_ns)
        start = self._maybe_refresh(start)
        if self._open_row.get(bank) == row:
            self.row_hits += 1
            data_start = start
        else:
            self.row_misses += 1
            penalty = timing.tRP_ns if bank in self._open_row else 0.0
            data_start = start + penalty + timing.tRCD_ns
            self._open_row[bank] = row
        complete = data_start + timing.tCL_ns + self.config.burst_transfer_ns
        self._bus_free_ns = data_start + self.config.burst_transfer_ns
        return start, complete

    # ------------------------------------------------------------------
    def read(self, addr: int, callback: Callable[[bytes], None]) -> float:
        """Read one burst; ``callback(data)`` fires at completion."""
        _, complete = self._access_latency(addr)
        self.reads += 1
        burst = addr - (addr % self.config.burst_bytes)
        data = self._mem.get(burst, b"\x00" * self.config.burst_bytes)
        self.sim.schedule_at(complete, lambda: callback(data))
        return complete

    def write(self, addr: int, data: bytes) -> float:
        """Write one burst; returns completion time."""
        if len(data) != self.config.burst_bytes:
            raise ValueError(
                f"DDR3 writes whole {self.config.burst_bytes}B bursts, "
                f"got {len(data)}B"
            )
        _, complete = self._access_latency(addr)
        self.writes += 1
        burst = addr - (addr % self.config.burst_bytes)
        self._mem[burst] = data
        return complete

    def read_sync(self, addr: int) -> bytes:
        burst = addr - (addr % self.config.burst_bytes)
        return self._mem.get(burst, b"\x00" * self.config.burst_bytes)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
