"""High-speed serial interface subsystem.

§2: "A high-speed serial interfaces subsystem, composed of 30 serial
links running at up to 13.1Gb/s, enables 10Gb/s, 40Gb/s and 100Gb/s
applications."  The model tracks link allocation (SFP+, PCIe, FMC/QTH
expansion), per-link line rate limits, and encoding overhead, so a
project that over-commits the transceivers fails at build time the way
a real pin-planning pass would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.units import GBPS

#: GTH transceiver ceiling on the -2 speed grade part used by SUME (§2).
MAX_LANE_RATE_BPS = 13.1 * GBPS


@dataclass
class SerialLink:
    """One GTH transceiver lane."""

    index: int
    group: str  # "sfp", "pcie", "qth", "sata"
    max_rate_bps: float = MAX_LANE_RATE_BPS
    allocated_to: Optional[str] = None
    line_rate_bps: float = 0.0

    @property
    def in_use(self) -> bool:
        return self.allocated_to is not None

    def allocate(self, user: str, line_rate_bps: float) -> None:
        if self.in_use:
            raise RuntimeError(
                f"serial lane {self.index} already allocated to {self.allocated_to}"
            )
        if line_rate_bps > self.max_rate_bps:
            raise ValueError(
                f"lane {self.index} cannot run at {line_rate_bps / GBPS:.2f} Gb/s "
                f"(max {self.max_rate_bps / GBPS:.2f})"
            )
        self.allocated_to = user
        self.line_rate_bps = line_rate_bps

    def release(self) -> None:
        self.allocated_to = None
        self.line_rate_bps = 0.0


@dataclass(frozen=True)
class Encoding:
    """Line-coding overhead: usable payload fraction of the raw lane rate."""

    name: str
    payload_fraction: float

    def payload_rate(self, lane_rate_bps: float) -> float:
        return lane_rate_bps * self.payload_fraction


ENC_8B10B = Encoding("8b/10b", 0.8)
ENC_64B66B = Encoding("64b/66b", 64 / 66)
ENC_128B130B = Encoding("128b/130b", 128 / 130)


class SerialLinkBank:
    """The SUME transceiver pool: 30 GTH lanes and their standard groupings.

    Lane budget (matching the board): 4 lanes to SFP+ cages, 8 to the PCIe
    Gen3 edge connector, 2 to SATA, and 16 to the expansion connectors
    (FMC/QTH) for 40G/100G and proprietary interfaces.
    """

    GROUPS = {"sfp": 4, "pcie": 8, "sata": 2, "qth": 16}

    def __init__(self):
        self.links: list[SerialLink] = []
        index = 0
        for group, count in self.GROUPS.items():
            for _ in range(count):
                self.links.append(SerialLink(index=index, group=group))
                index += 1

    def __len__(self) -> int:
        return len(self.links)

    def available(self, group: Optional[str] = None) -> list[SerialLink]:
        return [
            link
            for link in self.links
            if not link.in_use and (group is None or link.group == group)
        ]

    def allocate(
        self, user: str, lanes: int, line_rate_bps: float, group: str = "qth"
    ) -> list[SerialLink]:
        """Claim ``lanes`` free lanes from ``group`` for one interface."""
        free = self.available(group)
        if len(free) < lanes:
            raise RuntimeError(
                f"need {lanes} free {group} lanes for {user}, only {len(free)} left"
            )
        chosen = free[:lanes]
        for link in chosen:
            link.allocate(user, line_rate_bps)
        return chosen

    def aggregate_capacity_bps(self) -> float:
        """Total raw serial bandwidth of the bank (the 100G headline, C1)."""
        return sum(link.max_rate_bps for link in self.links)

    def inventory(self) -> dict[str, dict[str, float | int]]:
        out: dict[str, dict[str, float | int]] = {}
        for group, count in self.GROUPS.items():
            in_use = sum(1 for l in self.links if l.group == group and l.in_use)
            out[group] = {
                "lanes": count,
                "in_use": in_use,
                "max_rate_gbps": MAX_LANE_RATE_BPS / GBPS,
            }
        return out


@dataclass
class SfpCage:
    """One SFP+ cage: a serial lane presented as a standard interface.

    10GBASE-R runs the lane at 10.3125 Gb/s with 64b/66b encoding,
    yielding exactly 10 Gb/s of MAC-layer bandwidth — the arithmetic
    behind "enables 10Gb/s ... applications".
    """

    index: int
    link: SerialLink
    encoding: Encoding = field(default=ENC_64B66B)

    LANE_RATE_10GBASER = 10.3125 * GBPS

    def bring_up(self) -> float:
        """Allocate the lane for 10GBASE-R; returns MAC-layer rate (b/s)."""
        self.link.allocate(f"sfp{self.index}", self.LANE_RATE_10GBASER)
        return self.encoding.payload_rate(self.LANE_RATE_10GBASER)
