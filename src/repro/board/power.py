"""Power rails and PMBus-style instrumentation.

§2: "Special attention was paid to power instrumentation [3]" — the SUME
board exposes per-rail voltage/current telemetry.  The model assigns each
rail a static (idle) power and an activity-proportional dynamic power;
subsystems report an activity factor in [0, 1] and experiment E8 sweeps
offered load against total board power.

Rail set and idle budget follow the SUME IEEE Micro paper's description
of the board's supplies (FPGA core, transceivers, memories, 3.3V misc).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PowerRail:
    """One supply rail with a linear activity→power model."""

    name: str
    voltage_v: float
    idle_w: float
    max_dynamic_w: float
    activity: float = 0.0
    subsystem: str = ""

    def set_activity(self, activity: float) -> None:
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0,1], got {activity}")
        self.activity = activity

    @property
    def power_w(self) -> float:
        return self.idle_w + self.activity * self.max_dynamic_w

    @property
    def current_a(self) -> float:
        return self.power_w / self.voltage_v


def SUME_RAILS() -> list[PowerRail]:
    """A fresh rail set for one board instance."""
    return [
        PowerRail("vccint", 1.0, 8.0, 14.0, subsystem="fpga_core"),
        PowerRail("vccbram", 1.0, 0.6, 1.4, subsystem="fpga_bram"),
        PowerRail("mgtavcc", 1.0, 2.0, 4.0, subsystem="serial"),
        PowerRail("mgtavtt", 1.2, 1.5, 3.0, subsystem="serial"),
        PowerRail("vcc1v5_ddr3", 1.5, 1.0, 4.5, subsystem="ddr3"),
        PowerRail("vcc1v8_qdr", 1.8, 0.8, 2.2, subsystem="qdr"),
        PowerRail("vcc3v3", 3.3, 2.5, 1.5, subsystem="misc"),
    ]


class PowerModel:
    """Board power telemetry: per-rail readings plus subsystem mapping."""

    def __init__(self, rails: list[PowerRail] | None = None):
        self.rails = rails if rails is not None else SUME_RAILS()
        self._by_name = {rail.name: rail for rail in self.rails}

    def rail(self, name: str) -> PowerRail:
        if name not in self._by_name:
            raise KeyError(f"no rail {name!r}; have {sorted(self._by_name)}")
        return self._by_name[name]

    def set_subsystem_activity(self, subsystem: str, activity: float) -> None:
        """Drive every rail belonging to ``subsystem``."""
        matched = False
        for rail in self.rails:
            if rail.subsystem == subsystem:
                rail.set_activity(activity)
                matched = True
        if not matched:
            raise KeyError(f"no rails for subsystem {subsystem!r}")

    @property
    def total_power_w(self) -> float:
        return sum(rail.power_w for rail in self.rails)

    def telemetry(self) -> list[tuple[str, float, float, float]]:
        """PMBus-style readout: ``[(rail, volts, amps, watts)]``."""
        return [
            (rail.name, rail.voltage_v, rail.current_a, rail.power_w)
            for rail in self.rails
        ]
