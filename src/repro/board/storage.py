"""Storage subsystem: microSD card and SATA disks.

§2: "The Storage subsystem of the design can host both a MicroSD card
and external disks through two SATA interfaces, thus enabling a complete
standalone operation of the board."  The models are simple block devices
with realistic latency/throughput envelopes; the acceptance-test project
exercises them, and standalone operation (booting the soft core from
microSD) uses the card model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.eventsim import EventSimulator
from repro.utils.units import MIB


@dataclass(frozen=True)
class BlockDeviceSpec:
    name: str
    capacity_bytes: int
    block_bytes: int
    read_bw_bps: float
    write_bw_bps: float
    access_latency_ns: float


MICROSD_CARD = BlockDeviceSpec(
    name="microsd_uhs1",
    capacity_bytes=32 * 1024**3,
    block_bytes=512,
    read_bw_bps=80 * MIB * 8,
    write_bw_bps=20 * MIB * 8,
    access_latency_ns=400_000.0,  # 0.4 ms — flash controller latency
)

SATA_SSD = BlockDeviceSpec(
    name="sata3_ssd",
    capacity_bytes=256 * 1024**3,
    block_bytes=512,
    read_bw_bps=550 * MIB * 8,
    write_bw_bps=500 * MIB * 8,
    access_latency_ns=60_000.0,  # 60 µs
)


class BlockDevice:
    """An event-driven block device with a single command queue."""

    def __init__(self, sim: EventSimulator, spec: BlockDeviceSpec):
        self.sim = sim
        self.spec = spec
        self._blocks: dict[int, bytes] = {}
        self._free_ns = 0.0
        self.reads = 0
        self.writes = 0

    def _check(self, lba: int, data_len: int) -> None:
        if data_len % self.spec.block_bytes:
            raise ValueError(
                f"transfers must be whole {self.spec.block_bytes}B blocks"
            )
        last_byte = lba * self.spec.block_bytes + data_len
        if lba < 0 or last_byte > self.spec.capacity_bytes:
            raise ValueError(f"LBA {lba} + {data_len}B beyond device capacity")

    def _serialize(self, data_len: int, bandwidth_bps: float) -> float:
        start = max(self.sim.now_ns, self._free_ns) + self.spec.access_latency_ns
        transfer = data_len * 8 / bandwidth_bps * 1e9
        self._free_ns = start + transfer
        return self._free_ns

    def write(self, lba: int, data: bytes) -> float:
        """Write whole blocks starting at ``lba``; returns completion time."""
        self._check(lba, len(data))
        self.writes += 1
        for i in range(0, len(data), self.spec.block_bytes):
            self._blocks[lba + i // self.spec.block_bytes] = data[
                i : i + self.spec.block_bytes
            ]
        return self._serialize(len(data), self.spec.write_bw_bps)

    def read(self, lba: int, length: int, callback: Callable[[bytes], None]) -> float:
        """Read ``length`` bytes from ``lba``; completion via callback."""
        self._check(lba, length)
        self.reads += 1
        blocks = []
        for i in range(length // self.spec.block_bytes):
            blocks.append(
                self._blocks.get(lba + i, b"\x00" * self.spec.block_bytes)
            )
        data = b"".join(blocks)
        done = self._serialize(length, self.spec.read_bw_bps)
        self.sim.schedule_at(done, lambda: callback(data))
        return done


class StorageSubsystem:
    """The SUME storage complement: one microSD slot, two SATA ports."""

    def __init__(self, sim: EventSimulator):
        self.microsd = BlockDevice(sim, MICROSD_CARD)
        self.sata = (BlockDevice(sim, SATA_SSD), BlockDevice(sim, SATA_SSD))

    def devices(self) -> list[BlockDevice]:
        return [self.microsd, *self.sata]

    def inventory(self) -> list[tuple[str, int, float]]:
        """``[(name, capacity, read_bw_bps)]`` for the board self-test."""
        return [
            (dev.spec.name, dev.spec.capacity_bytes, dev.spec.read_bw_bps)
            for dev in self.devices()
        ]
