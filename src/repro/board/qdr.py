"""QDRII+ SRAM model.

§2: "The memory subsystem combines both SRAM (QDRII+, running at 500MHz)
and DRAM ...  These memory devices can be used for different purposes:
from flow tables and off-chip packet buffering ..."

QDR ("quad data rate") SRAM has *separate* read and write ports, each
transferring on both clock edges, and — crucially for lookup tables — a
fixed, short read latency with no row/bank structure: every access costs
the same.  That uniformity is exactly why reference designs put flow
tables in QDR and bulk packet buffers in DDR3, the trade experiment E9
measures.

SUME carries three 36-bit × 9 MB QDRII+ devices clocked at 500 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.eventsim import EventSimulator


@dataclass(frozen=True)
class QdrConfig:
    name: str
    capacity_bytes: int
    clock_mhz: float
    data_bits: int  # per port, per edge
    read_latency_cycles: float  # fixed pipeline latency

    @property
    def clock_period_ns(self) -> float:
        return 1e3 / self.clock_mhz

    @property
    def word_bytes(self) -> int:
        # A burst-of-two QDRII+ access moves 2 edges × data_bits.
        return 2 * self.data_bits // 8

    @property
    def port_bandwidth_bps(self) -> float:
        """Per-direction bandwidth: DDR transfers on one port."""
        return self.data_bits * 2 * self.clock_mhz * 1e6


#: Cypress CY7C25652KV18-class part, as fitted to SUME (3×).
SUME_QDR = QdrConfig(
    name="qdrii+_9mb",
    capacity_bytes=9 * 1024 * 1024,
    clock_mhz=500.0,
    data_bits=36,
    read_latency_cycles=2.5,
)


class QdrIIModel:
    """Event-driven QDRII+ device: one read and one write issue per cycle.

    Reads complete after the fixed pipeline latency; writes are posted.
    Issue-rate limiting is modelled by tracking the next free slot of
    each port — a request stream faster than one per cycle per port
    queues behind it, which is what bounds lookup throughput.
    """

    def __init__(self, sim: EventSimulator, config: QdrConfig = SUME_QDR):
        self.sim = sim
        self.config = config
        self._mem: dict[int, bytes] = {}
        self._read_port_free_ns = 0.0
        self._write_port_free_ns = 0.0
        self.reads = 0
        self.writes = 0

    def _issue(self, port_free_ns: float) -> tuple[float, float]:
        """Return (issue_time, next_free) respecting the port's cadence."""
        issue = max(self.sim.now_ns, port_free_ns)
        return issue, issue + self.config.clock_period_ns

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.config.capacity_bytes:
            raise ValueError(
                f"address {addr:#x} outside {self.config.capacity_bytes:#x}B QDR"
            )
        if addr % self.config.word_bytes:
            raise ValueError(
                f"address {addr:#x} not aligned to {self.config.word_bytes}B word"
            )

    def write(self, addr: int, data: bytes) -> None:
        """Posted write of one word."""
        self._check_addr(addr)
        if len(data) != self.config.word_bytes:
            raise ValueError(
                f"QDR writes whole {self.config.word_bytes}B words, got {len(data)}B"
            )
        _, self._write_port_free_ns = self._issue(self._write_port_free_ns)
        self.writes += 1
        self._mem[addr] = data

    def read(self, addr: int, callback: Callable[[bytes], None]) -> float:
        """Issue a read; ``callback(data)`` fires at completion.

        Returns the completion time (ns) for convenience.
        """
        self._check_addr(addr)
        issue, self._read_port_free_ns = self._issue(self._read_port_free_ns)
        self.reads += 1
        latency = self.config.read_latency_cycles * self.config.clock_period_ns
        done = issue + latency
        data = self._mem.get(addr, b"\x00" * self.config.word_bytes)
        self.sim.schedule_at(done, lambda: callback(data))
        return done

    def read_sync(self, addr: int) -> bytes:
        """Zero-time peek for software/tests (no port accounting)."""
        self._check_addr(addr)
        return self._mem.get(addr, b"\x00" * self.config.word_bytes)
