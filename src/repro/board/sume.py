"""The NetFPGA SUME board: the integration of every §2 subsystem.

:class:`NetFpgaSume` instantiates the FPGA capacity model, the serial
link bank with four SFP+ cages brought up as 10GBASE-R MACs, three
QDRII+ devices, two DDR3 SoDIMMs, the PCIe Gen3 DMA complex, storage and
power telemetry — all sharing one :class:`EventSimulator` clock.  The
``inventory()`` self-test regenerates the paper's Figure 1 / §2 content
as a table (experiment E1).

:class:`BoardSpec` additionally catalogues the three platforms the
project supports (§1): SUME, NetFPGA-10G and NetFPGA-1G-CML.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.board.clocks import SUME_CLOCKS, ClockTree
from repro.board.ddr3 import Ddr3Model, SUME_DDR3
from repro.board.fpga import (
    FpgaDevice,
    KINTEX7_325T,
    VIRTEX5_TX240T,
    VIRTEX7_690T,
)
from repro.board.mac import EthernetMacModel
from repro.board.pcie import (
    DescriptorRing,
    DmaEngine,
    HostMemory,
    PCIE_GEN3_X8,
    PcieLink,
)
from repro.board.power import PowerModel
from repro.board.qdr import QdrIIModel, SUME_QDR
from repro.board.serial import SerialLinkBank, SfpCage
from repro.board.storage import StorageSubsystem
from repro.core.eventsim import EventSimulator
from repro.utils.units import GBPS, format_rate, format_size


@dataclass(frozen=True)
class BoardSpec:
    """Catalogue entry for one NetFPGA platform (§1 of the paper)."""

    name: str
    fpga: FpgaDevice
    phys_ports: int
    port_rate_bps: float
    max_io_bps: float
    year: int
    notes: str


NETFPGA_SUME = BoardSpec(
    name="NetFPGA SUME",
    fpga=VIRTEX7_690T,
    phys_ports=4,
    port_rate_bps=10 * GBPS,
    max_io_bps=100 * GBPS,
    year=2014,
    notes="PCIe Gen3 adapter; 40G/100G capable via expansion; standalone operation",
)

NETFPGA_10G = BoardSpec(
    name="NetFPGA-10G",
    fpga=VIRTEX5_TX240T,
    phys_ports=4,
    port_rate_bps=10 * GBPS,
    max_io_bps=40 * GBPS,
    year=2010,
    notes="hosts OSNT and BlueSwitch community projects",
)

NETFPGA_1G_CML = BoardSpec(
    name="NetFPGA-1G-CML",
    fpga=KINTEX7_325T,
    phys_ports=4,
    port_rate_bps=1 * GBPS,
    max_io_bps=4 * GBPS,
    year=2014,
    notes="low-bandwidth / network-security applications",
)

ALL_PLATFORMS = (NETFPGA_SUME, NETFPGA_10G, NETFPGA_1G_CML)

#: DMA ring placement in host memory (arbitrary but fixed addresses).
_TX_RING_BASE = 0x0010_0000
_RX_RING_BASE = 0x0020_0000
_RING_ENTRIES = 1024


class NetFpgaSume:
    """A powered-up SUME board on a shared event-driven clock."""

    NUM_SFP = 4
    NUM_QDR = 3
    NUM_DDR3 = 2

    def __init__(self, sim: EventSimulator | None = None):
        self.sim = sim if sim is not None else EventSimulator()
        self.spec = NETFPGA_SUME
        self.clocks: ClockTree = SUME_CLOCKS
        self.serial = SerialLinkBank()
        self.power = PowerModel()
        self.storage = StorageSubsystem(self.sim)

        # Bring up the four SFP+ cages as 10GBASE-R MACs.
        self.sfp_cages: list[SfpCage] = []
        self.macs: list[EthernetMacModel] = []
        for i in range(self.NUM_SFP):
            lane = self.serial.available("sfp")[0]
            cage = SfpCage(index=i, link=lane)
            mac_rate = cage.bring_up()
            self.sfp_cages.append(cage)
            self.macs.append(
                EthernetMacModel(self.sim, f"nf{i}", rate_bps=mac_rate)
            )

        self.qdr = [QdrIIModel(self.sim, SUME_QDR) for _ in range(self.NUM_QDR)]
        self.ddr3 = [Ddr3Model(self.sim, SUME_DDR3) for _ in range(self.NUM_DDR3)]

        # PCIe complex: lanes, link, host memory, rings, DMA engine.
        self.serial.allocate("pcie_ep", lanes=8, line_rate_bps=8e9, group="pcie")
        self.pcie = PcieLink(self.sim, PCIE_GEN3_X8)
        self.host_memory = HostMemory()
        self.dma = DmaEngine(
            self.sim,
            self.pcie,
            self.host_memory,
            tx_ring=DescriptorRing(self.host_memory, _TX_RING_BASE, _RING_ENTRIES),
            rx_ring=DescriptorRing(self.host_memory, _RX_RING_BASE, _RING_ENTRIES),
        )
        # SATA shares the transceiver pool (§2).
        self.serial.allocate("sata", lanes=2, line_rate_bps=6e9, group="sata")

    # ------------------------------------------------------------------
    def total_memory_bytes(self) -> tuple[int, int]:
        """(SRAM bytes, DRAM bytes) fitted to the board."""
        sram = sum(q.config.capacity_bytes for q in self.qdr)
        dram = sum(d.config.capacity_bytes for d in self.ddr3)
        return sram, dram

    def inventory(self) -> list[tuple[str, str]]:
        """The E1 self-test: every §2 subsystem with its measured capacity."""
        sram, dram = self.total_memory_bytes()
        rows = [
            ("fpga", self.spec.fpga.name),
            ("serial_links", f"{len(self.serial)} lanes, "
                             f"{format_rate(self.serial.links[0].max_rate_bps)} max each"),
            ("aggregate_serial_io", format_rate(self.serial.aggregate_capacity_bps())),
            ("sfp_ports", f"{self.NUM_SFP} x {format_rate(self.macs[0].rate_bps)}"),
            ("sram_qdrii+", f"{self.NUM_QDR} x "
                            f"{format_size(self.qdr[0].config.capacity_bytes)} @ "
                            f"{self.qdr[0].config.clock_mhz:.0f} MHz"),
            ("dram_ddr3", f"{self.NUM_DDR3} x "
                          f"{format_size(self.ddr3[0].config.capacity_bytes)} @ "
                          f"{self.ddr3[0].config.transfer_rate_mtps:.0f} MT/s"),
            ("pcie", f"gen{self.pcie.config.generation} x{self.pcie.config.lanes}, "
                     f"{format_rate(self.pcie.config.effective_bandwidth_bps)} effective"),
            ("storage", ", ".join(name for name, _, _ in self.storage.inventory())),
            ("power_rails", f"{len(self.power.rails)} instrumented, "
                            f"{self.power.total_power_w:.1f} W idle"),
            ("clocks", ", ".join(self.clocks.names())),
        ]
        return rows

    def supports_100g(self) -> bool:
        """C1 check: can the free expansion lanes host a 100G interface?

        100GBASE-R (CAUI-10) needs 10 lanes at 10.3125 Gb/s; after the
        SFP+/PCIe/SATA allocations the 16 QTH lanes must cover it.
        """
        return len(self.serial.available("qth")) >= 10
