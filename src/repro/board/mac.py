"""Behavioural 10/40/100G Ethernet MAC and wire models.

These run on the :class:`~repro.core.eventsim.EventSimulator` and model
*when* frames occupy the medium: every frame pays preamble + SFD + IFG
(20 bytes) on top of its wire size, serialized at the configured line
rate.  That fixed per-frame tax is the entire story of experiment E2 —
the classic throughput-vs-frame-size curve — and also what OSNT's
timestamping measures.

FCS is generated on transmit and checked on receive; a corruption hook
supports failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.eventsim import EventSimulator
from repro.core.fifo import Fifo
from repro.packet.ethernet import FCS_SIZE, MIN_FRAME_SIZE, PREAMBLE_SFD_IFG
from repro.utils.crc import crc32_ethernet
from repro.utils.units import GBPS


@dataclass
class MacStatistics:
    """Per-direction counters, mirroring the reference MAC register block."""

    frames: int = 0
    bytes: int = 0  # wire bytes including FCS, excluding preamble/IFG
    fcs_errors: int = 0
    undersize: int = 0
    oversize: int = 0
    dropped: int = 0
    pause_frames: int = 0
    length_errors: int = 0  # runts: shorter than the 64B wire minimum

    def as_dict(self) -> dict[str, int]:
        """The register-block view: every counter by name."""
        return {
            "frames": self.frames,
            "bytes": self.bytes,
            "fcs_errors": self.fcs_errors,
            "undersize": self.undersize,
            "oversize": self.oversize,
            "dropped": self.dropped,
            "pause_frames": self.pause_frames,
            "length_errors": self.length_errors,
        }


#: IEEE 802.3x MAC control: destination, ethertype, PAUSE opcode.
PAUSE_DST = bytes.fromhex("0180c2000001")
ETHERTYPE_MAC_CONTROL = 0x8808
PAUSE_OPCODE = 0x0001
#: One pause quantum is 512 bit times.
PAUSE_QUANTUM_BITS = 512


def build_pause_frame(src_mac: bytes, quanta: int) -> bytes:
    """An 802.3x PAUSE frame (without FCS), padded to minimum size."""
    if not 0 <= quanta <= 0xFFFF:
        raise ValueError(f"pause quanta out of range: {quanta}")
    if len(src_mac) != 6:
        raise ValueError("source MAC must be 6 bytes")
    frame = (
        PAUSE_DST
        + src_mac
        + ETHERTYPE_MAC_CONTROL.to_bytes(2, "big")
        + PAUSE_OPCODE.to_bytes(2, "big")
        + quanta.to_bytes(2, "big")
    )
    return frame.ljust(MIN_FRAME_SIZE - FCS_SIZE, b"\x00")


def parse_pause_frame(frame_no_fcs: bytes) -> Optional[int]:
    """Return the pause quanta if this is an 802.3x PAUSE frame."""
    if len(frame_no_fcs) < 18:
        return None
    if frame_no_fcs[0:6] != PAUSE_DST:
        return None
    if int.from_bytes(frame_no_fcs[12:14], "big") != ETHERTYPE_MAC_CONTROL:
        return None
    if int.from_bytes(frame_no_fcs[14:16], "big") != PAUSE_OPCODE:
        return None
    return int.from_bytes(frame_no_fcs[16:18], "big")


def frame_wire_bytes(frame_no_fcs: bytes) -> int:
    """Wire size of a frame: padded to the 60B minimum, plus FCS."""
    return max(len(frame_no_fcs), MIN_FRAME_SIZE - FCS_SIZE) + FCS_SIZE


def serialization_time_ns(wire_bytes: int, rate_bps: float) -> float:
    """Time the medium is occupied by one frame (incl. preamble/SFD/IFG)."""
    if rate_bps <= 0:
        raise ValueError("line rate must be positive")
    return (wire_bytes + PREAMBLE_SFD_IFG) * 8 / rate_bps * 1e9


def effective_throughput_bps(wire_bytes: int, rate_bps: float) -> float:
    """Achievable MAC-payload rate for back-to-back frames of one size.

    This analytic form is the expected curve of experiment E2; the
    event-driven model must (and does, per the tests) agree with it.
    """
    return wire_bytes * 8 / (serialization_time_ns(wire_bytes, rate_bps) * 1e-9)


class EthernetMacModel:
    """One MAC: a tx serializer and an rx checker on a shared event clock.

    Transmit path: frames are queued (bounded, drop-tail beyond
    ``tx_queue_frames``) and serialized one at a time; each frame emerges
    on the attached :class:`Wire` when its last bit has been sent, which
    is when real MACs assert end-of-frame.  Receive path: frames arriving
    from the wire are FCS-checked, length-checked and handed to
    ``rx_callback(frame_without_fcs, timestamp_ns)``.
    """

    def __init__(
        self,
        sim: EventSimulator,
        name: str,
        rate_bps: float = 10 * GBPS,
        tx_queue_frames: int = 1024,
        max_frame_bytes: int = 9600,  # jumbo-capable, like the reference MAC
    ):
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.max_frame_bytes = max_frame_bytes
        self.tx_stats = MacStatistics()
        self.rx_stats = MacStatistics()
        self.wire: Optional["Wire"] = None
        self.rx_callback: Optional[Callable[[bytes, float], None]] = None
        #: Hook for failure injection: maps the on-wire bytes before the
        #: peer sees them (e.g. flip a bit to force an FCS error); return
        #: ``None`` to model a link flap — the frame vanishes on the wire.
        self.corrupt: Optional[Callable[[bytes], Optional[bytes]]] = None
        #: 802.3x: honour received PAUSE frames (standard default: on).
        self.flow_control = True
        self._tx_queue: Fifo[bytes] = Fifo(tx_queue_frames)
        self._tx_busy = False
        self._paused_until_ns = 0.0
        self.tx_complete_ns: float = 0.0

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------
    def transmit(self, frame_no_fcs: bytes) -> bool:
        """Queue a frame (no FCS; the MAC appends it).  False = tail-dropped."""
        if len(frame_no_fcs) + FCS_SIZE > self.max_frame_bytes:
            self.tx_stats.oversize += 1
            return False
        if not self._tx_queue.push(frame_no_fcs):
            self.tx_stats.dropped += 1
            return False
        if not self._tx_busy:
            self._start_next()
        return True

    def send_pause(self, quanta: int, src_mac: bytes = b"\x02\x00\x00\x00\x00\x00") -> None:
        """Emit an 802.3x PAUSE asking the peer to hold for ``quanta``."""
        self.transmit(build_pause_frame(src_mac, quanta))

    def _start_next(self) -> None:
        if self._tx_queue.empty:
            self._tx_busy = False
            return
        if self.sim.now_ns < self._paused_until_ns:
            # 802.3x: hold transmission; resume when the pause lapses.
            self._tx_busy = True
            self.sim.schedule_at(self._paused_until_ns, self._start_next)
            return
        self._tx_busy = True
        frame = self._tx_queue.pop()
        padded = frame.ljust(MIN_FRAME_SIZE - FCS_SIZE, b"\x00")
        on_wire = padded + crc32_ethernet(padded).to_bytes(4, "little")
        duration = serialization_time_ns(len(on_wire), self.rate_bps)

        def finish() -> None:
            self.tx_stats.frames += 1
            self.tx_stats.bytes += len(on_wire)
            self.tx_complete_ns = self.sim.now_ns
            if self.wire is not None:
                self.wire.carry(self, on_wire)
            self._start_next()

        self.sim.schedule(duration, finish)

    @property
    def tx_idle(self) -> bool:
        return not self._tx_busy and self._tx_queue.empty

    @property
    def tx_backlog(self) -> int:
        return len(self._tx_queue) + (1 if self._tx_busy else 0)

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def deliver(self, on_wire: bytes) -> None:
        """Called by the wire when a frame's last bit arrives."""
        if self.corrupt is not None:
            mangled = self.corrupt(on_wire)
            if mangled is None:
                # Link flap: the frame never made it across the medium.
                self.rx_stats.dropped += 1
                return
            on_wire = mangled
        if len(on_wire) < MIN_FRAME_SIZE:
            # Runt: counted, not silently discarded.
            self.rx_stats.undersize += 1
            self.rx_stats.length_errors += 1
            return
        if len(on_wire) > self.max_frame_bytes:
            self.rx_stats.oversize += 1
            return
        body, fcs = on_wire[:-FCS_SIZE], on_wire[-FCS_SIZE:]
        if crc32_ethernet(body).to_bytes(4, "little") != fcs:
            self.rx_stats.fcs_errors += 1
            return
        quanta = parse_pause_frame(body)
        if quanta is not None:
            # MAC control frames are consumed by the MAC, never delivered.
            self.rx_stats.pause_frames += 1
            if self.flow_control:
                pause_ns = quanta * PAUSE_QUANTUM_BITS / self.rate_bps * 1e9
                # A new PAUSE replaces the old deadline (quanta 0 resumes).
                self._paused_until_ns = self.sim.now_ns + pause_ns
            return
        self.rx_stats.frames += 1
        self.rx_stats.bytes += len(on_wire)
        if self.rx_callback is not None:
            self.rx_callback(body, self.sim.now_ns)


class Wire:
    """A full-duplex point-to-point link between two MACs.

    Propagation delay defaults to 5 ns/m of fibre × 2 m — a lab patch
    cable.  Rate mismatch between the endpoints is allowed (the receiver
    does not re-serialize), matching how test equipment snoops a link.
    """

    def __init__(
        self,
        sim: EventSimulator,
        a: EthernetMacModel,
        b: EthernetMacModel,
        propagation_delay_ns: float = 10.0,
    ):
        self.sim = sim
        self.a = a
        self.b = b
        self.propagation_delay_ns = propagation_delay_ns
        a.wire = self
        b.wire = self
        self.frames_carried = 0

    def carry(self, sender: EthernetMacModel, on_wire: bytes) -> None:
        receiver = self.b if sender is self.a else self.a
        self.frames_carried += 1
        self.sim.schedule(
            self.propagation_delay_ns, lambda: receiver.deliver(on_wire)
        )
