"""The SUME clock tree.

The board carries several oscillators/synthesizers (§2 and the SUME IEEE
Micro paper [3]); designs pick their datapath clock from here, and the
frequency choice flows into every throughput calculation the kernel
makes (cycles × period = time).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockSource:
    name: str
    freq_mhz: float
    purpose: str

    @property
    def period_ns(self) -> float:
        return 1e3 / self.freq_mhz


class ClockTree:
    """Named clock domains available to a design."""

    def __init__(self, sources: list[ClockSource]):
        self._sources = {src.name: src for src in sources}

    def __getitem__(self, name: str) -> ClockSource:
        if name not in self._sources:
            raise KeyError(
                f"no clock {name!r}; available: {sorted(self._sources)}"
            )
        return self._sources[name]

    def names(self) -> list[str]:
        return sorted(self._sources)

    def inventory(self) -> list[tuple[str, float, str]]:
        return [
            (src.name, src.freq_mhz, src.purpose)
            for src in sorted(self._sources.values(), key=lambda s: s.name)
        ]


SUME_CLOCKS = ClockTree(
    [
        ClockSource("fpga_sysclk", 200.0, "main FPGA system clock"),
        ClockSource("ddr3_refclk", 233.33, "DDR3 controller reference (933 MHz DDR)"),
        ClockSource("qdr_refclk", 500.0, "QDRII+ K/K# clock"),
        ClockSource("sfp_refclk", 156.25, "10G Ethernet transceiver reference"),
        ClockSource("pcie_refclk", 100.0, "PCIe Gen3 reference"),
        ClockSource("axi_datapath", 200.0, "256-bit AXI4-Stream datapath clock"),
        ClockSource("axi_lite", 100.0, "control-plane AXI4-Lite clock"),
    ]
)
