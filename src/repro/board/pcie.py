"""PCIe link and DMA engine models.

§2: the board is "a PCIe host adapter card"; the reference NIC moves
packets between host memory and the datapath through a descriptor-ring
DMA engine.  The model captures the three costs that shape experiment
E10 (DMA throughput vs batch size):

* **link occupancy** — payload bytes / effective link rate, where the
  effective rate folds in 128b/130b encoding and TLP header overhead;
* **per-doorbell cost** — an MMIO write plus a descriptor fetch round
  trip, amortized across every descriptor in the batch;
* **per-descriptor engine overhead** — scheduling and completion
  write-back.

Host memory is modelled as a sparse byte store shared with the driver
(:mod:`repro.host.driver`), and descriptors have a real 16-byte layout
so driver and engine must agree on the encoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.eventsim import EventSimulator


@dataclass(frozen=True)
class PcieConfig:
    """One PCIe port configuration."""

    generation: int
    lanes: int
    gtps_per_lane: float  # giga-transfers/s
    encoding_fraction: float  # 128b/130b for Gen3
    max_payload_bytes: int = 256
    tlp_overhead_bytes: int = 26  # 3DW hdr + seq/LCRC + framing

    @property
    def raw_bandwidth_bps(self) -> float:
        return self.gtps_per_lane * 1e9 * self.lanes * self.encoding_fraction

    @property
    def payload_efficiency(self) -> float:
        mps = self.max_payload_bytes
        return mps / (mps + self.tlp_overhead_bytes)

    @property
    def effective_bandwidth_bps(self) -> float:
        return self.raw_bandwidth_bps * self.payload_efficiency


PCIE_GEN3_X8 = PcieConfig(
    generation=3, lanes=8, gtps_per_lane=8.0, encoding_fraction=128 / 130
)


class PcieLink:
    """A shared, serialized PCIe data path with occupancy accounting."""

    #: One-way latency of a posted transaction.
    POSTED_LATENCY_NS = 200.0
    #: Round-trip latency of a non-posted (read) transaction.
    READ_RTT_NS = 500.0

    def __init__(self, sim: EventSimulator, config: PcieConfig = PCIE_GEN3_X8):
        self.sim = sim
        self.config = config
        self._bus_free_ns = 0.0
        self.bytes_moved = 0
        self.transactions = 0

    def _occupy(self, payload_bytes: int, extra_latency_ns: float) -> float:
        """Serialize a transfer on the link; returns completion time."""
        start = max(self.sim.now_ns, self._bus_free_ns)
        occupancy = payload_bytes * 8 / self.config.effective_bandwidth_bps * 1e9
        self._bus_free_ns = start + occupancy
        self.bytes_moved += payload_bytes
        self.transactions += 1
        return start + occupancy + extra_latency_ns

    def dma_write(self, payload_bytes: int) -> float:
        """Posted write towards the host; returns delivery time."""
        return self._occupy(payload_bytes, self.POSTED_LATENCY_NS)

    def dma_read(self, payload_bytes: int) -> float:
        """Read from host memory; returns data-arrival time."""
        return self._occupy(payload_bytes, self.READ_RTT_NS)

    def mmio_write(self) -> float:
        """Host MMIO write (doorbell): posted, 4 bytes."""
        return self._occupy(4, self.POSTED_LATENCY_NS)

    def mmio_read(self) -> float:
        """Host MMIO read: non-posted, pays the full round trip."""
        return self._occupy(4, self.READ_RTT_NS)


class HostMemory:
    """Sparse host DRAM as seen over PCIe; byte-addressable."""

    def __init__(self, size: int = 1 << 32):
        self.size = size
        self._pages: dict[int, bytearray] = {}
        self.PAGE = 4096

    def _page(self, addr: int) -> tuple[bytearray, int]:
        page_no, offset = divmod(addr, self.PAGE)
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(self.PAGE)
            self._pages[page_no] = page
        return page, offset

    def write(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > self.size:
            raise ValueError(f"host write [{addr:#x},+{len(data)}) out of range")
        pos = 0
        while pos < len(data):
            page, offset = self._page(addr + pos)
            chunk = min(len(data) - pos, self.PAGE - offset)
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    def read(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > self.size:
            raise ValueError(f"host read [{addr:#x},+{length}) out of range")
        out = bytearray()
        pos = 0
        while pos < length:
            page, offset = self._page(addr + pos)
            chunk = min(length - pos, self.PAGE - offset)
            out += page[offset : offset + chunk]
            pos += chunk
        return bytes(out)


#: Descriptor layout: u64 buffer address, u32 length, u16 flags, u16 port.
_DESC = struct.Struct("<QIHH")
DESC_SIZE = _DESC.size  # 16 bytes

FLAG_VALID = 0x0001
FLAG_DONE = 0x0002


@dataclass(frozen=True)
class DmaDescriptor:
    """One ring entry; ``port`` carries the SUME interface index."""

    addr: int
    length: int
    flags: int = FLAG_VALID
    port: int = 0

    def pack(self) -> bytes:
        return _DESC.pack(self.addr, self.length, self.flags, self.port)

    @classmethod
    def parse(cls, data: bytes) -> "DmaDescriptor":
        addr, length, flags, port = _DESC.unpack(data)
        return cls(addr=addr, length=length, flags=flags, port=port)


class DescriptorRing:
    """A classic producer/consumer ring in host memory."""

    def __init__(self, memory: HostMemory, base: int, entries: int):
        if entries <= 1 or entries & (entries - 1):
            raise ValueError("ring size must be a power of two > 1")
        self.memory = memory
        self.base = base
        self.entries = entries
        self.head = 0  # consumer index (device for tx, host for rx)
        self.tail = 0  # producer index

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.entries) * DESC_SIZE

    def read_desc(self, index: int) -> DmaDescriptor:
        return DmaDescriptor.parse(self.memory.read(self.slot_addr(index), DESC_SIZE))

    def write_desc(self, index: int, desc: DmaDescriptor) -> None:
        self.memory.write(self.slot_addr(index), desc.pack())

    @property
    def occupancy(self) -> int:
        return (self.tail - self.head) % (2 * self.entries)

    @property
    def space(self) -> int:
        return self.entries - self.occupancy


class DmaEngine:
    """The board-side DMA engine: one TX and one RX ring.

    TX (host → board): the driver fills descriptors, bumps ``tx.tail``
    and rings the doorbell; the engine fetches the new descriptors (one
    read round trip per batch), DMA-reads each buffer and hands the frame
    to ``tx_callback(frame, port)``.

    RX (board → host): :meth:`receive` consumes a free descriptor posted
    by the driver, DMA-writes the frame and marks the descriptor DONE.
    """

    PER_DESC_OVERHEAD_NS = 40.0

    def __init__(
        self,
        sim: EventSimulator,
        link: PcieLink,
        memory: HostMemory,
        tx_ring: DescriptorRing,
        rx_ring: DescriptorRing,
        irq_coalesce_frames: int = 1,
        irq_coalesce_ns: float = 0.0,
    ):
        self.sim = sim
        self.link = link
        self.memory = memory
        self.tx_ring = tx_ring
        self.rx_ring = rx_ring
        self.tx_callback: Optional[Callable[[bytes, int], None]] = None
        self.tx_frames = 0
        self.rx_frames = 0
        self.rx_dropped_no_desc = 0
        #: Fault-injection hook: ``hook(site) -> (outcome, stall_ns)``
        #: with site 'rx_completion' | 'tx_fetch' | 'doorbell' and
        #: outcome 'ok' | 'drop' | 'stall'.  None means the clean path.
        self.fault_hook: Optional[Callable[[str], tuple[str, float]]] = None
        #: Telemetry hook: ``hook(site)`` with site 'doorbell' |
        #: 'tx_completion' | 'rx_completion' | 'msi', called at the
        #: simulated instant the event happens.  None means unobserved.
        self.telemetry_hook: Optional[Callable[[str], None]] = None
        self.completions_dropped = 0
        self.stalls_injected = 0
        self.doorbells_dropped = 0
        self._tx_running = False
        self.last_tx_complete_ns = 0.0
        self.last_rx_complete_ns = 0.0
        # MSI with coalescing: fire after N completions, or after T ns
        # from the first un-notified completion, whichever is sooner.
        self.msi_callback: Optional[Callable[[], None]] = None
        self.irq_coalesce_frames = max(1, irq_coalesce_frames)
        self.irq_coalesce_ns = irq_coalesce_ns
        self.msi_fired = 0
        self._irq_pending = 0
        self._irq_timer_deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # TX path (host → board)
    # ------------------------------------------------------------------
    def _consult_fault(self, site: str) -> tuple[str, float]:
        if self.fault_hook is None:
            return ("ok", 0.0)
        return self.fault_hook(site)

    def doorbell_tx(self, new_tail: int) -> None:
        """Host doorbell: advance the TX tail (called via MMIO)."""
        self.link.mmio_write()
        if self.telemetry_hook is not None:
            self.telemetry_hook("doorbell")
        outcome, _ = self._consult_fault("doorbell")
        if outcome == "drop":
            # The posted write was lost; the engine never sees the tail.
            self.doorbells_dropped += 1
            return
        self.tx_ring.tail = new_tail % (2 * self.tx_ring.entries)
        if not self._tx_running:
            self._tx_running = True
            self.sim.schedule(0.0, self._tx_service)

    def _tx_service(self) -> None:
        if self.tx_ring.occupancy == 0:
            self._tx_running = False
            return
        # Fetch the whole visible batch of descriptors in one read.
        batch = self.tx_ring.occupancy
        fetch_bytes = batch * DESC_SIZE
        descs = [self.tx_ring.read_desc(self.tx_ring.head + i) for i in range(batch)]
        fetch_done = self.link.dma_read(fetch_bytes)
        outcome, stall_ns = self._consult_fault("tx_fetch")
        if outcome == "stall":
            # Descriptor fetch wedged in the engine's scheduler for a while.
            self.stalls_injected += 1
            fetch_done += stall_ns

        def process(batch_descs: list[DmaDescriptor]) -> None:
            # Pipelined reads: all buffer-read requests are outstanding
            # at once; the link serializes the data transfers, and each
            # frame is delivered when its read data lands.  This is the
            # multiple-outstanding-non-posted-requests behaviour real
            # engines rely on to fill the link.
            completions: list[float] = []
            for index, desc in enumerate(batch_descs):
                frame = self.memory.read(desc.addr, desc.length)
                done = self.link.dma_read(desc.length) + self.PER_DESC_OVERHEAD_NS

                def deliver(frame=frame, desc=desc) -> None:
                    self.tx_frames += 1
                    self.tx_ring.head = (self.tx_ring.head + 1) % (
                        2 * self.tx_ring.entries
                    )
                    self.last_tx_complete_ns = self.sim.now_ns
                    if self.telemetry_hook is not None:
                        self.telemetry_hook("tx_completion")
                    if self.tx_callback is not None:
                        self.tx_callback(frame, desc.port)

                self.sim.schedule_at(done, deliver)
                completions.append(done)
            self.sim.schedule_at(max(completions), self._tx_service)

        self.sim.schedule_at(fetch_done, lambda: process(descs))

    @property
    def tx_idle(self) -> bool:
        return not self._tx_running

    # ------------------------------------------------------------------
    # RX path (board → host)
    # ------------------------------------------------------------------
    def post_rx_buffers(self, new_tail: int) -> None:
        """Host posts free RX descriptors by advancing the tail."""
        self.rx_ring.tail = new_tail % (2 * self.rx_ring.entries)
        self.link.mmio_write()

    def receive(self, frame: bytes, port: int = 0) -> bool:
        """Board-side frame arrival.  False = dropped (no free descriptor)."""
        if self.rx_ring.occupancy == 0:
            self.rx_dropped_no_desc += 1
            return False
        index = self.rx_ring.head
        desc = self.rx_ring.read_desc(index)
        length = min(len(frame), desc.length)
        self.rx_ring.head = (index + 1) % (2 * self.rx_ring.entries)
        outcome, stall_ns = self._consult_fault("rx_completion")
        if outcome == "drop":
            # The completion write-back is lost: the descriptor was
            # consumed but DONE never lands — the head-of-line wedge the
            # driver's ring watchdog exists to repair.
            self.completions_dropped += 1
            return True
        done = self.link.dma_write(length)
        if outcome == "stall":
            self.stalls_injected += 1
            done += stall_ns

        def complete() -> None:
            self.memory.write(desc.addr, frame[:length])
            self.rx_ring.write_desc(
                index,
                DmaDescriptor(desc.addr, length, FLAG_VALID | FLAG_DONE, port),
            )
            self.rx_frames += 1
            self.last_rx_complete_ns = self.sim.now_ns
            if self.telemetry_hook is not None:
                self.telemetry_hook("rx_completion")
            self._irq_account()

        self.sim.schedule_at(done + self.PER_DESC_OVERHEAD_NS, complete)
        return True

    # ------------------------------------------------------------------
    # MSI coalescing
    # ------------------------------------------------------------------
    def _fire_msi(self) -> None:
        self._irq_pending = 0
        self._irq_timer_deadline = None
        self.msi_fired += 1
        if self.telemetry_hook is not None:
            self.telemetry_hook("msi")
        if self.msi_callback is not None:
            self.msi_callback()

    def _irq_account(self) -> None:
        if self.msi_callback is None:
            return
        self._irq_pending += 1
        if self._irq_pending >= self.irq_coalesce_frames:
            self._fire_msi()
            return
        if self.irq_coalesce_ns > 0 and self._irq_timer_deadline is None:
            deadline = self.sim.now_ns + self.irq_coalesce_ns
            self._irq_timer_deadline = deadline

            def timer() -> None:
                # Stale timers (already fired by count, or rearmed) no-op.
                if self._irq_timer_deadline == deadline and self._irq_pending:
                    self._fire_msi()

            self.sim.schedule_at(deadline, timer)
