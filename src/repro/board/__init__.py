"""Board-level models of the NetFPGA platforms.

The centrepiece is :class:`~repro.board.sume.NetFpgaSume`, a model of the
NetFPGA SUME board described in §2 of the paper: a Virtex-7 690T FPGA,
30 high-speed serial links (4 presented as SFP+ cages), QDRII+ SRAM and
DDR3 SoDIMM memory, microSD/SATA storage, PCIe Gen3 host attachment and
per-rail power instrumentation.  The catalogue also includes the
NetFPGA-10G and NetFPGA-1G-CML platforms named in §1.

Each subsystem model is behavioural — timing and capacity-faithful rather
than gate-accurate — and is exercised by experiments E1/E2/E8/E9/E10.
"""

from repro.board.clocks import ClockTree, SUME_CLOCKS
from repro.board.ddr3 import Ddr3Model, Ddr3Timing, SUME_DDR3
from repro.board.fpga import (
    FpgaDevice,
    KINTEX7_325T,
    UtilizationReport,
    VIRTEX5_TX240T,
    VIRTEX7_690T,
)
from repro.board.mac import EthernetMacModel, MacStatistics, Wire
from repro.board.pcie import DmaEngine, DmaDescriptor, PcieLink, PCIE_GEN3_X8
from repro.board.power import PowerModel, PowerRail, SUME_RAILS
from repro.board.qdr import QdrIIModel, SUME_QDR
from repro.board.serial import SerialLink, SerialLinkBank, SfpCage
from repro.board.storage import BlockDevice, MICROSD_CARD, SATA_SSD, StorageSubsystem
from repro.board.sume import (
    BoardSpec,
    NETFPGA_1G_CML,
    NETFPGA_10G,
    NETFPGA_SUME,
    NetFpgaSume,
)

__all__ = [
    "ClockTree",
    "SUME_CLOCKS",
    "Ddr3Model",
    "Ddr3Timing",
    "SUME_DDR3",
    "FpgaDevice",
    "KINTEX7_325T",
    "UtilizationReport",
    "VIRTEX5_TX240T",
    "VIRTEX7_690T",
    "EthernetMacModel",
    "MacStatistics",
    "Wire",
    "DmaEngine",
    "DmaDescriptor",
    "PcieLink",
    "PCIE_GEN3_X8",
    "PowerModel",
    "PowerRail",
    "SUME_RAILS",
    "QdrIIModel",
    "SUME_QDR",
    "SerialLink",
    "SerialLinkBank",
    "SfpCage",
    "BlockDevice",
    "MICROSD_CARD",
    "SATA_SSD",
    "StorageSubsystem",
    "BoardSpec",
    "NETFPGA_1G_CML",
    "NETFPGA_10G",
    "NETFPGA_SUME",
    "NetFpgaSume",
]
