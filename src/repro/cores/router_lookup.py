"""The reference IPv4 router's output-port lookup.

Implements the reference router data plane:

1. Filter on destination MAC (ours / broadcast, else drop).
2. Non-IPv4 (ARP &c.) → CPU via the ingress port's DMA queue.
3. IPv4 sanity: header checksum, TTL.  Bad checksum drops; expiring TTL
   punts to the CPU, which generates ICMP Time Exceeded.
4. Destination-IP filter (the router's own addresses) → CPU.
5. LPM lookup → (next hop, egress port); miss → CPU (ICMP unreachable).
6. ARP cache lookup for the next hop MAC; miss → CPU (ARP resolution).
7. Hit: rewrite MACs, decrement TTL, *incrementally* update the header
   checksum (RFC 1624), forward.

Everything the software side needs — table writes, counters — is exposed
through the register file, mirroring the reference router's register map.
"""

from __future__ import annotations

from typing import Optional

from repro.core.axilite import RegisterFile
from repro.core.axis import AxiStreamChannel
from repro.core.metadata import (
    NUM_PHYS_PORTS,
    SUME_TUSER,
    dma_port_bit,
    phys_port_bit,
)
from repro.core.module import Resources
from repro.cores.cam import BinaryCam
from repro.cores.header_parser import parse_headers
from repro.cores.lpm import LpmEntry, LpmTable
from repro.cores.output_port_lookup import Decision, OutputPortLookup
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.checksum import incremental_update16, internet_checksum

#: Reference router table sizes (32 LPM slots, 32 ARP slots).
DEFAULT_LPM_CAPACITY = 32
DEFAULT_ARP_CAPACITY = 32


class RouterTables:
    """The router's forwarding state, shared with the software plane."""

    def __init__(
        self,
        port_macs: list[MacAddr],
        port_ips: list[Ipv4Addr],
        lpm_capacity: int = DEFAULT_LPM_CAPACITY,
        arp_capacity: int = DEFAULT_ARP_CAPACITY,
    ):
        if len(port_macs) != NUM_PHYS_PORTS or len(port_ips) != NUM_PHYS_PORTS:
            raise ValueError(f"router needs {NUM_PHYS_PORTS} port MACs and IPs")
        self.port_macs = list(port_macs)
        self.port_ips = list(port_ips)
        self.lpm = LpmTable(capacity=lpm_capacity)
        self.arp = BinaryCam(capacity=arp_capacity, key_bits=32, evict_oldest=False)
        # Destination-IP filter: addresses terminating at the router
        # (its own interfaces plus anything software adds, e.g. OSPF
        # multicast groups in the reference router).
        self.ip_filter: set[int] = {ip.value for ip in port_ips}
        self._filter_generation = 0

    def add_route(self, entry: LpmEntry) -> bool:
        return self.lpm.insert(entry)

    def add_arp(self, ip: Ipv4Addr, mac: MacAddr) -> bool:
        return self.arp.insert(ip.value, mac.value)

    def add_filter(self, ip: Ipv4Addr) -> None:
        if ip.value not in self.ip_filter:
            self._filter_generation += 1
        self.ip_filter.add(ip.value)

    def generation(self) -> int:
        """Monotonic counter over every table a forwarding decision reads."""
        return (self.lpm.generation + self.arp.generation
                + self._filter_generation)

    def clear_volatile(self) -> None:
        """Wipe everything software loaded: routes, ARP, extra filters.

        Port MACs/IPs survive (they are synthesis-time configuration in
        the reference design); the destination-IP filter falls back to
        just the router's own interfaces.
        """
        for entry in self.lpm.entries():
            self.lpm.delete(entry.prefix, entry.prefix_len)
        self.arp.clear()
        self.ip_filter = {ip.value for ip in self.port_ips}
        self._filter_generation += 1


class RouterLookup(OutputPortLookup):
    """The router OPL stage; see the module docstring for the pipeline."""

    DECISION_LATENCY_CYCLES = 8  # parse + checksum + LPM walk + ARP + rewrite

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        tables: RouterTables,
    ):
        super().__init__(name, s_axis, m_axis)
        self.tables = tables
        self.registers = RegisterFile(f"{name}_regs")
        for offset, counter in (
            (0x00, "forwarded"),
            (0x04, "to_cpu"),
            (0x08, "bad_checksum"),
            (0x0C, "ttl_expired"),
            (0x10, "lpm_miss"),
            (0x14, "arp_miss"),
            (0x18, "bad_mac"),
            (0x1C, "non_ip_to_cpu"),
        ):
            self.registers.add_register(
                counter, offset, read_only=True,
                on_read=lambda c=counter: self.counters.get(c, 0),
            )

    def state_generation(self) -> int:
        return super().state_generation() + self.tables.generation()

    # ------------------------------------------------------------------
    def _ingress_index(self, src_bits: int) -> Optional[int]:
        for i in range(NUM_PHYS_PORTS):
            if src_bits & (phys_port_bit(i) | dma_port_bit(i)):
                return i
        return None

    def _to_cpu(self, tuser: int, ingress: int, note: str) -> Decision:
        self.bump("to_cpu")
        return Decision(
            SUME_TUSER.insert(tuser, "dst_port", dma_port_bit(ingress)), note=note
        )

    def decide(self, header: bytes, tuser: int) -> Decision:
        src_bits = SUME_TUSER.extract(tuser, "src_port")
        ingress = self._ingress_index(src_bits)
        if ingress is None:
            return Decision(tuser, drop=True, note="unknown_source")

        # Packets from the CPU go straight out the paired interface —
        # software has already made its forwarding decision.
        if src_bits & dma_port_bit(ingress):
            return Decision(
                SUME_TUSER.insert(tuser, "dst_port", phys_port_bit(ingress)),
                note="from_cpu",
            )

        parsed = parse_headers(header)
        if parsed.dst_mac is None:
            return Decision(tuser, drop=True, note="runt")
        our_mac = self.tables.port_macs[ingress]
        if parsed.dst_mac != our_mac and not parsed.dst_mac.is_broadcast:
            return Decision(tuser, drop=True, note="bad_mac")
        if not parsed.is_ipv4:
            # ARP and friends are handled by software.
            return self._to_cpu(tuser, ingress, "non_ip_to_cpu")

        assert parsed.ip_header_offset is not None
        assert parsed.ip_header_len is not None
        ip_start = parsed.ip_header_offset
        ip_end = ip_start + parsed.ip_header_len
        if ip_end > len(header):
            # Options pushed the header past our parse window: software path.
            return self._to_cpu(tuser, ingress, "long_header_to_cpu")
        ip_header = header[ip_start:ip_end]
        if internet_checksum(ip_header) != 0:
            return Decision(tuser, drop=True, note="bad_checksum")

        assert parsed.ip_ttl is not None and parsed.ip_dst is not None
        if parsed.ip_dst.value in self.tables.ip_filter:
            return self._to_cpu(tuser, ingress, "local_ip")
        if parsed.ip_ttl <= 1:
            return self._to_cpu(tuser, ingress, "ttl_expired")

        route = self.tables.lpm.lookup(parsed.ip_dst)
        if route is None:
            return self._to_cpu(tuser, ingress, "lpm_miss")
        next_hop = parsed.ip_dst if route.is_directly_connected else route.next_hop
        next_mac_value = self.tables.arp.lookup(next_hop.value)
        if next_mac_value is None:
            return self._to_cpu(tuser, ingress, "arp_miss")

        egress = self._ingress_index(route.port_bits)
        if egress is None:
            return Decision(tuser, drop=True, note="bad_route_port")

        # Header rewrites: MACs, TTL, checksum (RFC 1624 incremental on
        # the TTL/protocol word, exactly like the Verilog).
        new_ttl = parsed.ip_ttl - 1
        old_word = (parsed.ip_ttl << 8) | (parsed.ip_proto or 0)
        new_word = (new_ttl << 8) | (parsed.ip_proto or 0)
        old_csum = int.from_bytes(ip_header[10:12], "big")
        new_csum = incremental_update16(old_csum, old_word, new_word)

        rewrites = {
            0: MacAddr(next_mac_value).packed,  # dst MAC
            6: self.tables.port_macs[egress].packed,  # src MAC
            ip_start + 8: bytes([new_ttl]),
            ip_start + 10: new_csum.to_bytes(2, "big"),
        }
        return Decision(
            SUME_TUSER.insert(tuser, "dst_port", route.port_bits),
            rewrites=rewrites,
            note="forwarded",
        )

    def resources(self) -> Resources:
        # OPL base + LPM walker + ARP CAM + checksum/TTL datapath.
        return (
            super().resources()
            + self.tables.lpm.resources()
            + self.tables.arp.resources()
            + Resources(luts=3_800, ffs=3_200, brams=2.0)
        )
