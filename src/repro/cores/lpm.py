"""Longest-prefix-match tables for IPv4 forwarding.

Two implementations with identical semantics:

* :class:`LpmTable` — a binary trie, the scalable structure a DRAM/BRAM
  based pipeline would use; O(32) per lookup.
* :class:`NaiveLpm` — brute force scan over all entries; O(n) but
  obviously correct.  It exists as the property-testing oracle for the
  trie and as the closest analogue of the reference router's 32-slot
  linear TCAM search.

Both return the entry with the longest matching prefix; ties cannot
occur (one entry per exact (prefix, length)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.module import Resources
from repro.packet.addresses import Ipv4Addr


@dataclass(frozen=True)
class LpmEntry:
    """A route: prefix/len → (next hop, egress port one-hot)."""

    prefix: Ipv4Addr
    prefix_len: int
    next_hop: Ipv4Addr
    port_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length {self.prefix_len}")
        # A canonical route has no host bits set below the prefix.
        if self.prefix_len < 32:
            host_mask = (1 << (32 - self.prefix_len)) - 1
            if self.prefix.value & host_mask:
                raise ValueError(
                    f"route {self.prefix}/{self.prefix_len} has host bits set"
                )

    @property
    def is_directly_connected(self) -> bool:
        """Next hop 0.0.0.0 means 'deliver directly' in the reference router."""
        return self.next_hop.value == 0


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self):
        self.children: list[Optional["_TrieNode"]] = [None, None]
        self.entry: Optional[LpmEntry] = None


class LpmTable:
    """Binary-trie longest-prefix-match table."""

    def __init__(self, capacity: Optional[int] = None):
        self._root = _TrieNode()
        self.capacity = capacity
        self.size = 0
        self.lookups = 0
        self.hits = 0
        #: Monotonic state-change counter (see BinaryCam.generation):
        #: bumps on any route add, replace or delete — never on lookups
        #: or on re-installing an identical entry.
        self.generation = 0

    def _bits(self, addr: int, length: int):
        for i in range(length):
            yield (addr >> (31 - i)) & 1

    def insert(self, entry: LpmEntry) -> bool:
        """Add or replace a route.  False = table full."""
        node = self._root
        for bit in self._bits(entry.prefix.value, entry.prefix_len):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.entry is None:
            if self.capacity is not None and self.size >= self.capacity:
                return False
            self.size += 1
        if node.entry != entry:
            self.generation += 1
        node.entry = entry
        return True

    def delete(self, prefix: Ipv4Addr, prefix_len: int) -> bool:
        """Remove an exact route; returns False if absent.

        Nodes are not pruned — hardware tries don't reclaim either, and
        correctness is unaffected.
        """
        node = self._root
        for bit in self._bits(prefix.value, prefix_len):
            if node.children[bit] is None:
                return False
            node = node.children[bit]
        if node.entry is None:
            return False
        node.entry = None
        self.size -= 1
        self.generation += 1
        return True

    def lookup(self, addr: Ipv4Addr) -> Optional[LpmEntry]:
        """Longest-prefix match for ``addr``."""
        self.lookups += 1
        best: Optional[LpmEntry] = None
        node = self._root
        if node.entry is not None:
            best = node.entry
        for bit in self._bits(addr.value, 32):
            node = node.children[bit]
            if node is None:
                break
            if node.entry is not None:
                best = node.entry
        if best is not None:
            self.hits += 1
        return best

    def entries(self) -> list[LpmEntry]:
        out: list[LpmEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.entry is not None:
                out.append(node.entry)
            stack.extend(child for child in node.children if child is not None)
        return sorted(out, key=lambda e: (e.prefix_len, e.prefix.value))

    def resources(self) -> Resources:
        """BRAM trie walker: storage scales with capacity, logic is fixed."""
        capacity = self.capacity if self.capacity is not None else 1024
        brams = max(1.0, capacity * 64 / 36_000)
        return Resources(luts=800, ffs=600, brams=brams)


class NaiveLpm:
    """Brute-force LPM over a list — the oracle implementation."""

    def __init__(self):
        self._entries: dict[tuple[int, int], LpmEntry] = {}
        self.lookups = 0

    def insert(self, entry: LpmEntry) -> bool:
        self._entries[(entry.prefix.value, entry.prefix_len)] = entry
        return True

    def delete(self, prefix: Ipv4Addr, prefix_len: int) -> bool:
        return self._entries.pop((prefix.value, prefix_len), None) is not None

    def lookup(self, addr: Ipv4Addr) -> Optional[LpmEntry]:
        self.lookups += 1
        best: Optional[LpmEntry] = None
        for entry in self._entries.values():
            if addr.in_prefix(entry.prefix, entry.prefix_len):
                if best is None or entry.prefix_len > best.prefix_len:
                    best = entry
        return best

    @property
    def size(self) -> int:
        return len(self._entries)
