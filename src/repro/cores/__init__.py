"""The NetFPGA building-block library (§3: "a large library of modules").

Every class here is a reusable datapath element with the same AXI4-Stream
/ AXI4-Lite interfaces as its Verilog counterpart, plus a declared
resource footprint.  Reference projects (:mod:`repro.projects`) are thin
compositions of these blocks — which is precisely the paper's modularity
claim (C3): swap one block, touch nothing else.
"""

from repro.cores.cam import BinaryCam
from repro.cores.delay import DelayLine
from repro.cores.header_parser import ParsedHeaders, parse_headers
from repro.cores.input_arbiter import InputArbiter
from repro.cores.lpm import LpmTable, LpmEntry, NaiveLpm
from repro.cores.output_port_lookup import Decision, OutputPortLookup
from repro.cores.lookups import (
    LearningSwitchLookup,
    NicLookup,
    PassthroughLookup,
    SwitchLiteLookup,
)
from repro.cores.router_lookup import RouterLookup, RouterTables
from repro.cores.output_queues import OutputQueues, QueueConfig, classify_by_dscp
from repro.cores.rate_limiter import RateLimiter
from repro.cores.stats import StatsCollector
from repro.cores.tcam import Tcam, TcamEntry
from repro.cores.timestamp import TimestampCore
from repro.cores.packet_cutter import PacketCutter
from repro.cores.port_mirror import PortMirror
from repro.cores.width_converter import WidthConverter

__all__ = [
    "BinaryCam",
    "DelayLine",
    "ParsedHeaders",
    "parse_headers",
    "InputArbiter",
    "LpmTable",
    "LpmEntry",
    "NaiveLpm",
    "Decision",
    "OutputPortLookup",
    "LearningSwitchLookup",
    "NicLookup",
    "PassthroughLookup",
    "SwitchLiteLookup",
    "RouterLookup",
    "RouterTables",
    "OutputQueues",
    "QueueConfig",
    "classify_by_dscp",
    "RateLimiter",
    "StatsCollector",
    "Tcam",
    "TcamEntry",
    "TimestampCore",
    "PacketCutter",
    "PortMirror",
    "WidthConverter",
]
