"""Input arbiter: merges the per-port streams into the single pipeline.

The first stage of every reference project.  It round-robins between the
input channels at *packet* granularity (a granted port keeps the pipe
until TLAST), which is what gives NetFPGA designs per-port fairness under
all-port load — property-tested in ``tests/test_cores_arbiter.py``.
Backpressure from the pipeline propagates combinationally to the granted
input, exactly like the Verilog's pass-through ready.
"""

from __future__ import annotations

from typing import Optional

from repro.core.arbiter import RoundRobinArbiter
from repro.core.axis import AxiStreamChannel
from repro.core.module import Module, Resources


class InputArbiter(Module):
    """N AXI4-Stream inputs → 1 output, packet-boundary round robin."""

    def __init__(
        self,
        name: str,
        s_axis: list[AxiStreamChannel],
        m_axis: AxiStreamChannel,
    ):
        super().__init__(name)
        if not s_axis:
            raise ValueError("input arbiter needs at least one input")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self._arbiter = RoundRobinArbiter(len(s_axis))
        self._locked: Optional[int] = None
        self._chosen: Optional[int] = None
        self.packets_in = [0] * len(s_axis)
        for ch in (*s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def comb(self) -> None:
        if self._locked is not None:
            chosen: Optional[int] = self._locked
        else:
            requests = [bool(ch.tvalid) for ch in self.s_axis]
            chosen = self._arbiter.grant(requests)
        self._chosen = chosen

        if chosen is not None and bool(self.s_axis[chosen].tvalid):
            self.m_axis.drive(self.s_axis[chosen].beat)
        else:
            self.m_axis.drive(None)

        accept = bool(self.m_axis.tready)
        for i, ch in enumerate(self.s_axis):
            ch.set_ready(accept and i == chosen)

    def tick(self) -> None:
        self.m_axis.account()
        if self.m_axis.fire:
            chosen = self._chosen
            assert chosen is not None
            beat = self.m_axis.beat
            assert beat is not None
            if beat.last:
                self.packets_in[chosen] += 1
                self._arbiter.advance(chosen)
                self._locked = None
            else:
                self._locked = chosen

    def resources(self) -> Resources:
        n = len(self.s_axis)
        # Wide (256b+sideband) n:1 mux plus grant logic, per the reference
        # nf10_input_arbiter utilization.
        return Resources(luts=450 * n, ffs=380 * n, brams=0.5 * n)
