"""Port mirroring (SPAN): copy selected traffic to a monitor port.

The measurement researcher's first request of any switch: "mirror port 2
to my capture box".  The core is a pure TUSER rewriter — packets whose
source or destination intersects ``watch_mask`` get ``mirror_bit`` OR-ed
into their destination, and the output-queues stage's existing multicast
replication does the copying.  Zero datapath mutation, one more block in
the §3 library.
"""

from __future__ import annotations

from repro.core.axis import AxiStreamBeat, AxiStreamChannel
from repro.core.metadata import SUME_TUSER
from repro.core.module import Module, Resources


class PortMirror(Module):
    """Pass-through TUSER rewriter implementing SPAN."""

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        mirror_bit: int,
        watch_mask: int,
        enabled: bool = True,
    ):
        super().__init__(name)
        if mirror_bit == 0:
            raise ValueError("mirror port bit must be non-zero")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.mirror_bit = mirror_bit
        self.watch_mask = watch_mask
        self.enabled = enabled
        self._in_packet = False
        self._mirroring = False
        self.mirrored = 0
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def _should_mirror(self, tuser: int) -> bool:
        if not self.enabled:
            return False
        src = SUME_TUSER.extract(tuser, "src_port")
        dst = SUME_TUSER.extract(tuser, "dst_port")
        return bool((src | dst) & self.watch_mask)

    def _rewrite(self, beat: AxiStreamBeat) -> AxiStreamBeat:
        # Decide at SOP, hold for the packet (idempotent within a cycle).
        if not self._in_packet:
            self._mirroring = self._should_mirror(beat.tuser)
        if not self._mirroring:
            return beat
        dst = SUME_TUSER.extract(beat.tuser, "dst_port") | self.mirror_bit
        return AxiStreamBeat(
            beat.data, beat.last, SUME_TUSER.insert(beat.tuser, "dst_port", dst)
        )

    def comb(self) -> None:
        self.s_axis.set_ready(bool(self.m_axis.tready))
        beat = self.s_axis.beat
        if beat is None or not bool(self.s_axis.tvalid):
            self.m_axis.drive(None)
            return
        self.m_axis.drive(self._rewrite(beat))

    def tick(self) -> None:
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            if not self._in_packet and self._mirroring:
                self.mirrored += 1
            self._in_packet = not beat.last

    def resources(self) -> Resources:
        return Resources(luts=140, ffs=100)
