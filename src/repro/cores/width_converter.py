"""AXI4-Stream width converter.

Reference designs cross bus widths at domain boundaries (e.g. the 64-bit
per-MAC streams into the 256-bit shared pipeline).  Narrow→wide packs
consecutive beats; wide→narrow splits them.  Packet boundaries (TLAST)
are always honoured — a packed wide beat never spans two packets.
"""

from __future__ import annotations

from collections import deque

from repro.core.axis import AxiStreamBeat, AxiStreamChannel
from repro.core.module import Module, Resources


class WidthConverter(Module):
    """Repacks a stream from ``s_axis.width_bytes`` to ``m_axis.width_bytes``."""

    def __init__(self, name: str, s_axis: AxiStreamChannel, m_axis: AxiStreamChannel):
        super().__init__(name)
        self.s_axis = s_axis
        self.m_axis = m_axis
        self._accum = bytearray()
        self._tuser = 0
        self._out: deque[AxiStreamBeat] = deque()
        self.beats_in = 0
        self.beats_out = 0
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def comb(self) -> None:
        self.s_axis.set_ready(len(self._out) < 64)
        self.m_axis.drive(self._out[0] if self._out else None)

    def _flush(self, last: bool) -> None:
        width = self.m_axis.width_bytes
        while len(self._accum) >= width:
            chunk = bytes(self._accum[:width])
            del self._accum[:width]
            is_last = last and not self._accum
            self._out.append(AxiStreamBeat(chunk, is_last, self._tuser))
            self.beats_out += 1
        if last and self._accum:
            self._out.append(AxiStreamBeat(bytes(self._accum), True, self._tuser))
            self._accum.clear()
            self.beats_out += 1

    def tick(self) -> None:
        self.m_axis.account()
        if self.m_axis.fire:
            self._out.popleft()
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            if not self._accum:
                self._tuser = beat.tuser
            self.beats_in += 1
            self._accum += beat.data
            self._flush(beat.last)

    def resources(self) -> Resources:
        return Resources(luts=500, ffs=600, brams=0.5)
