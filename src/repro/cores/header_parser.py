"""Header parser: the field-extraction stage of the reference pipelines.

The Verilog parser walks the packet as beats arrive and latches fields at
fixed offsets; this model does the same extraction over the buffered
header bytes.  It is deliberately *non-throwing*: malformed or truncated
packets yield ``None`` fields and let the lookup stage decide (drop, or
punt to the CPU path) — hardware never raises exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.ethernet import ETHERTYPE_IPV4, ETHERTYPE_VLAN

#: Bytes of header the pipelines need at most: eth(14) + vlan(4) +
#: ipv4+options(60) would be 78, but the reference parsers cap options.
HEADER_WINDOW = 64


@dataclass(frozen=True)
class ParsedHeaders:
    """Every field the reference lookups use; ``None`` = not present."""

    dst_mac: Optional[MacAddr] = None
    src_mac: Optional[MacAddr] = None
    ethertype: Optional[int] = None
    vlan_vid: Optional[int] = None
    vlan_pcp: Optional[int] = None
    ip_src: Optional[Ipv4Addr] = None
    ip_dst: Optional[Ipv4Addr] = None
    ip_proto: Optional[int] = None
    ip_ttl: Optional[int] = None
    ip_dscp: Optional[int] = None
    ip_header_offset: Optional[int] = None
    ip_header_len: Optional[int] = None
    l4_src_port: Optional[int] = None
    l4_dst_port: Optional[int] = None

    @property
    def is_ipv4(self) -> bool:
        return self.ip_dst is not None


def parse_headers(data: bytes) -> ParsedHeaders:
    """Extract header fields from the first bytes of a frame.

    Handles one optional 802.1Q tag (like the reference parser) and stops
    gracefully at whatever layer the data runs out.
    """
    if len(data) < 14:
        return ParsedHeaders()
    dst_mac = MacAddr.from_bytes(data[0:6])
    src_mac = MacAddr.from_bytes(data[6:12])
    ethertype = int.from_bytes(data[12:14], "big")
    offset = 14
    vlan_vid: Optional[int] = None
    vlan_pcp: Optional[int] = None
    if ethertype == ETHERTYPE_VLAN:
        if len(data) < offset + 4:
            return ParsedHeaders(dst_mac, src_mac, ethertype)
        tci = int.from_bytes(data[offset : offset + 2], "big")
        vlan_vid = tci & 0xFFF
        vlan_pcp = (tci >> 13) & 0x7
        ethertype = int.from_bytes(data[offset + 2 : offset + 4], "big")
        offset += 4

    base = ParsedHeaders(
        dst_mac=dst_mac,
        src_mac=src_mac,
        ethertype=ethertype,
        vlan_vid=vlan_vid,
        vlan_pcp=vlan_pcp,
    )
    if ethertype != ETHERTYPE_IPV4 or len(data) < offset + 20:
        return base
    version = data[offset] >> 4
    ihl = data[offset] & 0x0F
    ip_header_len = ihl * 4
    if version != 4 or ip_header_len < 20:
        return base
    # The fixed 20-byte header is present; options may extend past the
    # parse window — the caller sees that via ip_header_len and decides
    # (the router punts such packets to software).

    l4 = offset + ip_header_len
    l4_src: Optional[int] = None
    l4_dst: Optional[int] = None
    proto = data[offset + 9]
    if proto in (6, 17) and len(data) >= l4 + 4:
        l4_src = int.from_bytes(data[l4 : l4 + 2], "big")
        l4_dst = int.from_bytes(data[l4 + 2 : l4 + 4], "big")

    return ParsedHeaders(
        dst_mac=dst_mac,
        src_mac=src_mac,
        ethertype=ethertype,
        vlan_vid=vlan_vid,
        vlan_pcp=vlan_pcp,
        ip_src=Ipv4Addr.from_bytes(data[offset + 12 : offset + 16]),
        ip_dst=Ipv4Addr.from_bytes(data[offset + 16 : offset + 20]),
        ip_proto=proto,
        ip_ttl=data[offset + 8],
        ip_dscp=data[offset + 1] >> 2,
        ip_header_offset=offset,
        ip_header_len=ip_header_len,
        l4_src_port=l4_src,
        l4_dst_port=l4_dst,
    )
