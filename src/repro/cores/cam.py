"""Binary (exact-match) CAM.

The learning switch's MAC table and the router's ARP cache are exact-
match CAMs in the reference designs.  A hardware CAM compares all
entries in parallel in one cycle; the model preserves that single-cycle
semantic (a dict lookup) while keeping hardware-faithful *capacity* and
*replacement* behaviour: a full CAM either rejects new entries or evicts
in FIFO order, selectable to match the target design.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.core.module import Resources


class BinaryCam:
    """Fixed-capacity exact-match table with optional FIFO eviction."""

    def __init__(self, capacity: int, key_bits: int, evict_oldest: bool = True):
        if capacity <= 0:
            raise ValueError("CAM capacity must be positive")
        if key_bits <= 0:
            raise ValueError("key width must be positive")
        self.capacity = capacity
        self.key_bits = key_bits
        self.evict_oldest = evict_oldest
        self._entries: OrderedDict[int, int] = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.rejects = 0
        #: Monotonic state-change counter: bumps whenever the *visible
        #: match state* changes (new entry, changed value, eviction,
        #: deletion, clear) — and only then.  Re-learning an identical
        #: (key, value) pair is a semantic no-op and must not bump, or
        #: the flow-cache fast path above us could never stay warm on a
        #: learning switch.
        self.generation = 0

    def _check_key(self, key: int) -> None:
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key:#x} wider than {self.key_bits} bits")

    def lookup(self, key: int) -> Optional[int]:
        self._check_key(key)
        self.lookups += 1
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
        return value

    def insert(self, key: int, value: int) -> bool:
        """Add or update an entry.  False = rejected (full, no eviction)."""
        self._check_key(key)
        if key in self._entries:
            if self._entries[key] != value:
                self._entries[key] = value
                self.generation += 1
            return True
        if len(self._entries) >= self.capacity:
            if not self.evict_oldest:
                self.rejects += 1
                return False
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value
        self.insertions += 1
        self.generation += 1
        return True

    def delete(self, key: int) -> bool:
        self._check_key(key)
        if self._entries.pop(key, None) is None:
            return False
        self.generation += 1
        return True

    def clear(self) -> None:
        if self._entries:
            self._entries.clear()
            self.generation += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._entries.items())

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def resources(self) -> Resources:
        """BRAM-based CAM cost: grows with entries × key width.

        Xilinx BRAM-CAM construction costs roughly one RAMB36 per
        32 entries of a 48-bit key, plus match/encode LUTs.
        """
        brams = max(1.0, self.capacity * self.key_bits / (32 * 48) )
        luts = 150 + self.capacity // 2
        return Resources(luts=luts, ffs=self.capacity, brams=brams)
