"""Fixed-delay line.

OSNT's inter-packet delay module and network-emulation projects insert a
configurable latency into a stream.  Beats are time-stamped on entry and
released only once ``delay_cycles`` have elapsed, preserving order and
spacing (a true delay line, not a rate change).
"""

from __future__ import annotations

from collections import deque

from repro.core.axis import AxiStreamBeat, AxiStreamChannel
from repro.core.module import Module, Resources


class DelayLine(Module):
    """Delays every beat by a fixed number of cycles."""

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        delay_cycles: int,
        depth_beats: int = 4096,
    ):
        super().__init__(name)
        if delay_cycles < 0:
            raise ValueError("delay must be non-negative")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.delay_cycles = delay_cycles
        self.depth_beats = depth_beats
        self._line: deque[tuple[int, AxiStreamBeat]] = deque()
        self._cycle = 0
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def comb(self) -> None:
        self.s_axis.set_ready(len(self._line) < self.depth_beats)
        if self._line and self._line[0][0] <= self._cycle:
            self.m_axis.drive(self._line[0][1])
        else:
            self.m_axis.drive(None)

    def tick(self) -> None:
        self.m_axis.account()
        if self.m_axis.fire:
            self._line.popleft()
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            self._line.append((self._cycle + self.delay_cycles, beat))
        self._cycle += 1

    def resources(self) -> Resources:
        # Delay storage is a BRAM ring holding depth_beats wide words.
        return Resources(luts=300, ffs=250, brams=max(1.0, self.depth_beats / 128))
