"""The generic output-port-lookup (OPL) engine.

Every reference project differs from the others almost entirely in this
one stage (§3's modularity story): the NIC, the learning switch and the
IPv4 router are the same pipeline with a different OPL dropped in.  This
module implements the shared machinery — header accumulation, the
decision point, header rewriting, TUSER update, drop handling — and
subclasses supply a single :meth:`decide` method.

Timing model: the engine releases nothing until it has either
``HEADER_WINDOW`` bytes or TLAST, then streams cut-through.  With the
256-bit datapath that is a two-beat decision latency, matching the
reference OPL's parser+lookup pipeline depth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.axis import AxiStreamBeat, AxiStreamChannel
from repro.core.metadata import NUM_PHYS_PORTS, all_phys_ports_mask, phys_port_bit
from repro.core.module import Module, Resources
from repro.int.codec import stamp as _int_stamp

#: ``int_device_id`` before the device joins a network — stamps still
#: work on standalone devices, they just carry the sentinel id.
INT_UNASSIGNED_DEVICE_ID = 0xFFFF

#: Header bytes retained for the decision (see header_parser.HEADER_WINDOW).
HEADER_WINDOW = 64
#: Elastic buffer bound, in beats, between input and output.
ENGINE_BUFFER_BEATS = 128


@dataclass
class Decision:
    """What the lookup decided for one packet."""

    tuser: int
    rewrites: dict[int, bytes] = field(default_factory=dict)
    drop: bool = False
    note: str = "ok"


class OutputPortLookup(Module):
    """Base OPL: buffer header → ``decide()`` → rewrite → stream out.

    ``DECISION_LATENCY_CYCLES`` models the depth of the concrete
    lookup's pipeline (parser → table walk → action resolution): the
    packet's release is held that many cycles after the decision point.
    The reference designs differ here — the NIC's fixed mapping is
    nearly free while the router's LPM+ARP+checksum chain is the deepest
    — and experiment E3 reports exactly this difference.
    """

    DECISION_LATENCY_CYCLES = 2

    #: Whether ``decide()`` is a pure function of (header, TUSER) and the
    #: lookup's *table* state.  The microflow fast path
    #: (:mod:`repro.fastpath`) only caches decisions of lookups that
    #: declare this; lookups with hidden per-packet state (e.g. the
    #: firewall's SYN-flood detector) set it False and always take the
    #: slow path.
    CACHEABLE = True

    def __init__(self, name: str, s_axis: AxiStreamChannel, m_axis: AxiStreamChannel):
        super().__init__(name)
        self.s_axis = s_axis
        self.m_axis = m_axis
        self._held: list[AxiStreamBeat] = []  # beats awaiting the decision
        self._header = bytearray()
        self._first_tuser = 0
        self._decided = False
        self._dropping = False
        self._rewrites: dict[int, bytes] = {}
        self._out_tuser = 0
        self._in_offset = 0  # byte offset of the next input beat
        self._out_offset = 0  # byte offset of the next emitted beat
        self._emit: deque[AxiStreamBeat] = deque()
        self._release_countdown = 0  # decision pipeline depth remaining
        self.counters: dict[str, int] = {}
        self.packets = 0
        self.drops = 0
        #: One-hot liveness mask over the physical ports.  The MAC/PHY
        #: blocks report link state here; lookups that precompute backup
        #: next-hops (fast reroute) consult it inside ``decide()`` so a
        #: dead primary port falls over in the same packet walk.
        self.port_liveness = all_phys_ports_mask()
        self._liveness_generation = 0
        #: In-band telemetry identity, assigned by
        #: :meth:`repro.testenv.topology.Network.add_device` in
        #: insertion order — deterministic across shard replicas.
        self.int_device_id = INT_UNASSIGNED_DEVICE_ID
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def decide(self, header: bytes, tuser: int) -> Decision:
        """Map (header bytes, ingress TUSER) to a forwarding decision."""
        raise NotImplementedError

    def bump(self, counter: str) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + 1

    def set_port_state(self, index: int, up: bool) -> bool:
        """Mark physical port ``index`` up or down in the liveness mask.

        Returns True if the state actually changed.  A change bumps the
        liveness generation, which folds into :meth:`state_generation`
        so every cached forwarding decision that might have consulted
        the mask is invalidated.
        """
        if not 0 <= index < NUM_PHYS_PORTS:
            raise ValueError(f"physical port index {index} out of range")
        bit = phys_port_bit(index)
        new = (self.port_liveness | bit) if up else (self.port_liveness & ~bit)
        if new == self.port_liveness:
            return False
        self.port_liveness = new
        self._liveness_generation += 1
        return True

    def port_is_up(self, index: int) -> bool:
        """Whether physical port ``index`` currently has link."""
        return bool(self.port_liveness & phys_port_bit(index))

    def int_stamp(self, frame: bytes, ingress: int, egress: int,
                  note: str) -> bytes:
        """Append this device's INT hop record to an egressing frame.

        The timestamp advances by ``DECISION_LATENCY_CYCLES`` — the
        concrete lookup's pipeline depth, so per-hop latency read back
        from the stamps is device-revealing.  A ``frr_reroute`` decision
        stamps the FRR flag and the one-hot mask of link-down ports (the
        failed primary among them), which is how the receiver attributes
        the reroute to a specific cable.  Pure in (frame, ingress,
        egress, note, liveness) — all of which are covered by the cache
        generations — so stamped walks stay cacheable.
        """
        rerouted = note == "frr_reroute"
        dead_ports = 0
        if rerouted:
            for index in range(NUM_PHYS_PORTS):
                if not self.port_liveness & phys_port_bit(index):
                    dead_ports |= 1 << index
        return _int_stamp(
            frame, self.int_device_id, ingress, egress,
            latency=self.DECISION_LATENCY_CYCLES,
            rerouted=rerouted, dead_ports=dead_ports,
        )

    def state_generation(self) -> int:
        """Monotonic counter over the lookup's *decision-visible* state.

        Cached decisions are valid exactly while this value is stable;
        lookups with tables override it to add their tables' generation
        counters (and must include ``super().state_generation()`` so
        port-liveness flips invalidate them too).
        """
        return self._liveness_generation

    # ------------------------------------------------------------------
    # Kernel interface
    # ------------------------------------------------------------------
    def comb(self) -> None:
        room = len(self._emit) + len(self._held) < ENGINE_BUFFER_BEATS
        self.s_axis.set_ready(room)
        gated = self._release_countdown > 0
        self.m_axis.drive(self._emit[0] if self._emit and not gated else None)

    def _apply_rewrites(self, beat: AxiStreamBeat, offset: int) -> AxiStreamBeat:
        if not self._rewrites:
            return AxiStreamBeat(beat.data, beat.last, self._out_tuser)
        data = bytearray(beat.data)
        end = offset + len(data)
        for rw_offset, replacement in self._rewrites.items():
            rw_end = rw_offset + len(replacement)
            if rw_end <= offset or rw_offset >= end:
                continue
            # Overlap of [rw_offset, rw_end) with this beat's span.
            lo = max(rw_offset, offset)
            hi = min(rw_end, end)
            data[lo - offset : hi - offset] = replacement[lo - rw_offset : hi - rw_offset]
        return AxiStreamBeat(bytes(data), beat.last, self._out_tuser)

    def _release_held(self) -> None:
        offset = 0
        for held in self._held:
            self._emit.append(self._apply_rewrites(held, offset))
            offset += len(held.data)
        self._out_offset = offset
        self._held = []

    def _finish_packet(self) -> None:
        self._decided = False
        self._dropping = False
        self._rewrites = {}
        self._header = bytearray()
        self._in_offset = 0
        self._out_offset = 0

    def _make_decision(self) -> None:
        decision = self.decide(bytes(self._header), self._first_tuser)
        self.bump(decision.note)
        self.packets += 1
        self._decided = True
        self._release_countdown = self.DECISION_LATENCY_CYCLES
        if decision.drop:
            self.drops += 1
            self._dropping = True
            self._held = []
        else:
            self._out_tuser = decision.tuser
            self._rewrites = dict(decision.rewrites)
            self._release_held()

    def tick(self) -> None:
        self.m_axis.account()
        if self._release_countdown > 0:
            self._release_countdown -= 1
        if self.m_axis.fire:
            self._emit.popleft()
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            if not self._decided:
                if not self._held and not self._header:
                    self._first_tuser = beat.tuser
                self._held.append(beat)
                take = HEADER_WINDOW - len(self._header)
                if take > 0:
                    self._header += beat.data[:take]
                self._in_offset += len(beat.data)
                if beat.last or len(self._header) >= HEADER_WINDOW:
                    last_seen = beat.last
                    self._make_decision()
                    if last_seen:
                        self._finish_packet()
            else:
                if self._dropping:
                    pass  # swallow the rest of the packet
                else:
                    self._emit.append(self._apply_rewrites(beat, self._out_offset))
                    self._out_offset += len(beat.data)
                if beat.last:
                    self._finish_packet()

    def resources(self) -> Resources:
        # Parser + decision FSM + rewrite mux; table costs are added by
        # the concrete lookups that own tables.
        return Resources(luts=2_200, ffs=1_900, brams=1.0)
