"""Per-port statistics collector with a register-file face.

Every reference project hangs one of these off its datapath: packet and
byte counters per port, exposed to software over AXI4-Lite — the numbers
``rwaxi``-style management tools read out.
"""

from __future__ import annotations

from repro.core.axilite import RegisterFile
from repro.core.axis import AxiStreamChannel
from repro.core.module import Module, Resources


class StatsCollector(Module):
    """Passively observes a set of named channels and counts traffic."""

    def __init__(self, name: str, channels: list[tuple[str, AxiStreamChannel]]):
        super().__init__(name)
        if not channels:
            raise ValueError("stats collector needs at least one channel")
        self._channels = channels
        self.packets: dict[str, int] = {label: 0 for label, _ in channels}
        self.bytes: dict[str, int] = {label: 0 for label, _ in channels}
        self.registers = RegisterFile(f"{name}_regs")
        for i, (label, _) in enumerate(channels):
            self.registers.add_register(
                f"{label}_packets", i * 8, read_only=True,
                on_read=lambda l=label: self.packets[l] & 0xFFFFFFFF,
            )
            self.registers.add_register(
                f"{label}_bytes", i * 8 + 4, read_only=True,
                on_read=lambda l=label: self.bytes[l] & 0xFFFFFFFF,
            )

    def tick(self) -> None:
        for label, channel in self._channels:
            if channel.fire:
                beat = channel.beat
                assert beat is not None
                self.bytes[label] += len(beat.data)
                if beat.last:
                    self.packets[label] += 1

    def resources(self) -> Resources:
        n = len(self._channels)
        return Resources(luts=80 * n, ffs=96 * n)
