"""Per-port statistics collector with a register-file face.

Every reference project hangs one of these off its datapath: packet and
byte counters per port, exposed to software over AXI4-Lite — the numbers
``rwaxi``-style management tools read out.

:func:`counters_register_file` generalizes the same face for any bag of
live counters; the host driver uses it to surface its per-fault recovery
counters (retries, ring repairs, counted losses) through the project's
register map alongside the datapath statistics.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.axilite import RegisterFile
from repro.core.axis import AxiStreamChannel
from repro.core.module import Module, Resources


def counters_register_file(
    name: str, counters: Mapping[str, Callable[[], int]]
) -> RegisterFile:
    """A read-only register block exposing live counters.

    ``counters`` maps register name → zero-argument getter.  Two faces
    share the block:

    * the legacy low-word face — ``label`` at offset ``i*4``, the
      getter's value truncated to 32 bits (counters wider than
      ``0xFFFFFFFF`` wrap here, exactly like 32-bit hardware counters);
    * the 64-bit face — paired ``label_lo``/``label_hi`` registers after
      the legacy block, reading the low and high words of the full
      value, the way wide hardware counters are split across two 32-bit
      registers.

    Existing register offsets are unchanged; software that knows only
    the low-word face keeps working.
    """
    regs = RegisterFile(name)
    wide_base = len(counters) * 4
    for i, (label, getter) in enumerate(counters.items()):
        regs.add_register(
            label, i * 4, read_only=True,
            on_read=lambda g=getter: int(g()) & 0xFFFFFFFF,
        )
        regs.add_register(
            f"{label}_lo", wide_base + i * 8, read_only=True,
            on_read=lambda g=getter: int(g()) & 0xFFFFFFFF,
        )
        regs.add_register(
            f"{label}_hi", wide_base + i * 8 + 4, read_only=True,
            on_read=lambda g=getter: (int(g()) >> 32) & 0xFFFFFFFF,
        )
    return regs


class StatsCollector(Module):
    """Passively observes a set of named channels and counts traffic."""

    def __init__(self, name: str, channels: list[tuple[str, AxiStreamChannel]]):
        super().__init__(name)
        if not channels:
            raise ValueError("stats collector needs at least one channel")
        self._channels = channels
        self.packets: dict[str, int] = {label: 0 for label, _ in channels}
        self.bytes: dict[str, int] = {label: 0 for label, _ in channels}
        self.registers = RegisterFile(f"{name}_regs")
        # Legacy 32-bit face at [0, 8N), then 64-bit hi/lo pairs after it
        # so existing software offsets are preserved.
        wide_base = len(channels) * 8
        for i, (label, _) in enumerate(channels):
            self.registers.add_register(
                f"{label}_packets", i * 8, read_only=True,
                on_read=lambda l=label: self.packets[l] & 0xFFFFFFFF,
            )
            self.registers.add_register(
                f"{label}_bytes", i * 8 + 4, read_only=True,
                on_read=lambda l=label: self.bytes[l] & 0xFFFFFFFF,
            )
            self.registers.add_register(
                f"{label}_packets_lo", wide_base + i * 16, read_only=True,
                on_read=lambda l=label: self.packets[l] & 0xFFFFFFFF,
            )
            self.registers.add_register(
                f"{label}_packets_hi", wide_base + i * 16 + 4, read_only=True,
                on_read=lambda l=label: (self.packets[l] >> 32) & 0xFFFFFFFF,
            )
            self.registers.add_register(
                f"{label}_bytes_lo", wide_base + i * 16 + 8, read_only=True,
                on_read=lambda l=label: self.bytes[l] & 0xFFFFFFFF,
            )
            self.registers.add_register(
                f"{label}_bytes_hi", wide_base + i * 16 + 12, read_only=True,
                on_read=lambda l=label: (self.bytes[l] >> 32) & 0xFFFFFFFF,
            )

    def tick(self) -> None:
        for label, channel in self._channels:
            if channel.fire:
                beat = channel.beat
                assert beat is not None
                self.bytes[label] += len(beat.data)
                if beat.last:
                    self.packets[label] += 1

    def resources(self) -> Resources:
        n = len(self._channels)
        return Resources(luts=80 * n, ffs=96 * n)
