"""Token-bucket rate limiter.

OSNT's generator shapes each replayed stream to a configured rate; the
inter-packet delay module and per-port policers in contributed projects
are the same mechanism.  The bucket accumulates byte credits every cycle
and a packet may only start transmission when the bucket covers its full
length (start-of-packet gating, like the Verilog core).
"""

from __future__ import annotations

from repro.core.axis import AxiStreamChannel
from repro.core.module import Module, Resources


class RateLimiter(Module):
    """Pass-through stream brake: limits mean throughput to a byte rate.

    Deficit-style token bucket: a packet may *start* whenever the credit
    balance is non-negative, and its full length is then debited (the
    balance may go negative).  This is how hardware shapers avoid the
    classic token-bucket deadlock on packets longer than the bucket —
    any packet eventually transmits, and the long-run rate still
    converges to ``rate_bytes_per_cycle``.  Positive credit is capped at
    ``burst_bytes`` so an idle stream cannot bank unbounded burst.
    """

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        rate_bytes_per_cycle: float,
        burst_bytes: int = 4096,
    ):
        super().__init__(name)
        if rate_bytes_per_cycle <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.rate = rate_bytes_per_cycle
        self.burst_bytes = burst_bytes
        self._credit = float(burst_bytes)
        self._in_packet = False
        self.packets_passed = 0
        self.gated_cycles = 0
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def _gate_open(self) -> bool:
        if self._in_packet:
            return True  # never stall mid-packet — that would underrun a MAC
        return self.s_axis.beat is not None and self._credit >= 0.0

    def comb(self) -> None:
        open_ = self._gate_open()
        if bool(self.s_axis.tvalid) and open_:
            self.m_axis.drive(self.s_axis.beat)
            self.s_axis.set_ready(bool(self.m_axis.tready))
        else:
            self.m_axis.drive(None)
            self.s_axis.set_ready(False)

    def tick(self) -> None:
        self.m_axis.account()
        self._credit = min(self._credit + self.rate, float(self.burst_bytes))
        if bool(self.s_axis.tvalid) and not self._gate_open():
            self.gated_cycles += 1
        if self.m_axis.fire:
            beat = self.m_axis.beat
            assert beat is not None
            self._credit -= len(beat.data)
            self._in_packet = not beat.last
            if beat.last:
                self.packets_passed += 1

    def resources(self) -> Resources:
        return Resources(luts=220, ffs=180)
