"""Timestamping core, as used by OSNT.

OSNT's headline capability [1] is precise hardware timestamping: the
generator stamps a cycle-accurate counter into each departing packet at a
configurable byte offset, and the monitor records the arrival counter the
instant the first beat of a packet is seen.  Both operations happen in
the MAC-adjacent clock domain, so the precision is one datapath clock
(5 ns here) — the property experiment E5 measures.
"""

from __future__ import annotations

from repro.core.axis import AxiStreamBeat, AxiStreamChannel
from repro.core.module import Module, Resources

#: Stamp width: 64-bit cycle counter, matching OSNT's format.
STAMP_BYTES = 8


class TimestampCore(Module):
    """Inserts (tx mode) or records (rx mode) per-packet timestamps.

    * ``mode="insert"`` overwrites ``offset`` bytes into each packet with
      the current cycle counter (little-endian u64).
    * ``mode="record"`` leaves packets untouched and appends
      ``(stamp_in_packet, arrival_cycle)`` to :attr:`records`, reading
      the stamp from ``offset`` — the monitor side.
    """

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        mode: str = "insert",
        offset: int = 14,  # just past the Ethernet header by default
    ):
        super().__init__(name)
        if mode not in ("insert", "record"):
            raise ValueError("mode must be 'insert' or 'record'")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.mode = mode
        self.offset = offset
        self.cycle = 0
        self._pkt_offset = 0
        self._sop_cycle = 0  # counter latched at start-of-packet
        self._collect: bytearray = bytearray()
        self.records: list[tuple[int, int]] = []
        self.stamped = 0
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def comb(self) -> None:
        self.s_axis.set_ready(bool(self.m_axis.tready))
        beat = self.s_axis.beat
        if beat is None or not bool(self.s_axis.tvalid):
            self.m_axis.drive(None)
            return
        if self.mode == "insert":
            if self._pkt_offset == 0:
                # Latch the counter at start-of-packet, like the
                # hardware: all stamp bytes carry the SOP time even when
                # they span later beats.
                self._sop_cycle = self.cycle
            beat = self._stamped_beat(beat)
        self.m_axis.drive(beat)

    def _stamped_beat(self, beat: AxiStreamBeat) -> AxiStreamBeat:
        """Overwrite the stamp bytes that fall within this beat."""
        start = self._pkt_offset
        end = start + len(beat.data)
        stamp = self._sop_cycle.to_bytes(STAMP_BYTES, "little")
        s_lo, s_hi = self.offset, self.offset + STAMP_BYTES
        if s_hi <= start or s_lo >= end:
            return beat
        data = bytearray(beat.data)
        lo = max(s_lo, start)
        hi = min(s_hi, end)
        data[lo - start : hi - start] = stamp[lo - s_lo : hi - s_lo]
        return AxiStreamBeat(bytes(data), beat.last, beat.tuser)

    def tick(self) -> None:
        self.m_axis.account()
        if self.m_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            if self.mode == "record":
                self._collect += beat.data
                if beat.last:
                    if len(self._collect) >= self.offset + STAMP_BYTES:
                        stamp = int.from_bytes(
                            self._collect[self.offset : self.offset + STAMP_BYTES],
                            "little",
                        )
                        # Arrival is when the packet *started*: first beat.
                        arrival = self.cycle - (
                            (len(self._collect) - 1) // self.s_axis.width_bytes
                        )
                        self.records.append((stamp, arrival))
                    self._collect = bytearray()
            else:
                if self._pkt_offset == 0:
                    self.stamped += 1
                self._pkt_offset += len(beat.data)
                if beat.last:
                    self._pkt_offset = 0
        self.cycle += 1

    def resources(self) -> Resources:
        return Resources(luts=350, ffs=400)
