"""Output queues: per-port buffering and the pluggable scheduler.

The final stage of every reference pipeline.  Packets are replicated to
every port set in their TUSER destination mask (that is how flooding
works), buffered per port, and drained by a per-port scheduler.

The scheduler is the module's swap point for experiment E7 (the paper's
§3 scenario of "a researcher ... may choose to explore aspects of
hardware-based scheduling ... add a new scheduling module to the existing
reference router design"):

* ``fifo``   — one queue per port, FCFS (the reference behaviour);
* ``strict`` — ``classes`` priority queues, lowest class index first;
* ``drr``    — deficit round robin across ``classes`` queues.

Queues are byte-accounted and *drop on full* (the reference OQ drops,
it does not backpressure the pipeline — backpressuring would head-of-line
block other ports).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.arbiter import DeficitRoundRobin, StrictPriorityArbiter
from repro.core.axis import (
    AxiStreamBeat,
    AxiStreamChannel,
    StreamPacket,
    beats_to_packet,
    packet_to_beats,
)
from repro.core.metadata import SUME_TUSER
from repro.core.module import Module, Resources
from repro.cores.header_parser import parse_headers

SCHEDULERS = ("fifo", "strict", "drr")


@dataclass(frozen=True)
class QueueConfig:
    """Per-port queueing discipline configuration.

    ``ecn_threshold_bytes`` enables a simple AQM: once a port's buffered
    bytes exceed the threshold, ECN-capable IPv4 packets (ECT(0)/ECT(1))
    are marked Congestion Experienced on enqueue instead of waiting to
    be tail-dropped — the standard-queue half of DCTCP-style marking.
    """

    classes: int = 1
    capacity_bytes: int = 64 * 1024  # per class
    scheduler: str = "fifo"
    drr_quantum: int = 1500
    ecn_threshold_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}")
        if self.classes <= 0 or self.capacity_bytes <= 0:
            raise ValueError("classes and capacity must be positive")
        if self.scheduler == "fifo" and self.classes != 1:
            raise ValueError("fifo scheduling uses exactly one class")
        if self.ecn_threshold_bytes is not None and self.ecn_threshold_bytes <= 0:
            raise ValueError("ECN threshold must be positive")


def _mark_ce(packet: StreamPacket) -> Optional[StreamPacket]:
    """Return a CE-marked copy of an ECN-capable IPv4 packet, else None.

    ECT(0)=0b10 / ECT(1)=0b01 become CE=0b11; the IPv4 header checksum is
    updated incrementally (RFC 1624), like the hardware would.
    """
    from repro.packet.checksum import incremental_update16

    parsed = parse_headers(packet.data[:64])
    if not parsed.is_ipv4 or parsed.ip_header_offset is None:
        return None
    tos_at = parsed.ip_header_offset + 1
    ecn = packet.data[tos_at] & 0x3
    if ecn in (0b00, 0b11):  # not-ECT or already CE
        return None
    data = bytearray(packet.data)
    csum_at = parsed.ip_header_offset + 10
    # The TOS byte shares a 16-bit word with version/IHL.
    old_word = (data[tos_at - 1] << 8) | data[tos_at]
    data[tos_at] |= 0x3
    new_word = (data[tos_at - 1] << 8) | data[tos_at]
    old_csum = int.from_bytes(data[csum_at : csum_at + 2], "big")
    new_csum = incremental_update16(old_csum, old_word, new_word)
    data[csum_at : csum_at + 2] = new_csum.to_bytes(2, "big")
    return StreamPacket(bytes(data), packet.tuser)


def classify_by_dscp(classes: int) -> Callable[[StreamPacket], int]:
    """Map the IP DSCP field onto ``classes`` bands (high DSCP → class 0)."""

    def classify(packet: StreamPacket) -> int:
        parsed = parse_headers(packet.data[:64])
        if parsed.ip_dscp is None:
            return classes - 1
        band = parsed.ip_dscp * classes // 64
        return classes - 1 - min(band, classes - 1)

    return classify


class _PortState:
    """One egress port: its class queues, scheduler and emission state."""

    def __init__(self, port_bit: int, channel: AxiStreamChannel, config: QueueConfig):
        self.port_bit = port_bit
        self.channel = channel
        self.config = config
        self.queues: list[deque[StreamPacket]] = [deque() for _ in range(config.classes)]
        self.occupancy = [0] * config.classes
        self.current: deque[AxiStreamBeat] = deque()
        if config.scheduler == "strict":
            self.strict = StrictPriorityArbiter(config.classes)
        elif config.scheduler == "drr":
            self.drr = DeficitRoundRobin(config.classes, config.drr_quantum)
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.bytes_out = 0
        self.high_watermark = 0
        self.ecn_marked = 0

    def enqueue(self, packet: StreamPacket, class_idx: int, phantom: int = 0) -> bool:
        """Admit a packet; ``phantom`` is injected pressure (extra bytes
        of apparent backlog) that tightens both the drop and ECN checks."""
        if not 0 <= class_idx < self.config.classes:
            raise ValueError(f"class {class_idx} out of range")
        if (
            self.occupancy[class_idx] + phantom + packet.length
            > self.config.capacity_bytes
        ):
            self.dropped += 1
            return False
        threshold = self.config.ecn_threshold_bytes
        if threshold is not None and sum(self.occupancy) + phantom > threshold:
            marked = _mark_ce(packet)
            if marked is not None:
                packet = marked
                self.ecn_marked += 1
        self.queues[class_idx].append(packet)
        self.occupancy[class_idx] += packet.length
        self.enqueued += 1
        total = sum(self.occupancy)
        if total > self.high_watermark:
            self.high_watermark = total
        return True

    def _pick_class(self) -> Optional[int]:
        non_empty = [bool(q) for q in self.queues]
        if not any(non_empty):
            return None
        if self.config.scheduler == "fifo":
            return 0
        if self.config.scheduler == "strict":
            return self.strict.grant(non_empty)
        heads = [q[0].length if q else None for q in self.queues]
        return self.drr.next_queue(heads)

    def refill(self, width_bytes: int) -> None:
        """Pull the next scheduled packet into the emission register."""
        if self.current:
            return
        class_idx = self._pick_class()
        if class_idx is None:
            return
        packet = self.queues[class_idx].popleft()
        self.occupancy[class_idx] -= packet.length
        if self.config.scheduler == "strict":
            self.strict.advance(class_idx)
        self.dequeued += 1
        self.bytes_out += packet.length
        self.current.extend(packet_to_beats(packet, width_bytes))


class OutputQueues(Module):
    """One stream in, one stream out per egress port."""

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        ports: list[tuple[int, AxiStreamChannel]],
        config: QueueConfig = QueueConfig(),
        classify: Optional[Callable[[StreamPacket], int]] = None,
    ):
        super().__init__(name)
        if not ports:
            raise ValueError("output queues need at least one port")
        self.s_axis = s_axis
        self.config = config
        self.classify = classify if classify is not None else (lambda _p: 0)
        self.ports = [_PortState(bit, ch, config) for bit, ch in ports]
        self._assembly: list[AxiStreamBeat] = []
        self.unroutable = 0
        #: Fault-injection hook: phantom backlog bytes added to each
        #: enqueue decision — a pressure spike without real traffic.
        self.pressure_hook: Optional[Callable[[], int]] = None
        self.pressure_spikes = 0
        self.pressure_drops = 0
        for sig in s_axis.signals():
            self.adopt_signal(sig)
        for port in self.ports:
            for sig in port.channel.signals():
                self.adopt_signal(sig)

    def comb(self) -> None:
        # The OQ never backpressures the pipeline; it drops on full.
        self.s_axis.set_ready(True)
        for port in self.ports:
            port.channel.drive(port.current[0] if port.current else None)

    def tick(self) -> None:
        # Egress side first: pop fired beats, then refill idle ports.
        for port in self.ports:
            port.channel.account()
            if port.channel.fire:
                port.current.popleft()
            port.refill(port.channel.width_bytes)

        # Ingress side: assemble and route completed packets.
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            self._assembly.append(beat)
            if beat.last:
                packet = beats_to_packet(self._assembly)
                self._assembly = []
                self._route(packet)

    def _route(self, packet: StreamPacket) -> None:
        dst_bits = SUME_TUSER.extract(packet.tuser, "dst_port")
        matched = False
        class_idx = self.classify(packet)
        phantom = self.pressure_hook() if self.pressure_hook is not None else 0
        if phantom:
            self.pressure_spikes += 1
        for port in self.ports:
            if dst_bits & port.port_bit:
                matched = True
                if not port.enqueue(packet, class_idx, phantom) and phantom:
                    self.pressure_drops += 1
        if not matched:
            self.unroutable += 1

    # ------------------------------------------------------------------
    def port_stats(self) -> list[dict[str, int]]:
        return [
            {
                "port_bit": port.port_bit,
                "enqueued": port.enqueued,
                "dequeued": port.dequeued,
                "dropped": port.dropped,
                "bytes_out": port.bytes_out,
                "high_watermark": port.high_watermark,
                "ecn_marked": port.ecn_marked,
            }
            for port in self.ports
        ]

    def resources(self) -> Resources:
        # One RAMB36 stores 4.5 KB of packet data.
        per_port_brams = max(
            2.0, self.config.capacity_bytes * self.config.classes / 4_500
        )
        n = len(self.ports)
        sched_luts = {"fifo": 150, "strict": 300, "drr": 700}[self.config.scheduler]
        return Resources(
            luts=(600 + sched_luts) * n,
            ffs=500 * n,
            brams=per_port_brams * n + 1,
        )
