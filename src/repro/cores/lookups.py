"""Concrete output-port lookups for the NIC and switch projects.

Each class is one drop-in OPL stage (§3 modularity): identical stream
interfaces, different forwarding logic.
"""

from __future__ import annotations

from repro.core.axilite import RegisterFile
from repro.core.axis import AxiStreamChannel
from repro.core.metadata import (
    DMA_PORT_BITS,
    NUM_PHYS_PORTS,
    PHYS_PORT_BITS,
    SUME_TUSER,
    all_phys_ports_mask,
    dma_port_bit,
    phys_port_bit,
)
from repro.core.module import Resources
from repro.cores.cam import BinaryCam
from repro.cores.header_parser import parse_headers
from repro.cores.output_port_lookup import Decision, OutputPortLookup


class PassthroughLookup(OutputPortLookup):
    """Forwards with TUSER untouched — the I/O-exerciser's OPL.

    Whatever destination the ingress stage (or the test) wrote into
    TUSER is honoured; a zero destination is dropped, matching the
    reference behaviour of an unrouted packet.
    """

    def decide(self, header: bytes, tuser: int) -> Decision:
        if SUME_TUSER.extract(tuser, "dst_port") == 0:
            return Decision(tuser, drop=True, note="no_destination")
        return Decision(tuser, note="passthrough")


class NicLookup(OutputPortLookup):
    """The reference NIC's OPL: a fixed port↔host wiring.

    Traffic arriving on physical port *i* goes to DMA queue *i*; traffic
    arriving from DMA queue *i* goes out physical port *i*.  No tables,
    no parsing — which is why the NIC is the smallest reference design
    (visible in the E4 utilization comparison).
    """

    DECISION_LATENCY_CYCLES = 1  # a wired mapping: no table walk

    def decide(self, header: bytes, tuser: int) -> Decision:
        src = SUME_TUSER.extract(tuser, "src_port")
        for i in range(NUM_PHYS_PORTS):
            if src & phys_port_bit(i):
                dst = dma_port_bit(i)
                return Decision(SUME_TUSER.insert(tuser, "dst_port", dst), note="to_host")
            if src & dma_port_bit(i):
                dst = phys_port_bit(i)
                return Decision(SUME_TUSER.insert(tuser, "dst_port", dst), note="to_wire")
        return Decision(tuser, drop=True, note="unknown_source")

    def resources(self) -> Resources:
        return super().resources() + Resources(luts=120, ffs=90)


class LearningSwitchLookup(OutputPortLookup):
    """The reference (learning) switch's OPL.

    Learns source MAC → ingress port into an exact-match CAM; forwards
    to the learned port on a hit, floods all other physical ports on a
    miss or for group-addressed frames.  Host software can inspect and
    clear the table through the register file.

    ``vlan_aware=True`` enables the community-contributed 802.1Q
    enhancement (§1: projects "are regularly enhanced by community
    members"): the FDB key becomes (VID, MAC) and flooding is confined
    to ports that are members of the frame's VLAN.  Untagged traffic
    uses VID 0; a VLAN with no explicit membership spans all ports.
    """

    DECISION_LATENCY_CYCLES = 4  # learn + CAM lookup + encode

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        table_size: int = 512,
        learn: bool = True,
        vlan_aware: bool = False,
    ):
        super().__init__(name, s_axis, m_axis)
        self.vlan_aware = vlan_aware
        key_bits = 60 if vlan_aware else 48  # 12-bit VID + 48-bit MAC
        self.mac_table = BinaryCam(capacity=table_size, key_bits=key_bits)
        #: Backup next-hop column (fast reroute): same key space as the
        #: FDB, consulted only when the primary port has lost link.
        self.backup_table = BinaryCam(capacity=table_size, key_bits=key_bits)
        self.learn = learn
        #: VLAN membership: vid -> one-hot physical-port mask.
        self.vlan_members: dict[int, int] = {}
        self._vlan_generation = 0
        self.registers = RegisterFile(f"{name}_regs")
        self.registers.add_register(
            "lut_hits", 0x00, read_only=True,
            on_read=lambda: self.counters.get("hit", 0),
        )
        self.registers.add_register(
            "lut_misses", 0x04, read_only=True,
            on_read=lambda: self.counters.get("flood", 0),
        )
        self.registers.add_register(
            "table_size", 0x08, read_only=True, on_read=lambda: len(self.mac_table)
        )
        self.registers.add_register(
            "table_clear", 0x0C, on_write=lambda _v: self.mac_table.clear()
        )

    def set_vlan_members(self, vid: int, port_mask: int) -> None:
        """Restrict VLAN ``vid`` flooding to ``port_mask`` (one-hot)."""
        if not 0 <= vid <= 0xFFF:
            raise ValueError(f"VLAN ID out of range: {vid}")
        if self.vlan_members.get(vid) != port_mask:
            self._vlan_generation += 1
        self.vlan_members[vid] = port_mask

    def state_generation(self) -> int:
        return (
            super().state_generation()
            + self.mac_table.generation
            + self.backup_table.generation
            + self._vlan_generation
        )

    def _fdb_key(self, mac_value: int, vid: int) -> int:
        return (vid << 48) | mac_value if self.vlan_aware else mac_value

    def decide(self, header: bytes, tuser: int) -> Decision:
        parsed = parse_headers(header)
        src_bits = SUME_TUSER.extract(tuser, "src_port")
        if parsed.src_mac is None:
            return Decision(tuser, drop=True, note="runt")
        vid = (parsed.vlan_vid or 0) if self.vlan_aware else 0
        members = self.vlan_members.get(vid, all_phys_ports_mask())
        if self.vlan_aware and not (src_bits & members):
            # Frame arrived on a port outside its VLAN: drop at ingress.
            return Decision(tuser, drop=True, note="vlan_violation")
        if self.learn and not parsed.src_mac.is_multicast:
            self.mac_table.insert(self._fdb_key(parsed.src_mac.value, vid), src_bits)
        assert parsed.dst_mac is not None
        if not parsed.dst_mac.is_multicast:
            key = self._fdb_key(parsed.dst_mac.value, vid)
            hit = self.mac_table.lookup(key)
            if hit is not None:
                if hit == src_bits:
                    # Destination is back out the ingress port: filter.
                    return Decision(tuser, drop=True, note="same_port_filter")
                if hit & self.port_liveness:
                    return Decision(
                        SUME_TUSER.insert(tuser, "dst_port", hit), note="hit"
                    )
                # Primary port is dead: fall over to the precomputed
                # backup next-hop, still inside this packet's walk.
                backup = self.backup_table.lookup(key)
                if (
                    backup is not None
                    and backup & self.port_liveness
                    and backup != src_bits
                ):
                    return Decision(
                        SUME_TUSER.insert(tuser, "dst_port", backup),
                        note="frr_reroute",
                    )
                return Decision(tuser, drop=True, note="frr_blackhole")
        flood = all_phys_ports_mask(exclude=src_bits) & members & self.port_liveness
        if flood == 0:
            return Decision(tuser, drop=True, note="no_flood_targets")
        return Decision(SUME_TUSER.insert(tuser, "dst_port", flood), note="flood")

    def resources(self) -> Resources:
        return (
            super().resources()
            + self.mac_table.resources()
            + self.backup_table.resources()
            + Resources(luts=400, ffs=300)
        )


class SwitchLiteLookup(OutputPortLookup):
    """The reference switch_lite OPL: CAM-less crossbar switching.

    A static port-mapping switch (out = the "other" port pair), the
    cheapest possible switch — used by the E3/E4 comparisons as the
    lower bound on switching cost.  Port pairs: 0↔1, 2↔3.
    """

    DECISION_LATENCY_CYCLES = 1  # static crossing

    def decide(self, header: bytes, tuser: int) -> Decision:
        src = SUME_TUSER.extract(tuser, "src_port")
        mapping = {
            PHYS_PORT_BITS[0]: PHYS_PORT_BITS[1],
            PHYS_PORT_BITS[1]: PHYS_PORT_BITS[0],
            PHYS_PORT_BITS[2]: PHYS_PORT_BITS[3],
            PHYS_PORT_BITS[3]: PHYS_PORT_BITS[2],
            DMA_PORT_BITS[0]: PHYS_PORT_BITS[0],
            DMA_PORT_BITS[1]: PHYS_PORT_BITS[1],
            DMA_PORT_BITS[2]: PHYS_PORT_BITS[2],
            DMA_PORT_BITS[3]: PHYS_PORT_BITS[3],
        }
        dst = mapping.get(src)
        if dst is None:
            return Decision(tuser, drop=True, note="unknown_source")
        return Decision(SUME_TUSER.insert(tuser, "dst_port", dst), note="crossed")

    def resources(self) -> Resources:
        return super().resources() + Resources(luts=60, ffs=40)
