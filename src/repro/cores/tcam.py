"""Ternary CAM (value/mask matching with priority).

The BlueSwitch/OpenFlow flow tables and the reference router's routing
table are TCAMs: each entry matches ``(key & mask) == value`` and the
lowest-index (highest-priority) match wins, exactly like hardware
priority encoding.  Entries occupy explicit slots so software can manage
placement, mirroring the register-level interface of the real cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.module import Resources


@dataclass(frozen=True)
class TcamEntry:
    """One slot: matches when ``(key & mask) == (value & mask)``."""

    value: int
    mask: int
    result: int

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)


class Tcam:
    """Slot-addressed ternary match table with priority = slot order."""

    def __init__(self, slots: int, key_bits: int):
        if slots <= 0:
            raise ValueError("TCAM needs at least one slot")
        if key_bits <= 0:
            raise ValueError("key width must be positive")
        self.slots = slots
        self.key_bits = key_bits
        self._table: list[Optional[TcamEntry]] = [None] * slots
        self.lookups = 0
        self.hits = 0

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range (0..{self.slots - 1})")

    def _check_key(self, key: int) -> None:
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key:#x} wider than {self.key_bits} bits")

    def write_slot(self, slot: int, entry: Optional[TcamEntry]) -> None:
        """Install (or clear, with None) one slot."""
        self._check_slot(slot)
        if entry is not None:
            self._check_key(entry.value)
            self._check_key(entry.mask)
        self._table[slot] = entry

    def read_slot(self, slot: int) -> Optional[TcamEntry]:
        self._check_slot(slot)
        return self._table[slot]

    def lookup(self, key: int) -> Optional[tuple[int, int]]:
        """Priority lookup; returns ``(slot, result)`` or None."""
        self._check_key(key)
        self.lookups += 1
        for slot, entry in enumerate(self._table):
            if entry is not None and entry.matches(key):
                self.hits += 1
                return slot, entry.result
        return None

    def occupancy(self) -> int:
        return sum(1 for entry in self._table if entry is not None)

    def clear(self) -> None:
        self._table = [None] * self.slots

    def snapshot(self) -> list[Optional[TcamEntry]]:
        """A copy of the table — used by consistent-update verification."""
        return list(self._table)

    def restore(self, entries: list[Optional[TcamEntry]]) -> None:
        if len(entries) != self.slots:
            raise ValueError("snapshot size mismatch")
        self._table = list(entries)

    def resources(self) -> Resources:
        """SRL/LUT-based TCAM cost: expensive per bit, the reason real
        designs keep routing tables small (the reference router has 32
        LPM slots)."""
        luts = self.slots * self.key_bits  # ~1 LUT per ternary bit
        ffs = self.slots * (self.key_bits // 2)
        return Resources(luts=300 + luts, ffs=200 + ffs)
