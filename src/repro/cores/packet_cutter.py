"""Packet cutter (snap-length truncation).

OSNT's monitor can "cut" captured packets to a snap length so that
capture bandwidth to the host stays bounded while headers (and the
embedded timestamp) are preserved — the same trade tcpdump's ``-s``
makes.  TUSER's ``len`` field keeps the *original* length, so analysis
knows what was truncated (mirrored by pcap's ``orig_len``).
"""

from __future__ import annotations

from repro.core.axis import AxiStreamBeat, AxiStreamChannel
from repro.core.module import Module, Resources


class PacketCutter(Module):
    """Truncates every packet on the stream to ``snap_bytes``."""

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        snap_bytes: int = 64,
    ):
        super().__init__(name)
        if snap_bytes <= 0:
            raise ValueError("snap length must be positive")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.snap_bytes = snap_bytes
        self._offset = 0
        self._swallowing = False
        self.packets = 0
        self.truncated = 0
        for ch in (s_axis, m_axis):
            for sig in ch.signals():
                self.adopt_signal(sig)

    def _transform(self, beat: AxiStreamBeat) -> AxiStreamBeat | None:
        """The beat to emit for the current input beat, or None to swallow."""
        if self._swallowing:
            return None
        end = self._offset + len(beat.data)
        if end <= self.snap_bytes:
            # Entirely within the snap window; force TLAST if the cut
            # lands exactly on this beat's end and more data follows.
            if end == self.snap_bytes and not beat.last:
                return AxiStreamBeat(beat.data, True, beat.tuser)
            return beat
        keep = self.snap_bytes - self._offset
        if keep <= 0:
            return None
        return AxiStreamBeat(beat.data[:keep], True, beat.tuser)

    def comb(self) -> None:
        beat = self.s_axis.beat if bool(self.s_axis.tvalid) else None
        out = self._transform(beat) if beat is not None else None
        self.m_axis.drive(out)
        if beat is not None and out is None:
            # Swallowed beat: consume without the output's consent.
            self.s_axis.set_ready(True)
        else:
            self.s_axis.set_ready(bool(self.m_axis.tready))

    def tick(self) -> None:
        self.m_axis.account()
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            emitted = self._transform(beat)
            self._offset += len(beat.data)
            if emitted is not None and emitted.last and not beat.last:
                self._swallowing = True
            if beat.last:
                self.packets += 1
                if self._offset > self.snap_bytes:
                    self.truncated += 1
                self._offset = 0
                self._swallowing = False

    def resources(self) -> Resources:
        return Resources(luts=280, ffs=220)
