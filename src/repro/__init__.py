"""repro — a full-platform reproduction of *NetFPGA: Rapid Prototyping of
Networking Devices in Open Source* (Zilberman et al., SIGCOMM 2015).

The package mirrors the NetFPGA platform's layering:

=====================  ====================================================
:mod:`repro.core`      HDL-style simulation kernel (cycle + event engines,
                       AXI4-Stream / AXI4-Lite, VCD tracing)
:mod:`repro.packet`    packet library: Ethernet/VLAN/ARP/IPv4/ICMP/UDP/TCP,
                       checksums, pcap, workload generators
:mod:`repro.board`     the NetFPGA SUME board: FPGA resource model, serial
                       links, 10/40/100G MACs, QDRII+/DDR3, PCIe DMA,
                       storage, power telemetry
:mod:`repro.cores`     the reusable gateware building blocks
:mod:`repro.fabric`    fabric workload engine: topology builders, seeded
                       flow workloads, deterministic concurrent
                       scheduling, sharded parallel execution
:mod:`repro.faults`    deterministic fault injection + recovery accounting
:mod:`repro.projects`  reference projects (NIC, switch, router, acceptance
                       test) and contributed projects (OSNT, BlueSwitch)
:mod:`repro.host`      host software: driver, managers, OpenFlow control
:mod:`repro.soft`      the soft-core processor and sample firmware
:mod:`repro.testenv`   the unified sim/hw test environment
=====================  ====================================================

Quickstart::

    from repro.projects import ReferenceSwitch
    from repro.testenv import run_sim, Stimulus
    from repro.projects.base import PortRef

    switch = ReferenceSwitch()
    result = run_sim(switch, [Stimulus(PortRef("phys", 0), my_frame)])
"""

__version__ = "1.0.0"

from repro import (
    board,
    core,
    cores,
    fabric,
    faults,
    host,
    packet,
    projects,
    soft,
    testenv,
    utils,
)

__all__ = [
    "board",
    "core",
    "cores",
    "fabric",
    "faults",
    "host",
    "packet",
    "projects",
    "soft",
    "testenv",
    "utils",
    "__version__",
]
