"""The SUME datapath side-band metadata (TUSER) convention.

Every packet travelling through a NetFPGA reference pipeline carries a
128-bit TUSER word on its first beat:

===========  =====  ==================================================
bits          name  meaning
===========  =====  ==================================================
[15:0]        len   packet length in bytes (excluding FCS)
[23:16]       src   source port, one-hot
[31:24]       dst   destination port(s), one-hot (0 = drop / not yet set)
[127:32]      user  free for project-specific use
===========  =====  ==================================================

The 8-bit one-hot port encoding interleaves physical and DMA ports, the
convention used by the NetFPGA-10G/SUME reference designs:

* bit 0, 2, 4, 6 — physical ports nf0..nf3 (the four SFP+ cages)
* bit 1, 3, 5, 7 — DMA queues 0..3 (the host CPU path)
"""

from __future__ import annotations

from repro.utils.bitfield import BitField

#: Width of the TUSER word in bits.
SUME_TUSER_WIDTH = 128

SUME_TUSER = BitField(
    SUME_TUSER_WIDTH,
    [
        ("len", 16),
        ("src_port", 8),
        ("dst_port", 8),
        ("user", 96),
    ],
)

#: Compiled packer for the ingress-side TUSER build — the one fixed
#: field pattern every behavioural forward and every injection executes.
#: ``pack_tuser_len_src(length, src_bit)`` ==
#: ``SUME_TUSER.pack(len=length, src_port=src_bit)``, including the
#: out-of-range errors.
pack_tuser_len_src = SUME_TUSER.packer("len", "src_port")

#: Number of physical (SFP+) ports on a SUME board.
NUM_PHYS_PORTS = 4
#: Number of DMA queues towards the host.
NUM_DMA_PORTS = 4

PHYS_PORT_BITS = tuple(1 << (2 * i) for i in range(NUM_PHYS_PORTS))
DMA_PORT_BITS = tuple(1 << (2 * i + 1) for i in range(NUM_DMA_PORTS))


def phys_port_bit(index: int) -> int:
    """One-hot bit for physical port ``nf<index>``."""
    if not 0 <= index < NUM_PHYS_PORTS:
        raise ValueError(f"physical port index out of range: {index}")
    return PHYS_PORT_BITS[index]


def dma_port_bit(index: int) -> int:
    """One-hot bit for DMA queue ``index``."""
    if not 0 <= index < NUM_DMA_PORTS:
        raise ValueError(f"DMA queue index out of range: {index}")
    return DMA_PORT_BITS[index]


def all_phys_ports_mask(exclude: int = 0) -> int:
    """One-hot mask of every physical port, minus the ``exclude`` mask.

    This is the broadcast/flood destination used by the learning switch.
    """
    bits = 0
    for bit in PHYS_PORT_BITS:
        bits |= bit
    return bits & ~exclude


def port_bits_to_indices(bits: int) -> list[tuple[str, int]]:
    """Decode a one-hot port mask into ``[("phys"|"dma", index), ...]``."""
    out: list[tuple[str, int]] = []
    for i, bit in enumerate(PHYS_PORT_BITS):
        if bits & bit:
            out.append(("phys", i))
    for i, bit in enumerate(DMA_PORT_BITS):
        if bits & bit:
            out.append(("dma", i))
    return out
