"""HDL-style simulation kernel.

This package stands in for the Verilog simulation environment that NetFPGA
designs are developed against.  It provides two complementary engines:

* :class:`~repro.core.simulator.Simulator` — a cycle-driven, two-phase
  kernel (combinational settle, then synchronous tick) for handshake-level
  datapath modelling.  Datapath cores in :mod:`repro.cores` are written
  against it using AXI4-Stream channels, exactly mirroring the structure of
  the NetFPGA reference Verilog.
* :class:`~repro.core.eventsim.EventSimulator` — a discrete-event engine
  used by the behavioural board models (memory timing, MAC serialization,
  PCIe DMA) where per-cycle fidelity is unnecessary.

Both engines are deterministic: identical inputs produce identical traces.
"""

from repro.core.axilite import AxiLiteError, AxiLiteInterconnect, RegisterFile
from repro.core.axis import (
    AxiStreamBeat,
    AxiStreamChannel,
    StreamMonitor,
    StreamPacket,
    StreamSink,
    StreamSource,
    beats_to_packet,
    packet_to_beats,
)
from repro.core.eventsim import EventSimulator
from repro.core.metadata import (
    DMA_PORT_BITS,
    PHYS_PORT_BITS,
    SUME_TUSER,
    all_phys_ports_mask,
    dma_port_bit,
    phys_port_bit,
    port_bits_to_indices,
)
from repro.core.module import Module, Resources
from repro.core.signal import Signal
from repro.core.simulator import CombLoopError, SimulationError, Simulator
from repro.core.vcd import VcdWriter

__all__ = [
    "AxiLiteError",
    "AxiLiteInterconnect",
    "RegisterFile",
    "AxiStreamBeat",
    "AxiStreamChannel",
    "StreamMonitor",
    "StreamPacket",
    "StreamSink",
    "StreamSource",
    "beats_to_packet",
    "packet_to_beats",
    "EventSimulator",
    "SUME_TUSER",
    "PHYS_PORT_BITS",
    "DMA_PORT_BITS",
    "phys_port_bit",
    "dma_port_bit",
    "all_phys_ports_mask",
    "port_bits_to_indices",
    "Module",
    "Resources",
    "Signal",
    "Simulator",
    "SimulationError",
    "CombLoopError",
    "VcdWriter",
]
