"""Value Change Dump (VCD) trace writer.

NetFPGA development leans on waveform inspection; this writer lets any
kernel simulation dump its boolean/integer signals to a standard ``.vcd``
file that GTKWave (or any other viewer) opens directly.  Non-scalar
signals (beat objects) are traced as a 1-bit validity strobe.

Usage::

    sim = Simulator()
    top = sim.add(build_design())
    with VcdWriter("trace.vcd", sim, top.all_signals()) as vcd:
        sim.step(1000)
"""

from __future__ import annotations

from typing import IO, Iterable, Optional

from repro.core.signal import Signal
from repro.core.simulator import Simulator

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index`` (base-94 ASCII)."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdWriter:
    """Streams signal changes to a VCD file, one timestep per clock cycle."""

    INT_WIDTH = 64

    def __init__(self, path: str, sim: Simulator, signals: Iterable[Signal]):
        self.path = path
        self._sim = sim
        self._signals = list(signals)
        self._ids = {id(s): _identifier(i) for i, s in enumerate(self._signals)}
        self._last: dict[int, Optional[str]] = {id(s): None for s in self._signals}
        self._file: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "VcdWriter":
        self._file = open(self.path, "w", encoding="ascii")
        self._write_header()
        self._dump(0)
        self._sim.add_cycle_hook(self._on_cycle)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        assert self._file is not None
        period_ps = int(self._sim.clock_period_ns * 1000)
        self._file.write("$date repro NetFPGA kernel trace $end\n")
        self._file.write("$version repro 1.0 $end\n")
        self._file.write("$timescale 1ps $end\n")
        self._file.write("$scope module top $end\n")
        # Group signals into per-module scopes by their first name
        # component, so GTKWave shows the design hierarchy.
        by_scope: dict[str, list] = {}
        for sig in self._signals:
            scope, _, leaf = sig.name.partition(".")
            if not leaf:
                scope, leaf = "", sig.name
            by_scope.setdefault(scope, []).append((leaf, sig))
        for scope in sorted(by_scope):
            if scope:
                safe_scope = scope.replace(" ", "_")
                self._file.write(f"$scope module {safe_scope} $end\n")
            for leaf, sig in by_scope[scope]:
                width = self._width_of(sig)
                safe = leaf.replace(" ", "_")
                self._file.write(
                    f"$var wire {width} {self._ids[id(sig)]} {safe} $end\n"
                )
            if scope:
                self._file.write("$upscope $end\n")
        self._file.write("$upscope $end\n$enddefinitions $end\n")
        self._period_ps = period_ps

    @staticmethod
    def _width_of(sig: Signal) -> int:
        if isinstance(sig.value, bool):
            return 1
        if isinstance(sig.value, int):
            return VcdWriter.INT_WIDTH
        return 1  # object-valued: traced as validity strobe

    @staticmethod
    def _render(sig: Signal) -> str:
        value = sig.value
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, int):
            return format(value & ((1 << VcdWriter.INT_WIDTH) - 1), "b")
        return "0" if value is None else "1"

    def _dump(self, cycle: int) -> None:
        assert self._file is not None
        emitted_time = False
        for sig in self._signals:
            rendered = self._render(sig)
            if rendered == self._last[id(sig)]:
                continue
            if not emitted_time:
                self._file.write(f"#{cycle * self._period_ps}\n")
                emitted_time = True
            ident = self._ids[id(sig)]
            if self._width_of(sig) == 1:
                self._file.write(f"{rendered}{ident}\n")
            else:
                self._file.write(f"b{rendered} {ident}\n")
            self._last[id(sig)] = rendered

    def _on_cycle(self, cycle: int) -> None:
        if self._file is not None:
            self._dump(cycle)
