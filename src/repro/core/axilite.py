"""AXI4-Lite control-plane model: register files and the interconnect.

NetFPGA projects expose all configuration and statistics through memory-
mapped registers reached over AXI4-Lite from the host (via PCIe) or from
the on-board soft-core.  Control-plane accesses are orders of magnitude
slower and rarer than datapath traffic, so this model is transactional
(one call = one completed bus transaction) rather than cycle-driven; an
optional per-access latency lets the DMA/driver models account for MMIO
round-trip time.

Addresses and data are 32-bit, matching the reference designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

WORD_MASK = 0xFFFFFFFF


class AxiLiteError(RuntimeError):
    """Raised for decode errors (unmapped address, write to RO register)."""


@dataclass
class _Register:
    name: str
    offset: int
    value: int
    read_only: bool
    on_read: Optional[Callable[[], int]]
    on_write: Optional[Callable[[int], None]]


class RegisterFile:
    """A block of 32-bit registers at word-aligned offsets.

    Registers may be plain storage, or backed by callbacks so a core can
    expose live state (counters) and side-effecting commands (table
    writes) — the same split the Verilog register modules make between
    ``rw`` and ``wo``/``ro`` registers.
    """

    def __init__(self, name: str):
        self.name = name
        self._by_offset: dict[int, _Register] = {}
        self._by_name: dict[str, _Register] = {}

    def add_register(
        self,
        name: str,
        offset: int,
        init: int = 0,
        read_only: bool = False,
        on_read: Optional[Callable[[], int]] = None,
        on_write: Optional[Callable[[int], None]] = None,
    ) -> None:
        if offset % 4 != 0:
            raise AxiLiteError(f"register {name!r} offset {offset:#x} not word-aligned")
        if offset in self._by_offset:
            raise AxiLiteError(f"offset {offset:#x} already occupied in {self.name}")
        if name in self._by_name:
            raise AxiLiteError(f"duplicate register name {name!r} in {self.name}")
        reg = _Register(name, offset, init & WORD_MASK, read_only, on_read, on_write)
        self._by_offset[offset] = reg
        self._by_name[name] = reg

    # -- bus-facing access (by offset) ---------------------------------
    def read(self, offset: int) -> int:
        reg = self._by_offset.get(offset)
        if reg is None:
            raise AxiLiteError(f"read decode error at {self.name}+{offset:#x}")
        if reg.on_read is not None:
            return reg.on_read() & WORD_MASK
        return reg.value

    def write(self, offset: int, value: int) -> None:
        reg = self._by_offset.get(offset)
        if reg is None:
            raise AxiLiteError(f"write decode error at {self.name}+{offset:#x}")
        if reg.read_only:
            raise AxiLiteError(f"write to read-only register {self.name}.{reg.name}")
        value &= WORD_MASK
        if reg.on_write is not None:
            reg.on_write(value)
        else:
            reg.value = value

    # -- software-facing access (by name) ------------------------------
    def offset_of(self, name: str) -> int:
        return self._by_name[name].offset

    def peek(self, name: str) -> int:
        return self.read(self._by_name[name].offset)

    def poke(self, name: str, value: int) -> None:
        self.write(self._by_name[name].offset, value)

    def registers(self) -> list[tuple[str, int]]:
        """``[(name, offset), ...]`` sorted by offset — the register map."""
        return sorted(
            ((r.name, r.offset) for r in self._by_offset.values()), key=lambda t: t[1]
        )


class AxiLiteInterconnect:
    """Routes 32-bit accesses to register files by base address.

    The reference designs allocate each pipeline stage a 64 KiB window;
    :meth:`attach` enforces non-overlap so a mis-assembled project fails
    at build time, like a bad address map would fail in synthesis.
    """

    def __init__(self, name: str = "axi_interconnect", access_latency_ns: float = 160.0):
        self.name = name
        #: Modelled MMIO round-trip (PCIe read ≈ 1 µs in reality; the
        #: default models a posted write / register read at the board).
        self.access_latency_ns = access_latency_ns
        self._windows: list[tuple[int, int, RegisterFile]] = []
        self.reads = 0
        self.writes = 0
        #: Fault-injection hook, consulted before each read decodes; it
        #: may raise to model a read that times out on the bus.  Reads
        #: are non-posted, so timeouts surface to software.
        self.read_fault_hook: Optional[Callable[[int], None]] = None
        #: Fault-injection hook for the posted-write path.  Writes are
        #: posted, so a lost or mangled write is *silent* to software:
        #: the hook returns ``None`` to swallow the write entirely, or a
        #: (possibly altered) value that lands instead.  Software only
        #: notices by reading back — which is what the driver's
        #: verified-write path does.
        self.write_fault_hook: Optional[Callable[[int, int], Optional[int]]] = None

    def attach(self, base: int, size: int, regfile: RegisterFile) -> None:
        if base % 4 != 0 or size <= 0:
            raise AxiLiteError(f"bad window base={base:#x} size={size:#x}")
        for other_base, other_size, other in self._windows:
            if base < other_base + other_size and other_base < base + size:
                raise AxiLiteError(
                    f"window {regfile.name} [{base:#x},+{size:#x}) overlaps "
                    f"{other.name} [{other_base:#x},+{other_size:#x})"
                )
        self._windows.append((base, size, regfile))
        self._windows.sort(key=lambda t: t[0])

    def _decode(self, addr: int) -> tuple[RegisterFile, int]:
        for base, size, regfile in self._windows:
            if base <= addr < base + size:
                return regfile, addr - base
        raise AxiLiteError(f"address {addr:#x} does not decode to any window")

    def read(self, addr: int) -> int:
        if self.read_fault_hook is not None:
            self.read_fault_hook(addr)
        regfile, offset = self._decode(addr)
        self.reads += 1
        return regfile.read(offset)

    def write(self, addr: int, value: int) -> None:
        if self.write_fault_hook is not None:
            faulted = self.write_fault_hook(addr, value)
            if faulted is None:
                # Dropped posted write: the bus transaction completed
                # from the master's point of view, so it still counts.
                self.writes += 1
                return
            value = faulted
        regfile, offset = self._decode(addr)
        self.writes += 1
        regfile.write(offset, value)

    def memory_map(self) -> list[tuple[int, int, str]]:
        """``[(base, size, name), ...]`` — the project's address map."""
        return [(base, size, rf.name) for base, size, rf in self._windows]
