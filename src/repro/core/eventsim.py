"""Discrete-event simulation engine for the behavioural board models.

Where the cycle-driven kernel models *how* a design behaves per clock, the
event engine models *when* things happen in wall-clock (simulated
nanosecond) time: a DDR3 row activation completing, a frame finishing
serialization on a 10G lane, a DMA descriptor write-back.  Those models
need timestamps, not handshakes, and an event queue is both the natural
formulation and several orders of magnitude faster.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class EventSimulator:
    """A classic calendar-queue discrete-event simulator.

    Events are ``(time_ns, sequence, callback)`` triples; the sequence
    number makes simultaneous events fire in scheduling order, keeping the
    simulation fully deterministic.
    """

    def __init__(self):
        self.now_ns: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    def schedule(self, delay_ns: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay_ns``."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay {delay_ns})")
        heapq.heappush(
            self._queue, (self.now_ns + delay_ns, next(self._sequence), callback)
        )

    def schedule_at(self, time_ns: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``time_ns``."""
        self.schedule(time_ns - self.now_ns, callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def run(self, until_ns: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Drain the queue, optionally stopping the clock at ``until_ns``.

        ``max_events`` guards against run-away self-rescheduling models.
        """
        processed = 0
        while self._queue:
            time_ns, _, callback = self._queue[0]
            if until_ns is not None and time_ns > until_ns:
                break
            heapq.heappop(self._queue)
            self.now_ns = time_ns
            callback()
            processed += 1
            self.events_processed += 1
            if processed >= max_events:
                raise RuntimeError(f"exceeded {max_events} events in one run() call")
        if until_ns is not None and until_ns > self.now_ns:
            self.now_ns = until_ns

    def run_until_idle(self) -> None:
        self.run(until_ns=None)


class Process:
    """Helper for models that are a chain of timed steps.

    Wraps a generator yielding delays (ns); each yield suspends the
    process for that long.  This gives behavioural models SimPy-style
    coroutine processes on top of :class:`EventSimulator` with no
    dependencies::

        def refill(self):
            while True:
                yield 8.0          # one credit every 8 ns
                self.credits += 1

        Process(sim, refill(self))
    """

    def __init__(self, sim: EventSimulator, generator: Any):
        self._sim = sim
        self._generator = generator
        self.finished = False
        self._advance()

    def _advance(self) -> None:
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        self._sim.schedule(float(delay), self._advance)
