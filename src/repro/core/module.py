"""Module base class and the FPGA resource declaration carried by each core.

A module in this kernel corresponds to a Verilog module in a NetFPGA
project: it owns registered state, drives output signals combinationally,
and updates state on the clock edge.  The split is:

* :meth:`Module.comb` — combinational phase.  May read any signal and drive
  output signals.  Called repeatedly until the design settles; it must be
  idempotent (pure function of signal values and registered state).
* :meth:`Module.tick` — clock edge.  Updates registered state; may read
  signals but drives none (drives take effect next comb phase anyway).

Every module also declares its synthesis cost via :meth:`Module.resources`,
which feeds the Virtex-7 utilization model (claim C4 of the paper: "users
can compare design utilization and performance").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.signal import Signal


@dataclass(frozen=True)
class Resources:
    """Post-synthesis resource footprint of a module instance.

    Units match Xilinx report_utilization: LUTs, flip-flops, 36Kb block
    RAMs (fractional halves allowed for RAMB18), and DSP48 slices.
    """

    luts: int = 0
    ffs: int = 0
    brams: float = 0.0
    dsps: int = 0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            dsps=self.dsps + other.dsps,
        )

    def scaled(self, factor: float) -> "Resources":
        """Scale a footprint, e.g. for N-port replicated logic."""
        return Resources(
            luts=round(self.luts * factor),
            ffs=round(self.ffs * factor),
            brams=self.brams * factor,
            dsps=round(self.dsps * factor),
        )


class Module:
    """Base class for all synthesizable datapath modules.

    Subclasses create their signals with :meth:`signal` and their child
    modules with :meth:`submodule`; the simulator walks the resulting tree.
    """

    def __init__(self, name: str):
        self.name = name
        self._signals: list[Signal] = []
        self._children: list[Module] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def signal(self, name: str, init: Any = 0) -> Signal:
        """Create and register a signal scoped to this module."""
        sig = Signal(f"{self.name}.{name}", init)
        self._signals.append(sig)
        return sig

    def adopt_signal(self, sig: Signal) -> Signal:
        """Register an externally created signal (e.g. a channel's) for tracing."""
        self._signals.append(sig)
        return sig

    def submodule(self, child: "Module") -> "Module":
        """Register a child module; returns it for assignment chaining."""
        self._children.append(child)
        return child

    # ------------------------------------------------------------------
    # Simulation interface (overridden by subclasses)
    # ------------------------------------------------------------------
    def comb(self) -> None:
        """Combinational phase.  Default: nothing to drive."""

    def tick(self) -> None:
        """Clock-edge phase.  Default: no registered state."""

    def resources(self) -> Resources:
        """Own resource cost, excluding children (see :meth:`total_resources`)."""
        return Resources()

    # ------------------------------------------------------------------
    # Tree walking
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Module"]:
        """Yield this module and every descendant, depth-first."""
        yield self
        for child in self._children:
            yield from child.walk()

    def all_signals(self) -> Iterator[Signal]:
        for module in self.walk():
            yield from module._signals

    def total_resources(self) -> Resources:
        """Aggregate resource cost of this module and all descendants."""
        total = Resources()
        for module in self.walk():
            total = total + module.resources()
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
