"""AXI4-Stream channel model.

The NetFPGA reference pipeline is a chain of modules connected by
AXI4-Stream links (256-bit TDATA plus the 128-bit SUME TUSER side-band).
:class:`AxiStreamChannel` models one such link at beat granularity with the
full valid/ready handshake, which is what gives the kernel its fidelity:
backpressure, pipeline bubbles and head-of-line blocking all emerge from
the handshake exactly as they do in the Verilog.

A *beat* carries up to ``width_bytes`` of payload (TKEEP is implied by the
payload length, which AXI4-Stream permits for packet-aligned streams), a
TLAST marker and the TUSER word.  Helper functions convert between whole
packets and beat sequences, and :class:`StreamSource` /
:class:`StreamSink` are the standard test-bench drivers (the equivalents
of the NetFPGA simulation environment's packet stimuli).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.metadata import SUME_TUSER
from repro.core.module import Module
from repro.core.signal import Signal

#: Datapath width of the SUME reference pipeline: 256 bits.
DEFAULT_WIDTH_BYTES = 32


@dataclass(frozen=True)
class AxiStreamBeat:
    """One transfer on an AXI4-Stream link."""

    data: bytes
    last: bool
    tuser: int = 0

    def __post_init__(self) -> None:
        if not self.data:
            raise ValueError("a beat must carry at least one byte")


@dataclass
class StreamPacket:
    """A whole packet plus its TUSER metadata word.

    This is the unit the datapath cores reason about; on the wire it is
    serialized into beats.  ``tuser`` follows the SUME convention (see
    :mod:`repro.core.metadata`); the accessors below read/write its fields
    without the caller having to touch the bit layout.
    """

    data: bytes
    tuser: int = 0

    @property
    def length(self) -> int:
        return len(self.data)

    @property
    def src_port(self) -> int:
        return SUME_TUSER.extract(self.tuser, "src_port")

    @property
    def dst_port(self) -> int:
        return SUME_TUSER.extract(self.tuser, "dst_port")

    def with_src_port(self, bits: int) -> "StreamPacket":
        return StreamPacket(self.data, SUME_TUSER.insert(self.tuser, "src_port", bits))

    def with_dst_port(self, bits: int) -> "StreamPacket":
        return StreamPacket(self.data, SUME_TUSER.insert(self.tuser, "dst_port", bits))

    def with_len(self) -> "StreamPacket":
        """Return a copy with the TUSER ``len`` field set from the payload."""
        return StreamPacket(
            self.data, SUME_TUSER.insert(self.tuser, "len", len(self.data))
        )


def packet_to_beats(
    packet: StreamPacket, width_bytes: int = DEFAULT_WIDTH_BYTES
) -> list[AxiStreamBeat]:
    """Serialize a packet into beats; TUSER rides on every beat.

    (The reference designs only guarantee TUSER on the first beat; carrying
    it on all beats is equivalent and simplifies reassembly.)
    """
    if width_bytes <= 0:
        raise ValueError("beat width must be positive")
    data = packet.data
    if not data:
        raise ValueError("cannot serialize an empty packet")
    beats = []
    for offset in range(0, len(data), width_bytes):
        chunk = data[offset : offset + width_bytes]
        beats.append(
            AxiStreamBeat(
                data=chunk,
                last=offset + width_bytes >= len(data),
                tuser=packet.tuser,
            )
        )
    return beats


def beats_to_packet(beats: Iterable[AxiStreamBeat]) -> StreamPacket:
    """Reassemble a packet from a complete beat sequence."""
    chunks: list[bytes] = []
    tuser = 0
    saw_last = False
    for i, beat in enumerate(beats):
        if saw_last:
            raise ValueError("beats continue after TLAST")
        if i == 0:
            tuser = beat.tuser
        chunks.append(beat.data)
        saw_last = beat.last
    if not chunks:
        raise ValueError("no beats to reassemble")
    if not saw_last:
        raise ValueError("beat sequence did not terminate with TLAST")
    return StreamPacket(b"".join(chunks), tuser)


class AxiStreamChannel:
    """A point-to-point AXI4-Stream link between two modules.

    Producer protocol (during ``comb``): call :meth:`drive` with a beat or
    ``None``.  Consumer protocol (during ``comb``): call :meth:`set_ready`.
    Both sides test :attr:`fire` during ``tick`` to learn whether the beat
    transferred this cycle.  Driving from ``tick`` is a protocol violation
    (the handshake would not settle) and is not supported.
    """

    def __init__(self, name: str, width_bytes: int = DEFAULT_WIDTH_BYTES):
        self.name = name
        self.width_bytes = width_bytes
        self.tvalid = Signal(f"{name}.tvalid", False)
        self.tready = Signal(f"{name}.tready", False)
        self.tbeat = Signal(f"{name}.tbeat", None)
        # Lifetime statistics; free to read, useful to monitors and tests.
        self.beats_transferred = 0
        self.packets_transferred = 0
        self.stall_cycles = 0

    def signals(self) -> list[Signal]:
        return [self.tvalid, self.tready, self.tbeat]

    # -- producer side -------------------------------------------------
    def drive(self, beat: Optional[AxiStreamBeat]) -> None:
        if beat is not None and len(beat.data) > self.width_bytes:
            raise ValueError(
                f"beat of {len(beat.data)}B exceeds channel width "
                f"{self.width_bytes}B on {self.name}"
            )
        self.tvalid.set(beat is not None)
        self.tbeat.set(beat)

    # -- consumer side ---------------------------------------------------
    def set_ready(self, ready: bool) -> None:
        self.tready.set(bool(ready))

    # -- both sides, during tick ----------------------------------------
    @property
    def fire(self) -> bool:
        """True when the settled handshake transfers a beat this cycle."""
        return bool(self.tvalid) and bool(self.tready)

    @property
    def beat(self) -> Optional[AxiStreamBeat]:
        return self.tbeat.get()

    def account(self) -> None:
        """Update transfer statistics; call once per cycle (any tick)."""
        if self.fire:
            beat = self.beat
            self.beats_transferred += 1
            if beat is not None and beat.last:
                self.packets_transferred += 1
        elif bool(self.tvalid) and not bool(self.tready):
            self.stall_cycles += 1


class StreamSource(Module):
    """Test-bench packet driver: replays a queue of packets onto a channel.

    An optional ``gap_cycles`` inserts idle cycles between packets, and a
    ``pacing`` callable may hold the source idle on arbitrary cycles to
    model irregular arrivals.
    """

    def __init__(
        self,
        name: str,
        channel: AxiStreamChannel,
        gap_cycles: int = 0,
        pacing: Optional[Callable[[int], bool]] = None,
    ):
        super().__init__(name)
        self.channel = channel
        self.gap_cycles = gap_cycles
        self.pacing = pacing
        self._queue: list[list[AxiStreamBeat]] = []
        self._beats: list[AxiStreamBeat] = []
        self._index = 0
        self._gap_left = 0
        self._cycle = 0
        self.packets_sent = 0
        for sig in channel.signals():
            self.adopt_signal(sig)

    def send(self, packet: StreamPacket) -> None:
        """Queue a packet for transmission (TUSER len auto-filled)."""
        self._queue.append(packet_to_beats(packet.with_len(), self.channel.width_bytes))

    def send_all(self, packets: Iterable[StreamPacket]) -> None:
        for packet in packets:
            self.send(packet)

    @property
    def idle(self) -> bool:
        """True when everything queued has been fully transmitted."""
        return not self._queue and not self._beats

    def comb(self) -> None:
        paused = self.pacing is not None and not self.pacing(self._cycle)
        if self._gap_left > 0 or paused:
            self.channel.drive(None)
            return
        if not self._beats and self._queue:
            self._beats = self._queue[0]
            self._index = 0
        if self._beats:
            self.channel.drive(self._beats[self._index])
        else:
            self.channel.drive(None)

    def tick(self) -> None:
        self._cycle += 1
        self.channel.account()
        if self._gap_left > 0:
            self._gap_left -= 1
            return
        if self._beats and self.channel.fire:
            self._index += 1
            if self._index >= len(self._beats):
                self._queue.pop(0)
                self._beats = []
                self._index = 0
                self.packets_sent += 1
                self._gap_left = self.gap_cycles


class StreamSink(Module):
    """Test-bench packet collector with programmable backpressure.

    ``backpressure(cycle)`` returning True means *stall* (tready low) on
    that cycle; by default the sink is always ready.  Received packets are
    appended to :attr:`packets` in arrival order.
    """

    def __init__(
        self,
        name: str,
        channel: AxiStreamChannel,
        backpressure: Optional[Callable[[int], bool]] = None,
    ):
        super().__init__(name)
        self.channel = channel
        self.backpressure = backpressure
        self.packets: list[StreamPacket] = []
        self.arrival_cycles: list[int] = []
        self._partial: list[AxiStreamBeat] = []
        self._cycle = 0
        for sig in channel.signals():
            self.adopt_signal(sig)

    def comb(self) -> None:
        stalled = self.backpressure is not None and self.backpressure(self._cycle)
        self.channel.set_ready(not stalled)

    def tick(self) -> None:
        if self.channel.fire:
            beat = self.channel.beat
            assert beat is not None
            self._partial.append(beat)
            if beat.last:
                self.packets.append(beats_to_packet(self._partial))
                self.arrival_cycles.append(self._cycle)
                self._partial = []
        self._cycle += 1


class StreamMonitor(Module):
    """Passive observer of a channel: counts beats/packets, never drives.

    Attach one to any internal link to measure throughput and stalls
    without perturbing the handshake — the simulation analogue of marking
    a net for waveform capture.
    """

    def __init__(self, name: str, channel: AxiStreamChannel):
        super().__init__(name)
        self.channel = channel
        self.beats = 0
        self.packets = 0
        self.bytes = 0
        self.stall_cycles = 0
        self.idle_cycles = 0
        self.first_fire_cycle: Optional[int] = None
        self.last_fire_cycle: Optional[int] = None
        self._cycle = 0

    def tick(self) -> None:
        if self.channel.fire:
            beat = self.channel.beat
            assert beat is not None
            self.beats += 1
            self.bytes += len(beat.data)
            if self.first_fire_cycle is None:
                self.first_fire_cycle = self._cycle
            self.last_fire_cycle = self._cycle
            if beat.last:
                self.packets += 1
        elif bool(self.channel.tvalid):
            self.stall_cycles += 1
        else:
            self.idle_cycles += 1
        self._cycle += 1

    def observed_rate_bps(self, clock_period_ns: float) -> float:
        """Mean payload rate between first and last observed beats."""
        if self.first_fire_cycle is None or self.last_fire_cycle is None:
            return 0.0
        cycles = self.last_fire_cycle - self.first_fire_cycle + 1
        return (self.bytes * 8) / (cycles * clock_period_ns * 1e-9)
