"""The cycle-driven two-phase simulator.

Each simulated clock cycle proceeds exactly like an HDL simulator's delta
cycles collapsed into one clock period:

1. **Settle**: call ``comb()`` on every module, repeatedly, until no signal
   changes value.  This resolves combinational chains of any depth —
   e.g. ``tready`` propagating backwards through a pipeline while
   ``tvalid`` propagates forwards — regardless of module registration
   order.  A chain that never settles (a genuine combinational loop) raises
   :class:`CombLoopError` instead of hanging.
2. **Tick**: call ``tick()`` on every module.  All modules observe the same
   settled signal values, so the update is race-free, matching
   non-blocking assignment semantics in Verilog.

Time advances by one clock period per cycle.  The default 5 ns period
models the ~200 MHz AXI datapath clock of the NetFPGA SUME reference
designs (256-bit datapath × 200 MHz ≈ 51 Gb/s of internal bandwidth).
"""

from __future__ import annotations

from typing import Callable

from repro.core.module import Module
from repro.core.signal import Signal


class SimulationError(RuntimeError):
    """Base class for kernel-level failures."""


class CombLoopError(SimulationError):
    """The combinational settle loop failed to reach a fixed point."""


class Simulator:
    """Owns a set of top-level modules and advances them cycle by cycle."""

    #: Settle iterations before declaring a combinational loop.  Real
    #: NetFPGA pipelines settle in a handful of passes; 64 is generous.
    MAX_SETTLE_ITERATIONS = 64

    def __init__(self, clock_period_ns: float = 5.0):
        if clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        self.clock_period_ns = clock_period_ns
        self.cycle = 0
        self._modules: list[Module] = []
        self._flat: list[Module] = []
        self._signals: list[Signal] = []
        self._cycle_hooks: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, module: Module) -> Module:
        """Register a top-level module (children are discovered via walk)."""
        self._modules.append(module)
        self._flat.extend(module.walk())
        self._signals.extend(module.all_signals())
        return module

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Run ``hook(cycle)`` after every tick — used by VCD tracing."""
        self._cycle_hooks.append(hook)

    @property
    def now_ns(self) -> float:
        """Simulated time at the current cycle boundary."""
        return self.cycle * self.clock_period_ns

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        for _ in range(self.MAX_SETTLE_ITERATIONS):
            before = sum(sig._version for sig in self._signals)
            for module in self._flat:
                module.comb()
            after = sum(sig._version for sig in self._signals)
            if after == before:
                return
        raise CombLoopError(
            f"combinational logic did not settle within "
            f"{self.MAX_SETTLE_ITERATIONS} iterations at cycle {self.cycle}"
        )

    def step(self, cycles: int = 1) -> None:
        """Advance the design by ``cycles`` clock cycles."""
        for _ in range(cycles):
            self._settle()
            for module in self._flat:
                module.tick()
            self.cycle += 1
            for hook in self._cycle_hooks:
                hook(self.cycle)

    def run_until(self, condition: Callable[[], bool], max_cycles: int = 100_000) -> int:
        """Step until ``condition()`` is true; returns cycles consumed.

        Raises :class:`SimulationError` if the condition does not hold
        within ``max_cycles`` — hung-pipeline bugs should fail loudly, not
        silently burn CPU.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"condition not met within {max_cycles} cycles "
                    f"(started at cycle {start})"
                )
            self.step()
        return self.cycle - start
