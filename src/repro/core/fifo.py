"""FIFOs: the plain data structure and the synthesizable stream FIFO.

Almost every NetFPGA core buffers packets or beats in a block-RAM FIFO;
:class:`AxiStreamFifo` is the kernel's equivalent of the Xilinx
``axis_data_fifo`` the reference designs instantiate.  :class:`Fifo` is
the untimed deque used inside behavioural models.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Optional, TypeVar

from repro.core.axis import AxiStreamChannel
from repro.core.module import Module, Resources

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with explicit overflow signalling.

    ``push`` returns False (and drops nothing silently) when full, so
    callers must decide drop/backpressure policy — the distinction the
    output-queue experiments depend on.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._items: deque[T] = deque()
        self.pushes = 0
        self.drops = 0

    def push(self, item: T) -> bool:
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        self.pushes += 1
        return True

    def pop(self) -> T:
        return self._items.popleft()

    def peek(self) -> T:
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items


class AxiStreamFifo(Module):
    """Store-and-forward-capable stream FIFO between two AXI4-Stream links.

    Ready is deasserted only when the buffer is full, so the FIFO provides
    lossless elasticity: upstream sees backpressure, never drops.  Depth is
    counted in beats (one beat = one 256-bit word of block RAM).
    """

    def __init__(
        self,
        name: str,
        s_axis: AxiStreamChannel,
        m_axis: AxiStreamChannel,
        depth_beats: int = 512,
    ):
        super().__init__(name)
        if depth_beats <= 0:
            raise ValueError("FIFO depth must be positive")
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.depth_beats = depth_beats
        self._queue: deque = deque()
        self.max_occupancy = 0

    def comb(self) -> None:
        self.s_axis.set_ready(len(self._queue) < self.depth_beats)
        self.m_axis.drive(self._queue[0] if self._queue else None)

    def tick(self) -> None:
        if self.m_axis.fire:
            self._queue.popleft()
        if self.s_axis.fire:
            beat = self.s_axis.beat
            assert beat is not None
            self._queue.append(beat)
        if len(self._queue) > self.max_occupancy:
            self.max_occupancy = len(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def resources(self) -> Resources:
        # One 36Kb BRAM holds 128 × 288-bit entries (256b data + sideband);
        # control logic is a read/write pointer pair plus compare.
        brams = max(1.0, self.depth_beats / 128)
        return Resources(luts=90, ffs=120, brams=brams)
