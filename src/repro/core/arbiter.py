"""Arbitration primitives shared by the datapath cores.

These are pure-logic helpers (no simulation state beyond the rotation
pointer) so they can back both the cycle-driven input arbiter core and
the behavioural models with identical decisions.
"""

from __future__ import annotations

from typing import Optional, Sequence


class RoundRobinArbiter:
    """Work-conserving rotating-priority arbiter over ``n`` requesters.

    After granting requester *i*, the highest priority for the next
    decision is *i+1* — the scheme used by the NetFPGA input arbiter, and
    the source of its per-port fairness property (tested in
    ``tests/test_cores_arbiter.py``).
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("arbiter needs at least one requester")
        self.n = n
        self._next = 0
        self.grants = [0] * n

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Pick the granted requester, or None if nobody requests.

        The caller decides when a grant is *consumed* (e.g. only at packet
        boundaries); call :meth:`advance` at that point.
        """
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for i in range(self.n):
            idx = (self._next + i) % self.n
            if requests[idx]:
                return idx
        return None

    def advance(self, granted: int) -> None:
        """Record that ``granted`` consumed its grant; rotate priority."""
        if not 0 <= granted < self.n:
            raise ValueError(f"granted index out of range: {granted}")
        self.grants[granted] += 1
        self._next = (granted + 1) % self.n


class StrictPriorityArbiter:
    """Always grants the lowest-index active requester.

    Used by the priority output-queue discipline; starves low-priority
    requesters by design (the scheduler bench demonstrates exactly that).
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("arbiter needs at least one requester")
        self.n = n
        self.grants = [0] * n

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for idx, req in enumerate(requests):
            if req:
                return idx
        return None

    def advance(self, granted: int) -> None:
        self.grants[granted] += 1


class DeficitRoundRobin:
    """Deficit round robin over variable-length packets.

    Classic Shreedhar–Varghese DRR: each queue accumulates ``quantum``
    bytes of credit per round and may send while its deficit covers the
    head packet.  Provides byte-level fairness across queues regardless
    of packet size mix.
    """

    def __init__(self, n: int, quantum_bytes: int = 1500):
        if n <= 0:
            raise ValueError("need at least one queue")
        if quantum_bytes <= 0:
            raise ValueError("quantum must be positive")
        self.n = n
        self.quantum = quantum_bytes
        self.deficit = [0] * n
        self._active = 0
        self._fresh_round = True
        self.grants = [0] * n

    def next_queue(self, head_sizes: Sequence[Optional[int]]) -> Optional[int]:
        """Choose the next queue to serve.

        ``head_sizes[i]`` is the byte length of queue *i*'s head packet, or
        None if the queue is empty.  Returns the queue index to serve, or
        None if all queues are empty.  The chosen queue's deficit is
        debited immediately.
        """
        if len(head_sizes) != self.n:
            raise ValueError(f"expected {self.n} queues, got {len(head_sizes)}")
        if all(size is None for size in head_sizes):
            # Idle: reset deficits so a long-idle queue gets no windfall.
            self.deficit = [0] * self.n
            self._fresh_round = True
            return None
        # A queue whose head packet exceeds the quantum needs several
        # rounds of credit; bound the walk accordingly so jumbo frames
        # are served rather than misreported as starvation.
        largest = max(size for size in head_sizes if size is not None)
        max_visits = self.n * (largest // self.quantum + 2)
        for _ in range(max_visits):
            idx = self._active
            size = head_sizes[idx]
            if size is not None:
                if self._fresh_round:
                    self.deficit[idx] += self.quantum
                    self._fresh_round = False
                if self.deficit[idx] >= size:
                    self.deficit[idx] -= size
                    self.grants[idx] += 1
                    return idx
            else:
                self.deficit[idx] = 0
            self._active = (idx + 1) % self.n
            self._fresh_round = True
        return None
