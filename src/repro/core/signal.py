"""Signals: the wires of the cycle-driven kernel.

A :class:`Signal` holds a single Python value (int, bool, bytes, or any
comparable object).  Modules *drive* signals during the combinational phase
and *sample* them freely; the :class:`~repro.core.simulator.Simulator`
re-evaluates combinational logic until no signal changes value, which gives
the same fixed-point semantics as delta cycles in an HDL simulator.
"""

from __future__ import annotations

from typing import Any


class Signal:
    """A named wire with change tracking.

    Signals are created through :meth:`repro.core.module.Module.signal` so
    the owning module can enumerate them for the simulator and for VCD
    tracing.  Direct construction is allowed in tests.
    """

    __slots__ = ("name", "value", "_version")

    def __init__(self, name: str, init: Any = 0):
        self.name = name
        self.value = init
        # Monotonic change counter; the simulator snapshots the sum of all
        # versions to detect settling without comparing values twice.
        self._version = 0

    def set(self, value: Any) -> None:
        """Drive the signal.  No-op (and no version bump) if unchanged."""
        if value != self.value:
            self.value = value
            self._version += 1

    def get(self) -> Any:
        return self.value

    # Conveniences for the overwhelmingly common boolean/int signals.
    def __bool__(self) -> bool:
        return bool(self.value)

    def __index__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}={self.value!r})"
