"""Control-plane resilience: desired state, audit/repair, supervision.

PR 1 made the *data path* self-healing; this package does the same for
the control plane.  Managers write **through** a per-device
:class:`DesiredStateStore`, an :class:`Auditor` diffs that intent
against the hardware tables and repairs drift under backoff, and a
:class:`Supervisor` heartbeats the managers, restarts them on wedge and
trips a :class:`CircuitBreaker` into explicit degraded (read-only,
mutation-queueing) mode when the repair budget runs out — recovering
automatically once writes land again.

Quickstart::

    from repro.faults import get_plan
    from repro.resilience import build_control_plane

    session = get_plan("flaky-writes", seed=7).session()
    plane = build_control_plane(router, session)
    plane.mutate("routes", key, entry)   # intent + hardware, one call
    plane.tick()                         # heartbeat + audit + repair
"""

from repro.resilience.auditor import Auditor
from repro.resilience.control import ControlPlane, build_control_plane
from repro.resilience.faces import (
    FlowFace,
    RouterArpFace,
    RouterRouteFace,
    SwitchMacFace,
    TableFace,
)
from repro.resilience.state import DesiredStateStore, Mutation
from repro.resilience.supervisor import (
    CircuitBreaker,
    SupervisedManager,
    Supervisor,
)

__all__ = [
    "Auditor",
    "CircuitBreaker",
    "ControlPlane",
    "DesiredStateStore",
    "FlowFace",
    "Mutation",
    "RouterArpFace",
    "RouterRouteFace",
    "SupervisedManager",
    "Supervisor",
    "SwitchMacFace",
    "TableFace",
    "build_control_plane",
]
