"""Supervision: heartbeats, restart-with-backoff, and the circuit breaker.

The supervisor is deliberately clockless — it advances on *ticks* (one
per soak epoch or per explicit ``ControlPlane.tick()``), so the whole
state machine is a pure function of the tick sequence and the fault
stream.  That keeps sim/hw soak runs counter-identical, which real
wall-clock timers would destroy.

Breaker semantics (the standard three states):

* **closed** — reconciles run every tick; consecutive failures count up.
* **open** — the repair budget is exhausted; reconciles are skipped for
  ``cooldown_ticks`` ticks.  This is the platform's *degraded mode*:
  hardware keeps forwarding with whatever tables it has, and the
  control plane queues mutations instead of writing them.
* **half-open** — cooldown expired; the next reconcile is a probe.
  Success closes the breaker (and the control plane replays its queue);
  failure reopens it with the cooldown doubled, capped.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional

#: Consecutive reconcile failures that open the breaker.
FAILURE_THRESHOLD = 2
#: Ticks an open breaker waits before the half-open probe.
COOLDOWN_TICKS = 1
#: Cap on the doubled cooldown after repeated failed probes.
MAX_COOLDOWN_TICKS = 8


class CircuitBreaker:
    """Closed / open / half-open over consecutive reconcile outcomes."""

    def __init__(
        self,
        failure_threshold: int = FAILURE_THRESHOLD,
        cooldown_ticks: int = COOLDOWN_TICKS,
        max_cooldown_ticks: int = MAX_COOLDOWN_TICKS,
    ):
        if failure_threshold < 1 or cooldown_ticks < 1:
            raise ValueError("threshold and cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.base_cooldown = cooldown_ticks
        self.max_cooldown = max_cooldown_ticks
        self.state = "closed"
        self._failures = 0
        self._cooldown = 0
        self._next_cooldown = cooldown_ticks

    def allow(self) -> bool:
        """May this tick attempt a reconcile?  Counts down the cooldown."""
        if self.state == "closed":
            return True
        if self.state == "open":
            self._cooldown -= 1
            if self._cooldown > 0:
                return False
            self.state = "half_open"
        return True  # half-open: exactly one probe

    def record_success(self) -> bool:
        """Returns True when this success *closed* an open breaker."""
        self._failures = 0
        self._next_cooldown = self.base_cooldown
        if self.state != "closed":
            self.state = "closed"
            return True
        return False

    def record_failure(self) -> bool:
        """Returns True when this failure *opened* the breaker."""
        self._failures += 1
        tripped = (
            self.state == "half_open" or self._failures >= self.failure_threshold
        )
        if tripped and self.state != "open":
            self.state = "open"
            self._cooldown = self._next_cooldown
            self._next_cooldown = min(self._next_cooldown * 2, self.max_cooldown)
            return True
        if self.state == "open":
            self._cooldown = max(self._cooldown, 1)
        return False


class SupervisedManager:
    """One manager under supervision: a heartbeat and a restart handle.

    ``heartbeat()`` returns True when the manager is healthy; False or
    any exception counts as a wedge.  Restarts back off in ticks
    (1, 2, 4, …) so a persistently sick manager is not restart-thrashed
    every tick.
    """

    def __init__(
        self,
        name: str,
        heartbeat: Callable[[], bool],
        restart: Callable[[], None],
        max_backoff_ticks: int = 8,
    ):
        self.name = name
        self._heartbeat = heartbeat
        self._restart = restart
        self.max_backoff_ticks = max_backoff_ticks
        self._backoff = 1
        self._skip = 0
        self.restarts = 0
        self.heartbeat_failures = 0

    def check(self) -> bool:
        """One supervision tick: heartbeat, maybe restart.  True = healthy."""
        try:
            healthy = bool(self._heartbeat())
        except Exception:
            healthy = False
        if healthy:
            self._backoff = 1
            self._skip = 0
            return True
        self.heartbeat_failures += 1
        if self._skip > 0:
            self._skip -= 1  # still backing off from the last restart
            return False
        self._restart()
        self.restarts += 1
        self._skip = self._backoff
        self._backoff = min(self._backoff * 2, self.max_backoff_ticks)
        return False


class Supervisor:
    """Ticks the managers' heartbeats and gates reconciles by the breaker."""

    def __init__(
        self,
        reconcile: Callable[[], bool],
        managers: Optional[list[SupervisedManager]] = None,
        breaker: Optional[CircuitBreaker] = None,
        counters: Optional[dict[str, int]] = None,
        on_event: Optional[Callable[[str, str], None]] = None,
    ):
        self._reconcile = reconcile
        self.managers = list(managers or [])
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.counters = counters if counters is not None else defaultdict(int)
        self.on_event = on_event
        self.ticks = 0

    def _event(self, kind: str, detail: str) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    @property
    def degraded(self) -> bool:
        return self.breaker.state != "closed"

    def add(self, manager: SupervisedManager) -> None:
        self.managers.append(manager)

    def tick(self) -> bool:
        """One supervision round.  Returns True when fully healthy.

        Heartbeats first (a wedged manager is restarted before it is
        asked to repair tables), then a breaker-gated reconcile.
        """
        self.ticks += 1
        healthy = True
        for manager in self.managers:
            before = manager.restarts
            if not manager.check():
                healthy = False
                self.counters["heartbeat_failures"] += 1
                if manager.restarts > before:
                    self.counters["manager_restarts"] += 1
                    self._event("restart", manager.name)
        if not self.breaker.allow():
            return False
        ok = self._reconcile()
        if ok:
            if self.breaker.record_success():
                self.counters["degraded_exits"] += 1
                self._event("degraded_exit", "breaker closed")
        else:
            healthy = False
            if self.breaker.record_failure():
                self.counters["degraded_entries"] += 1
                self._event("degraded_enter", "repair budget exhausted")
        return healthy and not self.degraded
