"""The auditor: diff desired state against hardware and repair drift.

Hardware tables drift for exactly the reasons the fault plans model —
dropped posted writes, corrupted values, soft resets that wipe whole
tables.  The auditor closes the loop the managers never had: read every
table back through its face, compute the divergence from the desired
store, and re-issue the missing/mismatched writes, retrying whole
passes under exponential backoff (repairs themselves go through the
same faulty write path, so one pass is not enough under an active
fault plan).

Everything is deterministic: divergences are visited in sorted key
order, so the repair writes draw the fault session's ``ctrl_wr`` stream
in the same order in the ``sim`` and ``hw`` harness modes, and the
reconciliation counters come out identical — the property the soak
determinism test pins down.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional

from repro.resilience.faces import TableFace
from repro.resilience.state import DesiredStateStore

#: Repair passes per reconcile before declaring failure.
MAX_REPAIR_PASSES = 4
#: First backoff step between repair passes (doubles each pass).
REPAIR_BACKOFF_NS = 1_000.0

#: One divergence: (face, op, key, desired_value) — op 'set' restores a
#: missing/mismatched entry, 'delete' removes drift from an
#: authoritative table.
Divergence = tuple[TableFace, str, object, object]


class Auditor:
    """Reconciles a :class:`DesiredStateStore` with hardware tables."""

    def __init__(
        self,
        store: DesiredStateStore,
        faces: list[TableFace],
        max_passes: int = MAX_REPAIR_PASSES,
        backoff_ns: float = REPAIR_BACKOFF_NS,
        wait: Optional[Callable[[float], None]] = None,
        counters: Optional[dict[str, int]] = None,
        on_event: Optional[Callable[[str, str], None]] = None,
    ):
        self.store = store
        self.faces = {face.name: face for face in faces}
        self.max_passes = max_passes
        self.backoff_ns = backoff_ns
        #: Lets simulated time pass during backoff; None = no-op (the
        #: reconcile loop is host-side and needs no device cycles).
        self._wait = wait if wait is not None else (lambda ns: None)
        self.counters = counters if counters is not None else defaultdict(int)
        self.on_event = on_event

    # ------------------------------------------------------------------
    def _event(self, kind: str, detail: str) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    def divergences(self) -> list[Divergence]:
        """Every entry where hardware disagrees with desired state.

        Sorted (table, then key) for deterministic repair ordering.
        """
        out: list[Divergence] = []
        for name in sorted(self.faces):
            face = self.faces[name]
            desired = self.store.entries(name)
            hardware = face.read_hardware()
            for key in sorted(desired, key=repr):
                if key not in hardware or hardware[key] != desired[key]:
                    out.append((face, "set", key, desired[key]))
            if face.authoritative:
                for key in sorted(hardware, key=repr):
                    if key not in desired:
                        out.append((face, "delete", key, None))
        return out

    def audit(self) -> dict[str, int]:
        """Read-only drift report: ``{table: divergent entry count}``."""
        report: dict[str, int] = defaultdict(int)
        for face, _op, _key, _value in self.divergences():
            report[face.name] += 1
        return dict(report)

    def reconcile(self) -> bool:
        """Audit and repair until converged or the pass budget runs out.

        Returns True when hardware matches desired state on a final
        read-back; False trips the supervisor's circuit breaker.
        """
        self.counters["audits"] += 1
        wait_ns = self.backoff_ns
        for attempt in range(self.max_passes):
            divergent = self.divergences()
            if attempt == 0 and divergent:
                self.counters["drift_entries"] += len(divergent)
                self._event("drift", f"{len(divergent)} divergent entries")
            if not divergent:
                return True
            if attempt > 0:
                self.counters["repair_retries"] += 1
                self._wait(wait_ns)
                wait_ns *= 2
            for face, op, key, value in divergent:
                self.counters["repair_writes"] += 1
                if op == "set":
                    face.write(key, value)
                else:
                    face.delete(key)
        if self.divergences():
            self.counters["repair_failures"] += 1
            self._event("repair_failed", "pass budget exhausted")
            return False
        return True
