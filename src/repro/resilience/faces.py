"""Table faces: one uniform write/read surface per hardware table.

A face adapts one hardware table (the switch CAM, the router's LPM and
ARP tables, a BlueSwitch flow table bank) to the three operations the
auditor needs — read everything back, write one entry, delete one entry
— using the same software paths the managers use.  The write path is
where control-plane faults land: every ``write``/``delete`` consults the
fault session's ``ctrl_write`` stream, so a seeded plan can drop or
corrupt table programming exactly as a lost/mangled posted register
write would, identically in the ``sim`` and ``hw`` harness modes.

``authoritative`` declares whether the desired store owns the *whole*
table: for the routes and flow faces any hardware entry not in the store
is drift to delete, while the MAC and ARP faces share their tables with
hardware learning and the auditor must leave unknown entries alone.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from repro.cores.lpm import LpmEntry
from repro.faults.plan import FaultSession


class TableFace:
    """Base adapter; subclasses bind one hardware table."""

    #: Does the desired store own every entry (extras are drift)?
    authoritative = False

    def __init__(self, name: str, session: Optional[FaultSession] = None):
        self.name = name
        self.fault_session = session
        self.writes = 0
        self.dropped_writes = 0
        self.corrupted_writes = 0

    # -- fault-instrumented write path ---------------------------------
    def write(self, key: Hashable, value: Any) -> None:
        """Program one entry; the fault stream may drop or mangle it."""
        outcome = self._draw()
        self.writes += 1
        if outcome == "drop":
            self.dropped_writes += 1
            return
        if outcome == "corrupt":
            self.corrupted_writes += 1
            value = self._mangle(value)
        self._apply(key, value)

    def delete(self, key: Hashable) -> None:
        """Remove one entry; a dropped write leaves it behind."""
        outcome = self._draw()
        self.writes += 1
        if outcome == "drop":
            self.dropped_writes += 1
            return
        self._remove(key)

    def _draw(self) -> str:
        if self.fault_session is None:
            return "ok"
        return self.fault_session.ctrl_write()

    # -- hardware binding (subclass responsibility) --------------------
    def read_hardware(self) -> dict[Hashable, Any]:
        raise NotImplementedError

    def _apply(self, key: Hashable, value: Any) -> None:
        raise NotImplementedError

    def _remove(self, key: Hashable) -> None:
        raise NotImplementedError

    def _mangle(self, value: Any) -> Any:
        """Deterministic corruption of ``value`` (no extra RNG draws)."""
        return value


class SwitchMacFace(TableFace):
    """The learning switch's CAM: key = MAC value, value = port bits.

    Non-authoritative: hardware learning legitimately adds entries the
    store never asked for.
    """

    def __init__(self, switch: Any, session: Optional[FaultSession] = None):
        super().__init__("mac", session)
        self.switch = switch

    def read_hardware(self) -> dict[Hashable, Any]:
        return {key: port_bits for key, port_bits in self.switch.mac_table}

    def _apply(self, key: Hashable, value: Any) -> None:
        self.switch.mac_table.insert(key, value)

    def _remove(self, key: Hashable) -> None:
        self.switch.mac_table.delete(key)

    def _mangle(self, value: Any) -> Any:
        return value ^ 0x1  # corrupted port bits: wrong egress port


class RouterRouteFace(TableFace):
    """The router's LPM: key = (prefix value, length), value = LpmEntry."""

    authoritative = True

    def __init__(self, tables: Any, session: Optional[FaultSession] = None):
        super().__init__("routes", session)
        self.tables = tables

    def read_hardware(self) -> dict[Hashable, Any]:
        return {
            (e.prefix.value, e.prefix_len): e for e in self.tables.lpm.entries()
        }

    def _apply(self, key: Hashable, value: Any) -> None:
        self.tables.lpm.insert(value)

    def _remove(self, key: Hashable) -> None:
        from repro.packet.addresses import Ipv4Addr

        prefix_value, prefix_len = key
        self.tables.lpm.delete(Ipv4Addr(prefix_value), prefix_len)

    def _mangle(self, value: Any) -> Any:
        return LpmEntry(
            prefix=value.prefix,
            prefix_len=value.prefix_len,
            next_hop=value.next_hop,
            port_bits=value.port_bits ^ 0x1,
        )


class RouterArpFace(TableFace):
    """The router's ARP cache: key = IP value, value = MAC value.

    Non-authoritative: the slow path learns bindings on its own.
    """

    def __init__(self, tables: Any, session: Optional[FaultSession] = None):
        super().__init__("arp", session)
        self.tables = tables

    def read_hardware(self) -> dict[Hashable, Any]:
        return {ip: mac for ip, mac in self.tables.arp}

    def _apply(self, key: Hashable, value: Any) -> None:
        self.tables.arp.insert(key, value)

    def _remove(self, key: Hashable) -> None:
        self.tables.arp.delete(key)

    def _mangle(self, value: Any) -> Any:
        return value ^ 0x1  # one-bit MAC corruption: frames to nowhere


class FlowFace(TableFace):
    """BlueSwitch flow slots: key = (table_id, slot), value = FlowEntry.

    Writes hit the active bank directly (plus the shadow, to stay
    coherent with a later transactional update) — this face models the
    *naive* programming path whose lost writes BlueSwitch's atomic
    commit cannot help with.
    """

    authoritative = True

    def __init__(self, pipeline: Any, session: Optional[FaultSession] = None):
        super().__init__("flows", session)
        self.pipeline = pipeline

    def read_hardware(self) -> dict[Hashable, Any]:
        bank = self.pipeline.active_version
        out: dict[Hashable, Any] = {}
        for table in self.pipeline.tables:
            for slot in range(table.slots):
                entry = table.read(bank, slot)
                if entry is not None:
                    out[(table.table_id, slot)] = entry
        return out

    def _apply(self, key: Hashable, value: Any) -> None:
        table_id, slot = key
        self.pipeline.write_active(table_id, slot, value)
        self.pipeline.write_shadow(table_id, slot, value)

    def _remove(self, key: Hashable) -> None:
        self._apply(key, None)

    def _mangle(self, value: Any) -> Any:
        from repro.projects.blueswitch.flow_table import (
            ActionOutput,
            FlowEntry,
        )

        actions = tuple(
            ActionOutput(a.port_bits ^ 0x1) if isinstance(a, ActionOutput) else a
            for a in value.actions
        )
        return FlowEntry(match=value.match, actions=actions)
