"""Desired-state store: the control plane's intent, kept off-device.

The managers historically wrote *only* into the hardware tables, so a
lost register write or a soft device reset silently destroyed intent —
there was no second copy to repair from.  The store is that second copy:
a named set of key→value tables (MAC entries, routes, ARP bindings,
flow slots) that managers write **through**, never around.  Hardware is
then treated as a cache of this store, and the auditor's job
(:mod:`repro.resilience.auditor`) reduces to cache repair.

Keys and values are plain hashable/comparable Python values chosen by
each table's face (:mod:`repro.resilience.faces`); the store itself is
deliberately dumb — ordering-stable dicts plus a mutation log hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Optional


@dataclass(frozen=True)
class Mutation:
    """One intended table change, as queued in degraded mode."""

    op: str  # 'set' | 'delete'
    table: str
    key: Hashable
    value: Any = None

    def __post_init__(self) -> None:
        if self.op not in ("set", "delete"):
            raise ValueError(f"unknown mutation op {self.op!r}")


class DesiredStateStore:
    """Named key→value tables recording what software *wants* in hardware."""

    def __init__(self) -> None:
        self._tables: dict[str, dict[Hashable, Any]] = {}

    def table(self, name: str) -> dict[Hashable, Any]:
        """The live dict for ``name`` (created empty on first touch)."""
        return self._tables.setdefault(name, {})

    # -- mutation ------------------------------------------------------
    def set(self, table: str, key: Hashable, value: Any) -> None:
        self.table(table)[key] = value

    def delete(self, table: str, key: Hashable) -> bool:
        return self.table(table).pop(key, None) is not None

    def apply(self, mutation: Mutation) -> None:
        if mutation.op == "set":
            self.set(mutation.table, mutation.key, mutation.value)
        else:
            self.delete(mutation.table, mutation.key)

    # -- inspection ----------------------------------------------------
    def get(self, table: str, key: Hashable, default: Any = None) -> Any:
        return self.table(table).get(key, default)

    def entries(self, table: str) -> dict[Hashable, Any]:
        """A snapshot copy — safe to diff against while repairing."""
        return dict(self.table(table))

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def total_entries(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def __iter__(self) -> Iterator[tuple[str, Hashable, Any]]:
        for name in self.table_names():
            for key, value in self._tables[name].items():
                yield name, key, value
