"""The resilient control plane: store + auditor + supervisor, composed.

:class:`ControlPlane` is what the managers talk to.  In normal
operation a mutation lands in the desired store *and* hardware in one
call; in degraded mode (breaker open — the repair budget is exhausted)
the control plane goes read-only towards the device: mutations queue in
order, hardware keeps forwarding with whatever tables it still has, and
the queue replays automatically on the tick whose probe reconcile
succeeds.  That lifecycle — faults, breaker open, queued intent, faults
cease, replay, convergence — is the degradation story the acceptance
test walks end to end.

``build_control_plane`` wires the right faces for a reference project
and *adopts* the hardware's current contents as the desired baseline,
so preloaded configuration (the router's connected routes, a switch's
static entries) is protected rather than audited away.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Optional

from repro.faults.plan import FaultSession
from repro.resilience.auditor import Auditor
from repro.resilience.faces import (
    FlowFace,
    RouterArpFace,
    RouterRouteFace,
    SwitchMacFace,
    TableFace,
)
from repro.resilience.state import DesiredStateStore, Mutation
from repro.resilience.supervisor import (
    CircuitBreaker,
    SupervisedManager,
    Supervisor,
)


class ControlPlane:
    """Write-through intent + supervised reconciliation for one device."""

    def __init__(
        self,
        faces: list[TableFace],
        managers: Optional[list[SupervisedManager]] = None,
        store: Optional[DesiredStateStore] = None,
        breaker: Optional[CircuitBreaker] = None,
        max_repair_passes: Optional[int] = None,
        wait: Optional[Callable[[float], None]] = None,
    ):
        self.counters: dict[str, int] = defaultdict(int)
        #: Telemetry hook: ``hook(kind, detail)`` per resilience event
        #: ('drift' | 'restart' | 'degraded_enter' | ...).  None =
        #: unobserved; :func:`repro.telemetry.probes.probe_resilience`
        #: attaches here.
        self.event_hook: Optional[Callable[[str, str], None]] = None
        self.store = store if store is not None else DesiredStateStore()
        auditor_kwargs: dict[str, Any] = dict(
            counters=self.counters, on_event=self._emit, wait=wait
        )
        if max_repair_passes is not None:
            auditor_kwargs["max_passes"] = max_repair_passes
        self.auditor = Auditor(self.store, faces, **auditor_kwargs)
        self.supervisor = Supervisor(
            self.auditor.reconcile,
            managers,
            breaker,
            counters=self.counters,
            on_event=self._emit,
        )
        self.queue: list[Mutation] = []

    def _emit(self, kind: str, detail: str) -> None:
        if self.event_hook is not None:
            self.event_hook(kind, detail)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self.supervisor.degraded

    def adopt_hardware(self) -> int:
        """Seed the desired store from what hardware holds right now.

        Returns the number of entries adopted.  Called once at
        attach time, before any faults are armed.
        """
        adopted = 0
        for name, face in self.auditor.faces.items():
            for key, value in face.read_hardware().items():
                self.store.set(name, key, value)
                adopted += 1
        return adopted

    # -- the managers' write path --------------------------------------
    def mutate(self, table: str, key: Any, value: Any) -> bool:
        """Intend ``table[key] = value``.  Returns False when queued."""
        if self.degraded:
            self.queue.append(Mutation("set", table, key, value))
            self.counters["mutations_queued"] += 1
            self._emit("mutation_queued", f"{table}[{key!r}]")
            return False
        self.store.set(table, key, value)
        self.auditor.faces[table].write(key, value)
        self.counters["mutations_applied"] += 1
        return True

    def remove(self, table: str, key: Any) -> bool:
        """Intend deletion of ``table[key]``.  Returns False when queued."""
        if self.degraded:
            self.queue.append(Mutation("delete", table, key))
            self.counters["mutations_queued"] += 1
            self._emit("mutation_queued", f"{table}[{key!r}] (delete)")
            return False
        self.store.delete(table, key)
        self.auditor.faces[table].delete(key)
        self.counters["mutations_applied"] += 1
        return True

    # -- supervision ---------------------------------------------------
    def tick(self) -> bool:
        """One supervision round; replays the queue after recovery.

        Returns True when the plane is healthy *and* converged.
        """
        healthy = self.supervisor.tick()
        if not self.degraded and self.queue:
            self._replay_queue()
            healthy = self.auditor.reconcile() and not self.degraded
        return healthy

    def _replay_queue(self) -> None:
        pending, self.queue = self.queue, []
        for mutation in pending:
            self.store.apply(mutation)
            face = self.auditor.faces[mutation.table]
            if mutation.op == "set":
                face.write(mutation.key, mutation.value)
            else:
                face.delete(mutation.key)
            self.counters["mutations_replayed"] += 1
        self._emit("queue_replayed", f"{len(pending)} mutations")

    # -- reporting -----------------------------------------------------
    def counters_snapshot(self) -> dict[str, int]:
        """Sorted plain-dict view — what the soak report merges in."""
        return {k: self.counters[k] for k in sorted(self.counters)}


def build_control_plane(
    project: Any,
    session: Optional[FaultSession] = None,
    managers: Optional[list[SupervisedManager]] = None,
    adopt: bool = True,
    **kwargs: Any,
) -> ControlPlane:
    """Wire the right faces for ``project`` and adopt its tables.

    Recognises the reference projects structurally: a ``mac_table``
    means the learning switch, ``tables`` with an LPM means the router,
    ``active_version`` means a BlueSwitch flow pipeline.
    """
    faces: list[TableFace] = []
    if hasattr(project, "mac_table"):
        faces.append(SwitchMacFace(project, session))
    if hasattr(project, "tables") and hasattr(getattr(project, "tables"), "lpm"):
        faces.append(RouterRouteFace(project.tables, session))
        faces.append(RouterArpFace(project.tables, session))
    if hasattr(project, "active_version"):
        faces.append(FlowFace(project, session))
    if not faces:
        raise ValueError(
            f"no resilience faces recognised for {type(project).__name__}"
        )
    plane = ControlPlane(faces, managers=managers, **kwargs)
    if adopt:
        plane.adopt_hardware()
    return plane
