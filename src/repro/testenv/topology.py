"""Multi-device network topologies over the behavioural target.

§1 motivates NetFPGA with datacenter-scale evaluation: experiments need
*networks* of devices, not single boards.  :class:`Network` wires any
number of project instances together by their physical ports and
propagates packets hop by hop using each device's behavioural
forwarding — with per-device CPU slow paths, edge-host attachment and a
hop limit standing in for TTL on L2 storms.

The model is transaction-level: one injected packet is carried to
quiescence before the next (the same semantics as the ``hw`` harness
target, extended across devices).

:meth:`Network.inject` returns an :class:`InjectionResult` — a list of
the deliveries the injection produced that also carries the number of
in-flight copies the hop limit truncated, so broadcast-storm clamping is
observable per injection (and cumulatively via
:attr:`Network.dropped_hop_limit`) instead of silently vanishing.

**Path cache.**  Between table mutations, the entire hop walk of an
injection is a pure function of (entry attachment, frame): the network
memoizes finished walks — deliveries, hop-limit losses and the per-device
counter deltas they caused — keyed by the topology-wide generation
vector (the sum of every device's :meth:`state_generation` plus a wiring
counter).  A walk is only cached when it touched no CPU handler, no
device with armed data-path faults, and mutated no table; replays apply
the recorded counter deltas so per-device statistics (and the fabric
fingerprint built from them) are byte-identical cached or not.
:meth:`Network.inject_many` batches injections and amortizes the
generation check across hits.  ``set_fastpath(False)`` turns the path
cache *and* every device's microflow cache off for A/B runs.

**Batch tier (S27).**  :meth:`Network.inject_batch` replays *N
same-flow packets in one call* through a precompiled
:class:`~repro.fastpath.batch.CompiledFlow` closure built from the
cached walk — counter deltas applied as ``n * delta``, one aggregate
:class:`~repro.fastpath.batch.BatchResult` instead of N
:class:`InjectionResult` objects, and (deliberately) no per-packet
entries in the :attr:`deliveries` log, which is a debugging aid, not a
fingerprinted observable.  Closures carry the same generation guard as
the path cache, so any mutation splits the batch at the invalidation
boundary; a cold or uncacheable flow returns ``None`` and the caller
falls back to per-packet :meth:`inject` (which warms the walk for the
next attempt).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.fastpath.batch import BatchResult, FlowBatchCompiler
from repro.int.codec import set_seq as _int_set_seq
from repro.projects.base import PortRef, ReferencePipeline

#: cpu_handler(frame, phys_port_index) -> [(phys_port_index, frame), ...]
CpuHandler = Callable[[bytes, int], list[tuple[int, bytes]]]

#: Default bound on forwarding hops for one injected packet (and all the
#: copies flooding creates).  Generous for real topologies, small enough
#: to terminate a broadcast storm quickly.
DEFAULT_HOP_LIMIT = 64

#: Bound on memoized hop walks per network (FIFO eviction).
PATH_CACHE_CAPACITY = 8192


@dataclass(frozen=True)
class _CachedWalk:
    """A finished injection, frozen for replay.

    ``deliveries`` are (attachment, frame, hops) tuples — fresh
    :class:`Delivery` objects are minted per replay since Delivery is
    mutable.  ``ops`` carries each touched device's counter delta
    ``(opl, packets, drops, ((counter, delta), ...))``.  The site tuples
    localize where the walk's losses happened, ``((device, port), ...)``.
    """

    deliveries: tuple
    dropped: int
    forwarded: int
    link_down: int
    ops: tuple
    link_down_sites: tuple = ()
    hop_limit_sites: tuple = ()


@dataclass(frozen=True)
class Attachment:
    """A device port: ``("s1", PortRef("phys", 2))``."""

    device: str
    port: PortRef


@dataclass
class Delivery:
    """A packet that exited the network at an edge port."""

    at: Attachment
    frame: bytes
    hops: int


class TopologyError(RuntimeError):
    """Bad wiring: unknown device, port reuse, self-links."""


@dataclass(frozen=True)
class Ping:
    """One probe's outcome in a :meth:`Network.pingall` sweep.

    ``copies`` counts deliveries at the *intended* destination
    attachment (a healthy unicast fabric delivers exactly one);
    ``stray`` counts deliveries anywhere else (flooding or
    misforwarding); ``hops`` is the first delivered copy's hop count.
    """

    delivered: bool
    hops: int
    copies: int
    stray: int


class InjectionResult(list):
    """The deliveries of one injection, plus what the hop limit ate.

    Behaves exactly like the ``list[Delivery]`` :meth:`Network.inject`
    always returned (so existing callers are untouched) and additionally
    exposes :attr:`dropped_hop_limit` — the number of in-flight copies
    this injection lost to the hop limit, the per-injection slice of the
    network-wide :attr:`Network.dropped_hop_limit` counter — and
    :attr:`dropped_link_down`, the copies that went out onto a cable
    whose link is administratively down and vanished on the wire.

    The counts are localized too: :attr:`link_down_sites` and
    :attr:`hop_limit_sites` name *where* each lost copy left the graph,
    as ``(device, port)`` egress tuples in walk order (one entry per
    lost copy, so ``len(link_down_sites) == dropped_link_down``).  The
    INT collector uses them to attribute receiver-observed loss to the
    exact drop site instead of declaring a blackhole.
    """

    __slots__ = (
        "dropped_hop_limit", "dropped_link_down",
        "hop_limit_sites", "link_down_sites",
    )

    def __init__(
        self, deliveries=(), dropped_hop_limit: int = 0, dropped_link_down: int = 0,
        hop_limit_sites: tuple = (), link_down_sites: tuple = (),
    ):
        super().__init__(deliveries)
        self.dropped_hop_limit = dropped_hop_limit
        self.dropped_link_down = dropped_link_down
        self.hop_limit_sites = hop_limit_sites
        self.link_down_sites = link_down_sites


class Network:
    """A set of devices, point-to-point links, and edge ports."""

    def __init__(self, hop_limit: int = DEFAULT_HOP_LIMIT):
        self.hop_limit = hop_limit
        self._devices: dict[str, ReferencePipeline] = {}
        self._cpu: dict[str, CpuHandler] = {}
        self._links: dict[Attachment, Attachment] = {}
        self.deliveries: list[Delivery] = []
        self.dropped_hop_limit = 0
        self.dropped_link_down = 0
        self.forwarded_hops = 0
        #: Ports whose cable currently has link down (both ends present).
        self._down_ports: set[Attachment] = set()
        # Path cache (see the module docstring for the invariants).
        self.path_cache_enabled = True
        self._path_cache: dict[tuple, _CachedWalk] = {}
        self._path_generation = -1  # device generations are >= 0
        self._wiring_generation = 0
        self.path_hits = 0
        self.path_misses = 0
        self.path_invalidations = 0
        self.path_bypasses = 0
        # Batch tier: compiled per-flow closures over cached walks.
        self.batch_enabled = True
        self._batch = FlowBatchCompiler()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_device(
        self,
        name: str,
        project: ReferencePipeline,
        cpu_handler: Optional[CpuHandler] = None,
    ) -> ReferencePipeline:
        if name in self._devices:
            raise TopologyError(f"duplicate device name {name!r}")
        opl = getattr(project, "opl", None)
        if opl is not None:
            # INT identity: insertion order.  Builders add devices in a
            # deterministic order, so every shard replica of a topology
            # assigns the same ids and stamps parse identically.
            opl.int_device_id = len(self._devices)
        self._devices[name] = project
        self._wiring_generation += 1
        if cpu_handler is not None:
            self._cpu[name] = cpu_handler
        return project

    def device(self, name: str) -> ReferencePipeline:
        if name not in self._devices:
            raise TopologyError(f"unknown device {name!r}")
        return self._devices[name]

    def link(self, a_device: str, a_port: int, b_device: str, b_port: int) -> None:
        """Connect two physical ports with a full-duplex cable."""
        a = Attachment(a_device, PortRef("phys", a_port))
        b = Attachment(b_device, PortRef("phys", b_port))
        for end in (a, b):
            if end.device not in self._devices:
                raise TopologyError(f"unknown device {end.device!r}")
            if end in self._links:
                raise TopologyError(f"port {end} already cabled")
        if a == b:
            raise TopologyError("cannot cable a port to itself")
        self._links[a] = b
        self._links[b] = a
        self._wiring_generation += 1

    def edge_ports(self, device: str) -> list[PortRef]:
        """The device's un-cabled physical ports (host attachment points)."""
        self.device(device)
        return [
            PortRef("phys", i)
            for i in range(4)
            if Attachment(device, PortRef("phys", i)) not in self._links
        ]

    # ------------------------------------------------------------------
    # Graph introspection (what the fabric builders walk)
    # ------------------------------------------------------------------
    def device_names(self) -> list[str]:
        """All device names, sorted (the graph's vertex set)."""
        return sorted(self._devices)

    def neighbors(self, device: str) -> dict[int, tuple[str, int]]:
        """``{local_port: (peer_device, peer_port)}`` for one device."""
        self.device(device)
        return {
            attachment.port.index: (peer.device, peer.port.index)
            for attachment, peer in self._links.items()
            if attachment.device == device
        }

    def links(self) -> Iterator[tuple[Attachment, Attachment]]:
        """Every cable once, ends ordered by (device, port)."""
        for a, b in self._links.items():
            if (a.device, a.port.index) < (b.device, b.port.index):
                yield a, b

    def int_directory(self) -> dict[int, str]:
        """INT device id → device name (the stamp receiver's rosetta)."""
        out = {}
        for name, project in self._devices.items():
            opl = getattr(project, "opl", None)
            if opl is not None:
                out[opl.int_device_id] = name
        return out

    # ------------------------------------------------------------------
    # Link state (data-plane failure model)
    # ------------------------------------------------------------------
    def set_link_state(self, a_device: str, b_device: str, up: bool) -> bool:
        """Set link state on every cable between two devices.

        Models pulling (or re-seating) the fibre: both end devices see
        loss of light — their per-port liveness bitmaps flip, which bumps
        each device's state generation — and frames sent onto a down
        cable vanish on the wire (counted in :attr:`dropped_link_down`).
        The wiring generation is bumped too, so the summed network
        generation moves even for devices whose lookups ignore liveness,
        and no cached walk can replay across the dead link.

        Returns True if any cable's state changed; raises
        :class:`TopologyError` when the devices share no cable.
        """
        cables = [
            (a, b)
            for a, b in self._links.items()
            if a.device == a_device and b.device == b_device
        ]
        if not cables:
            self.device(a_device)
            self.device(b_device)
            raise TopologyError(f"no cable between {a_device!r} and {b_device!r}")
        changed = False
        for a, b in cables:
            was_down = a in self._down_ports
            if up != was_down:
                continue  # already in the requested state
            changed = True
            for end in (a, b):
                if up:
                    self._down_ports.discard(end)
                else:
                    self._down_ports.add(end)
                self._devices[end.device].set_port_state(end.port.index, up)
        if changed:
            self._wiring_generation += 1
        return changed

    def link_is_up(self, a_device: str, b_device: str) -> bool:
        """Whether every cable between the two devices has link."""
        cables = [
            a
            for a, b in self._links.items()
            if a.device == a_device and b.device == b_device
        ]
        if not cables:
            self.device(a_device)
            self.device(b_device)
            raise TopologyError(f"no cable between {a_device!r} and {b_device!r}")
        return all(a not in self._down_ports for a in cables)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def inject(
        self, device: str, port: int, frame: bytes,
        int_seq: Optional[int] = None,
    ) -> InjectionResult:
        """Carry one packet (and every copy it spawns) to quiescence.

        Returns an :class:`InjectionResult`: the deliveries this
        injection produced (also appended to :attr:`deliveries`) plus the
        count of copies the hop limit truncated, so storm clamping is
        accounted rather than silent.

        While the path cache is enabled, a previously memoized walk for
        the same (device, port, frame) under an unchanged topology-wide
        generation is replayed instead of re-forwarded — deliveries,
        loss accounting and per-device counters included.

        ``int_seq`` is the INT sequence-number substitution hook: the
        caller injects the flow's sequence-zero *template* (so every
        packet of the flow shares one cache key and one memoized walk)
        and the per-packet sequence is written into the delivered frames
        here, after the walk — the frozen cached walk keeps the template
        bytes.  Non-INT frames ignore it.
        """
        if not self.path_cache_enabled:
            result = self._walk(device, port, frame, record=False)[0]
        else:
            result, _ = self._inject_cached(
                device, port, frame, self._network_generation()
            )
        if int_seq is not None:
            for delivery in result:
                delivery.frame = _int_set_seq(delivery.frame, int_seq)
        return result

    def inject_many(
        self, injections: Iterable[tuple[str, int, bytes]]
    ) -> list[InjectionResult]:
        """Inject a batch; returns one :class:`InjectionResult` each.

        Semantically identical to calling :meth:`inject` in a loop, but
        the topology-wide generation is computed once per batch and only
        refreshed after a cache miss (a replayed walk cannot mutate
        table state, so consecutive hits skip the re-validation that a
        lone ``inject`` must pay) — the batching the fabric scheduler's
        repeated sends and :meth:`run` lean on.
        """
        if not self.path_cache_enabled:
            return [self._walk(device, port, frame, record=False)[0]
                    for device, port, frame in injections]
        generation = self._network_generation()
        out = []
        for device, port, frame in injections:
            result, generation = self._inject_cached(
                device, port, frame, generation
            )
            out.append(result)
        return out

    def inject_batch(
        self, device: str, port: int, frame: bytes, count: int,
    ) -> Optional[BatchResult]:
        """Replay ``count`` identical injections in one compiled call.

        Returns a :class:`~repro.fastpath.batch.BatchResult` whose
        aggregate effects (per-device counters, loss accounting, the
        template deliveries) are byte-identical to ``count`` sequential
        :meth:`inject` calls of the same frame — or ``None`` when no
        valid closure exists and none can be compiled: the batch tier
        is off, the path cache is off, the walk is not warm under the
        current generation, or the walk is uncacheable (CPU handlers,
        armed datapath faults).  On ``None`` the caller injects
        per-packet; one real inject warms the walk, so the next
        ``inject_batch`` compiles and the rest of the run replays.

        Batched replays do *not* append to the :attr:`deliveries` log —
        the log is a per-packet debugging aid, not a fingerprinted
        observable, and materializing N entries would defeat the tier.
        """
        if count < 1:
            raise ValueError("batch count must be >= 1")
        if not (self.path_cache_enabled and self.batch_enabled):
            return None
        generation = self._network_generation()
        key = (device, port, frame)
        closure = self._batch.lookup(key, generation)
        if closure is None:
            if generation != self._path_generation:
                self._batch.cold_misses += 1
                return None
            walk = self._path_cache.get(key)
            if walk is None:
                self._batch.cold_misses += 1
                return None
            closure = self._batch.compile(key, walk, generation)
        return self._batch.replay(self, closure, count)

    def warm_paths(
        self, injections: Iterable[tuple[str, int, bytes]]
    ) -> int:
        """Populate the path cache by sandboxed dry walks (S27 prewarm).

        Walks each ``(device, port, frame)`` once inside
        :meth:`sandbox` — every fingerprinted counter is restored, so
        warming carries no packet — and memoizes the cacheable walks.
        A later :meth:`inject` or :meth:`inject_batch` of the same key
        then replays (or compiles) without ever taking the slow walk:
        this is what moves the batch tier's per-flow warm-up cost out
        of the dispatch loop and into setup.

        Returns the number of walks cached.  Stops early if a walk
        mutates decision state (a learning device — the same caveat as
        :meth:`sandbox`): the already-recorded walks would be stale.
        """
        if not self.path_cache_enabled:
            return 0
        generation = self._network_generation()
        if generation != self._path_generation:
            if self._path_cache:
                self.path_invalidations += 1
                self._path_cache.clear()
            self._path_generation = generation
        warmed = 0
        with self.sandbox():
            for device, port, frame in injections:
                key = (device, port, frame)
                if key in self._path_cache:
                    continue
                # A dry walk is still a slow walk taken: it counts as a
                # path miss (operational stats move, like pingall's).
                self.path_misses += 1
                _, walk = self._walk(device, port, frame, record=True)
                if self._network_generation() != generation:
                    break
                if walk is None:
                    continue
                if len(self._path_cache) >= PATH_CACHE_CAPACITY:
                    del self._path_cache[next(iter(self._path_cache))]
                self._path_cache[key] = walk
                warmed += 1
        self._batch.prewarmed += warmed
        return warmed

    def run(self, traffic: list[tuple[str, int, bytes]]) -> list[Delivery]:
        """Inject a sequence of ``(device, port, frame)``; returns all
        deliveries in order."""
        self.inject_many(traffic)
        return self.deliveries

    # -- the path cache -------------------------------------------------
    def _network_generation(self) -> int:
        """Sum of all device generations plus the wiring counter.

        Each term is monotonic, so the sum changes whenever any device's
        decision-visible state (or the graph itself) does.
        """
        total = self._wiring_generation
        for project in self._devices.values():
            total += project.state_generation()
        return total

    def _inject_cached(
        self, device: str, port: int, frame: bytes, generation: int
    ) -> tuple[InjectionResult, int]:
        """One cached injection; returns (result, current generation)."""
        if generation != self._path_generation:
            if self._path_cache:
                self.path_invalidations += 1
                self._path_cache.clear()
            self._path_generation = generation
        key = (device, port, frame)
        cached = self._path_cache.get(key)
        if cached is not None:
            self.path_hits += 1
            return self._replay_walk(cached), generation
        self.path_misses += 1
        result, walk = self._walk(device, port, frame, record=True)
        after = self._network_generation()
        if walk is None:
            self.path_bypasses += 1
        elif after == generation:
            if len(self._path_cache) >= PATH_CACHE_CAPACITY:
                del self._path_cache[next(iter(self._path_cache))]
            self._path_cache[key] = walk
        return result, after

    def _replay_walk(self, walk: _CachedWalk) -> InjectionResult:
        first = len(self.deliveries)
        for at, frame, hops in walk.deliveries:
            self.deliveries.append(Delivery(at, frame, hops))
        self.dropped_hop_limit += walk.dropped
        self.dropped_link_down += walk.link_down
        self.forwarded_hops += walk.forwarded
        for opl, packets, drops, deltas in walk.ops:
            opl.packets += packets
            opl.drops += drops
            counters = opl.counters
            for name, delta in deltas:
                counters[name] = counters.get(name, 0) + delta
        return InjectionResult(
            self.deliveries[first:],
            dropped_hop_limit=walk.dropped,
            dropped_link_down=walk.link_down,
            hop_limit_sites=walk.hop_limit_sites,
            link_down_sites=walk.link_down_sites,
        )

    def _walk(
        self, device: str, port: int, frame: bytes, record: bool
    ) -> tuple[InjectionResult, Optional[_CachedWalk]]:
        """The slow hop walk; optionally records a replayable walk.

        Recording returns ``None`` (uncacheable) when the walk invoked a
        CPU handler (arbitrary software state) or touched a device with
        an armed data-path fault session (whose draws must stay
        per-packet).
        """
        first = len(self.deliveries)
        drops_before = self.dropped_hop_limit
        link_down_before = self.dropped_link_down
        forwarded_before = self.forwarded_hops
        cacheable = record
        link_down_sites: list[tuple[str, int]] = []
        hop_limit_sites: list[tuple[str, int]] = []
        snapshots: dict[str, tuple] = {}
        work: deque[tuple[Attachment, bytes, int]] = deque(
            [(Attachment(device, PortRef("phys", port)), frame, 0)]
        )
        while work:
            at, data, hops = work.popleft()
            project = self.device(at.device)
            if record and at.device not in snapshots:
                snapshots[at.device] = (
                    project.opl, project.opl.packets, project.opl.drops,
                    dict(project.opl.counters),
                )
                if project.datapath_faults is not None:
                    cacheable = False
            outputs = project.forward_behavioural(data, at.port)
            handled: list[tuple[PortRef, bytes]] = []
            for out_port, out_frame in outputs:
                if out_port.kind == "dma":
                    cpu = self._cpu.get(at.device)
                    if cpu is None:
                        continue  # no software attached: punted = dropped
                    cacheable = False
                    for egress, reply in cpu(out_frame, out_port.index):
                        handled.append((PortRef("dma", egress), reply))
                else:
                    handled.append((out_port, out_frame))
            # Re-run CPU-injected frames through the same device.
            requeued = []
            for out_port, out_frame in handled:
                if out_port.kind == "dma":
                    requeued.extend(
                        project.forward_behavioural(out_frame, out_port)
                    )
                else:
                    requeued.append((out_port, out_frame))
            for out_port, out_frame in requeued:
                if out_port.kind != "phys":
                    continue
                self.forwarded_hops += 1
                exit_at = Attachment(at.device, out_port)
                peer = self._links.get(exit_at)
                if peer is None:
                    self.deliveries.append(Delivery(exit_at, out_frame, hops + 1))
                    continue
                if exit_at in self._down_ports:
                    # The copy went out onto a cable with link down: it
                    # vanishes on the wire, never reaching the peer.
                    self.dropped_link_down += 1
                    link_down_sites.append((at.device, out_port.index))
                    continue
                if hops + 1 >= self.hop_limit:
                    self.dropped_hop_limit += 1
                    hop_limit_sites.append((at.device, out_port.index))
                    continue
                work.append((peer, out_frame, hops + 1))
        result = InjectionResult(
            self.deliveries[first:],
            dropped_hop_limit=self.dropped_hop_limit - drops_before,
            dropped_link_down=self.dropped_link_down - link_down_before,
            hop_limit_sites=tuple(hop_limit_sites),
            link_down_sites=tuple(link_down_sites),
        )
        if not cacheable:
            return result, None
        ops = []
        for opl, packets, drops, counters in snapshots.values():
            d_packets = opl.packets - packets
            d_drops = opl.drops - drops
            deltas = tuple(
                (name, count - counters.get(name, 0))
                for name, count in opl.counters.items()
                if count != counters.get(name, 0)
            )
            if d_packets or d_drops or deltas:
                ops.append((opl, d_packets, d_drops, deltas))
        walk = _CachedWalk(
            deliveries=tuple((d.at, d.frame, d.hops) for d in result),
            dropped=result.dropped_hop_limit,
            forwarded=self.forwarded_hops - forwarded_before,
            link_down=result.dropped_link_down,
            ops=tuple(ops),
            link_down_sites=result.link_down_sites,
            hop_limit_sites=result.hop_limit_sites,
        )
        return result, walk

    # -- fast-path control & stats --------------------------------------
    def set_fastpath(self, enabled: bool) -> None:
        """Enable/disable the path cache and every device's microflow
        cache in one switch — the A/B toggle the E18 bench and
        ``nf-mon fabric --no-fastpath`` use."""
        self.path_cache_enabled = enabled
        if not enabled:
            self._path_cache.clear()
            self._path_generation = -1
            self._batch.clear()
        for project in self._devices.values():
            cache = getattr(project, "fastpath", None)
            if cache is not None:
                cache.enabled = enabled
                if not enabled:
                    cache.clear()

    def set_batch(self, enabled: bool) -> None:
        """Enable/disable the compiled-closure batch tier alone.

        Orthogonal to :meth:`set_fastpath`: the A/B switch behind
        ``nf-mon fabric --no-batch``, which keeps the flow caches warm
        but forces :meth:`inject_batch` to decline so callers take the
        per-packet reference path."""
        self.batch_enabled = enabled
        if not enabled:
            self._batch.clear()

    @property
    def path_entries(self) -> int:
        return len(self._path_cache)

    def batch_stats(self) -> dict[str, int]:
        """The batch tier's operational counters (never fingerprinted)."""
        return self._batch.stats()

    def fastpath_stats(self) -> dict[str, int]:
        """Aggregate flow-cache counters: path cache + device caches."""
        stats = {
            "path_hits": self.path_hits,
            "path_misses": self.path_misses,
            "path_invalidations": self.path_invalidations,
            "path_bypasses": self.path_bypasses,
            "path_entries": self.path_entries,
            "device_hits": 0,
            "device_misses": 0,
            "device_invalidations": 0,
            "device_bypasses": 0,
            "device_entries": 0,
        }
        for project in self._devices.values():
            cache = getattr(project, "fastpath", None)
            if cache is None:
                continue
            stats["device_hits"] += cache.hits
            stats["device_misses"] += cache.misses
            stats["device_invalidations"] += cache.invalidations
            stats["device_bypasses"] += cache.bypasses
            stats["device_entries"] += len(cache.entries)
        return stats

    # ------------------------------------------------------------------
    # Probes: observing the live network without perturbing it
    # ------------------------------------------------------------------
    @contextmanager
    def sandbox(self):
        """Run probe traffic without moving any fingerprinted counter.

        Snapshots every observable the fabric report is built from —
        per-device packet/drop/counter totals, the delivery log,
        hop-limit / link-down losses and forwarded hops — and restores
        them on exit, so a mid-run ``pingall`` (or any other probe
        injection) leaves the run's fingerprint byte-identical to a run
        that never probed.  Only *counters* are restored, not tables:
        probes through learning devices would still teach them, so
        probing is meant for statically-programmed fabrics
        (``learning=False``), which is what the fabric builders make.
        Cache statistics are operational (never fingerprinted) and are
        deliberately left moving.
        """
        saved_opl = []
        for project in self._devices.values():
            opl = getattr(project, "opl", None)
            if opl is not None:
                saved_opl.append(
                    (opl, opl.packets, opl.drops, dict(opl.counters))
                )
        saved_deliveries = len(self.deliveries)
        saved_hop = self.dropped_hop_limit
        saved_link = self.dropped_link_down
        saved_fwd = self.forwarded_hops
        try:
            yield self
        finally:
            for opl, packets, drops, counters in saved_opl:
                opl.packets = packets
                opl.drops = drops
                opl.counters.clear()
                opl.counters.update(counters)
            del self.deliveries[saved_deliveries:]
            self.dropped_hop_limit = saved_hop
            self.dropped_link_down = saved_link
            self.forwarded_hops = saved_fwd

    def reachability_matrix(self) -> dict[str, frozenset[str]]:
        """Graph-level reachability: BFS over cables with link up.

        ``{device: frozenset(devices reachable from it, itself
        included)}``.  This is *potential* connectivity — which
        components the live cabling forms — independent of what the
        forwarding tables would actually do; :meth:`pingall` is the
        data-plane truth to compare against.
        """
        out: dict[str, frozenset[str]] = {}
        for start in self.device_names():
            seen = {start}
            work = deque([start])
            while work:
                name = work.popleft()
                for local_port, (peer, _) in self.neighbors(name).items():
                    if peer in seen:
                        continue
                    if Attachment(name, PortRef("phys", local_port)) \
                            in self._down_ports:
                        continue
                    seen.add(peer)
                    work.append(peer)
            out[start] = frozenset(seen)
        return out

    def pingall(
        self,
        endpoints: dict[str, Attachment],
        frame_for: Callable[[str, str], bytes],
    ) -> dict[tuple[str, str], Ping]:
        """Probe every ordered endpoint pair through the data plane.

        ``endpoints`` names the attachment points (host label →
        :class:`Attachment`); ``frame_for(src, dst)`` builds the probe
        frame for one pair.  Each probe is a real :meth:`inject` — it
        exercises the actual forwarding tables, caches included — but
        the whole sweep runs inside :meth:`sandbox`, so no fingerprinted
        observable moves.  Returns ``{(src, dst): Ping}`` for every
        ordered pair with ``src != dst``.
        """
        out: dict[tuple[str, str], Ping] = {}
        with self.sandbox():
            for src in sorted(endpoints):
                for dst in sorted(endpoints):
                    if src == dst:
                        continue
                    entry = endpoints[src]
                    want = endpoints[dst]
                    result = self.inject(
                        entry.device, entry.port.index, frame_for(src, dst)
                    )
                    copies = [d for d in result if d.at == want]
                    out[(src, dst)] = Ping(
                        delivered=bool(copies),
                        hops=copies[0].hops if copies else 0,
                        copies=len(copies),
                        stray=len(result) - len(copies),
                    )
        return out

    # ------------------------------------------------------------------
    def delivered_at(self, device: str, port: int) -> list[bytes]:
        want = Attachment(device, PortRef("phys", port))
        return [d.frame for d in self.deliveries if d.at == want]

    def describe(self) -> str:
        lines = [f"network: {len(self._devices)} devices, "
                 f"{len(self._links) // 2} links"]
        for name, project in sorted(self._devices.items()):
            cabled = [
                f"{attachment.port}->{self._links[attachment].device}"
                for attachment in self._links
                if attachment.device == name
            ]
            lines.append(f"  {name} ({type(project).__name__}): "
                         f"{', '.join(sorted(cabled)) or 'no links'}")
        return "\n".join(lines)
