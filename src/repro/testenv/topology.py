"""Multi-device network topologies over the behavioural target.

§1 motivates NetFPGA with datacenter-scale evaluation: experiments need
*networks* of devices, not single boards.  :class:`Network` wires any
number of project instances together by their physical ports and
propagates packets hop by hop using each device's behavioural
forwarding — with per-device CPU slow paths, edge-host attachment and a
hop limit standing in for TTL on L2 storms.

The model is transaction-level: one injected packet is carried to
quiescence before the next (the same semantics as the ``hw`` harness
target, extended across devices).

:meth:`Network.inject` returns an :class:`InjectionResult` — a list of
the deliveries the injection produced that also carries the number of
in-flight copies the hop limit truncated, so broadcast-storm clamping is
observable per injection (and cumulatively via
:attr:`Network.dropped_hop_limit`) instead of silently vanishing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.projects.base import PortRef, ReferencePipeline

#: cpu_handler(frame, phys_port_index) -> [(phys_port_index, frame), ...]
CpuHandler = Callable[[bytes, int], list[tuple[int, bytes]]]

#: Default bound on forwarding hops for one injected packet (and all the
#: copies flooding creates).  Generous for real topologies, small enough
#: to terminate a broadcast storm quickly.
DEFAULT_HOP_LIMIT = 64


@dataclass(frozen=True)
class Attachment:
    """A device port: ``("s1", PortRef("phys", 2))``."""

    device: str
    port: PortRef


@dataclass
class Delivery:
    """A packet that exited the network at an edge port."""

    at: Attachment
    frame: bytes
    hops: int


class TopologyError(RuntimeError):
    """Bad wiring: unknown device, port reuse, self-links."""


class InjectionResult(list):
    """The deliveries of one injection, plus what the hop limit ate.

    Behaves exactly like the ``list[Delivery]`` :meth:`Network.inject`
    always returned (so existing callers are untouched) and additionally
    exposes :attr:`dropped_hop_limit` — the number of in-flight copies
    this injection lost to the hop limit, the per-injection slice of the
    network-wide :attr:`Network.dropped_hop_limit` counter.
    """

    __slots__ = ("dropped_hop_limit",)

    def __init__(self, deliveries=(), dropped_hop_limit: int = 0):
        super().__init__(deliveries)
        self.dropped_hop_limit = dropped_hop_limit


class Network:
    """A set of devices, point-to-point links, and edge ports."""

    def __init__(self, hop_limit: int = DEFAULT_HOP_LIMIT):
        self.hop_limit = hop_limit
        self._devices: dict[str, ReferencePipeline] = {}
        self._cpu: dict[str, CpuHandler] = {}
        self._links: dict[Attachment, Attachment] = {}
        self.deliveries: list[Delivery] = []
        self.dropped_hop_limit = 0
        self.forwarded_hops = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_device(
        self,
        name: str,
        project: ReferencePipeline,
        cpu_handler: Optional[CpuHandler] = None,
    ) -> ReferencePipeline:
        if name in self._devices:
            raise TopologyError(f"duplicate device name {name!r}")
        self._devices[name] = project
        if cpu_handler is not None:
            self._cpu[name] = cpu_handler
        return project

    def device(self, name: str) -> ReferencePipeline:
        if name not in self._devices:
            raise TopologyError(f"unknown device {name!r}")
        return self._devices[name]

    def link(self, a_device: str, a_port: int, b_device: str, b_port: int) -> None:
        """Connect two physical ports with a full-duplex cable."""
        a = Attachment(a_device, PortRef("phys", a_port))
        b = Attachment(b_device, PortRef("phys", b_port))
        for end in (a, b):
            if end.device not in self._devices:
                raise TopologyError(f"unknown device {end.device!r}")
            if end in self._links:
                raise TopologyError(f"port {end} already cabled")
        if a == b:
            raise TopologyError("cannot cable a port to itself")
        self._links[a] = b
        self._links[b] = a

    def edge_ports(self, device: str) -> list[PortRef]:
        """The device's un-cabled physical ports (host attachment points)."""
        self.device(device)
        return [
            PortRef("phys", i)
            for i in range(4)
            if Attachment(device, PortRef("phys", i)) not in self._links
        ]

    # ------------------------------------------------------------------
    # Graph introspection (what the fabric builders walk)
    # ------------------------------------------------------------------
    def device_names(self) -> list[str]:
        """All device names, sorted (the graph's vertex set)."""
        return sorted(self._devices)

    def neighbors(self, device: str) -> dict[int, tuple[str, int]]:
        """``{local_port: (peer_device, peer_port)}`` for one device."""
        self.device(device)
        return {
            attachment.port.index: (peer.device, peer.port.index)
            for attachment, peer in self._links.items()
            if attachment.device == device
        }

    def links(self) -> Iterator[tuple[Attachment, Attachment]]:
        """Every cable once, ends ordered by (device, port)."""
        for a, b in self._links.items():
            if (a.device, a.port.index) < (b.device, b.port.index):
                yield a, b

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def inject(self, device: str, port: int, frame: bytes) -> InjectionResult:
        """Carry one packet (and every copy it spawns) to quiescence.

        Returns an :class:`InjectionResult`: the deliveries this
        injection produced (also appended to :attr:`deliveries`) plus the
        count of copies the hop limit truncated, so storm clamping is
        accounted rather than silent.
        """
        first = len(self.deliveries)
        drops_before = self.dropped_hop_limit
        work: deque[tuple[Attachment, bytes, int]] = deque(
            [(Attachment(device, PortRef("phys", port)), frame, 0)]
        )
        while work:
            at, data, hops = work.popleft()
            project = self.device(at.device)
            outputs = project.forward_behavioural(data, at.port)
            handled: list[tuple[PortRef, bytes]] = []
            for out_port, out_frame in outputs:
                if out_port.kind == "dma":
                    cpu = self._cpu.get(at.device)
                    if cpu is None:
                        continue  # no software attached: punted = dropped
                    for egress, reply in cpu(out_frame, out_port.index):
                        handled.append((PortRef("dma", egress), reply))
                else:
                    handled.append((out_port, out_frame))
            # Re-run CPU-injected frames through the same device.
            requeued = []
            for out_port, out_frame in handled:
                if out_port.kind == "dma":
                    requeued.extend(
                        project.forward_behavioural(out_frame, out_port)
                    )
                else:
                    requeued.append((out_port, out_frame))
            for out_port, out_frame in requeued:
                if out_port.kind != "phys":
                    continue
                self.forwarded_hops += 1
                exit_at = Attachment(at.device, out_port)
                peer = self._links.get(exit_at)
                if peer is None:
                    self.deliveries.append(Delivery(exit_at, out_frame, hops + 1))
                    continue
                if hops + 1 >= self.hop_limit:
                    self.dropped_hop_limit += 1
                    continue
                work.append((peer, out_frame, hops + 1))
        return InjectionResult(
            self.deliveries[first:],
            dropped_hop_limit=self.dropped_hop_limit - drops_before,
        )

    def run(self, traffic: list[tuple[str, int, bytes]]) -> list[Delivery]:
        """Inject a sequence of ``(device, port, frame)``; returns all
        deliveries in order."""
        for device, port, frame in traffic:
            self.inject(device, port, frame)
        return self.deliveries

    # ------------------------------------------------------------------
    def delivered_at(self, device: str, port: int) -> list[bytes]:
        want = Attachment(device, PortRef("phys", port))
        return [d.frame for d in self.deliveries if d.at == want]

    def describe(self) -> str:
        lines = [f"network: {len(self._devices)} devices, "
                 f"{len(self._links) // 2} links"]
        for name, project in sorted(self._devices.items()):
            cabled = [
                f"{attachment.port}->{self._links[attachment].device}"
                for attachment in self._links
                if attachment.device == name
            ]
            lines.append(f"  {name} ({type(project).__name__}): "
                         f"{', '.join(sorted(cabled)) or 'no links'}")
        return "\n".join(lines)
