"""The chaos soak harness: long scenarios under control-plane fault plans.

A soak run is a sequence of *epochs*.  Each epoch draws the control-
plane fault sites from the seeded session (a soft device reset that
wipes tables and wedges the manager; per-port link flaps that eat that
epoch's ingress traffic), applies a deterministic mutation schedule
through the resilient control plane, runs one supervision tick
(heartbeat → restart, breaker-gated audit → repair), then pushes an
epoch of traffic through the unified harness and checks the standing
invariants:

* **desired ⊆ hardware after quiesce** — once a tick reports converged,
  no desired entry may be missing from the hardware tables;
* **no silent blackholing** — a probe frame addressed to a desired
  static entry must egress somewhere (it may *flood* while unlearned,
  it may *queue* while degraded, but a converged plane must deliver).

Determinism is the whole point: every decision comes from the plan's
per-site streams or the epoch index, never from wall clock or run mode,
so the same ``(plan, seed)`` yields identical fault counters *and*
identical reconciliation counters under ``sim`` and ``hw`` — the soak
extension of the harness's mode-identical FaultReport contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.faults.plan import FaultPlan, get_plan
from repro.host.switch_manager import SwitchManager
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame
from repro.projects.base import PortRef
from repro.projects.reference_switch import ReferenceSwitch
from repro.resilience.control import ControlPlane, build_control_plane
from repro.resilience.supervisor import SupervisedManager
from repro.telemetry.probes import probe_faults, probe_resilience
from repro.telemetry.session import TelemetrySession, TelemetrySnapshot
from repro.testenv.harness import Stimulus, run_hw, run_sim

#: Default soak length; CI's smoke job shortens it, nightly runs extend.
SOAK_EPOCHS = 8
#: Supervision ticks allowed for the post-soak cooldown to converge.
COOLDOWN_TICKS = 6

#: Soak topology MACs: hosts live on the four physical ports; services
#: are the static entries the mutation schedule pins.
_HOST_MAC_BASE = 0x02_00_00_00_00_10
_SERVICE_MAC_BASE = 0x02_00_00_00_00_40
_PROBER_MAC = 0x02_00_00_00_00_77


def _host_mac(i: int) -> MacAddr:
    return MacAddr(_HOST_MAC_BASE + i)


def _frame(src_mac: MacAddr, dst_mac: MacAddr, salt: int) -> bytes:
    return make_udp_frame(
        src_mac,
        dst_mac,
        Ipv4Addr(0x0A00_0000 + (salt & 0xFF)),
        Ipv4Addr(0x0A00_0100 + (salt & 0xFF)),
        size=96,
    ).pack()


@dataclass
class SoakReport:
    """Everything one soak run produced, determinism-comparable."""

    mode: str
    plan: str
    seed: int
    epochs: int
    resets: int = 0
    flap_lost_frames: int = 0
    injected_frames: int = 0
    forwarded_frames: int = 0
    degraded_epochs: int = 0
    invariant_checks: int = 0
    invariant_failures: list[str] = field(default_factory=list)
    converged: bool = False
    fault_counters: dict[str, int] = field(default_factory=dict)
    resilience_counters: dict[str, int] = field(default_factory=dict)
    telemetry: Optional[TelemetrySnapshot] = None

    def fingerprint(self) -> dict[str, int]:
        """The mode-independent signature two runs must agree on.

        ``forwarded_frames`` is deliberately absent: output totals are
        *cycle-dependent* — concurrently injected frames race MAC
        learning in the kernel, so a destination one mode floods the
        other may unicast — the same kernel-domain vs parity split the
        telemetry registry draws.  Everything decided before the mode
        fork (fault draws, reconciliation, injected/flap-lost traffic,
        invariant verdicts) must agree exactly.
        """
        out = {f"fault:{k}": v for k, v in sorted(self.fault_counters.items())}
        out.update(
            (f"res:{k}", v) for k, v in sorted(self.resilience_counters.items())
        )
        out["resets"] = self.resets
        out["flap_lost_frames"] = self.flap_lost_frames
        out["injected_frames"] = self.injected_frames
        out["degraded_epochs"] = self.degraded_epochs
        out["invariant_failures"] = len(self.invariant_failures)
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "plan": self.plan,
            "seed": self.seed,
            "epochs": self.epochs,
            "converged": self.converged,
            "forwarded_frames": self.forwarded_frames,
            "invariant_checks": self.invariant_checks,
            "invariant_failures": list(self.invariant_failures),
            **self.fingerprint(),
        }


def run_soak(
    mode: str,
    plan: Union[str, FaultPlan],
    seed: int = 0,
    epochs: int = SOAK_EPOCHS,
    project_factory: Callable[[], Any] = ReferenceSwitch,
    telemetry: bool = False,
) -> SoakReport:
    """Soak ``project_factory``'s design under ``plan`` for ``epochs``.

    ``mode`` is the harness target ('sim' | 'hw'); ``plan`` a registered
    plan name (expanded with ``seed``) or an explicit
    :class:`~repro.faults.plan.FaultPlan`.  Returns a
    :class:`SoakReport` whose :meth:`~SoakReport.fingerprint` is
    identical across modes for the same ``(plan, seed)``.
    """
    if mode not in ("sim", "hw"):
        raise ValueError(f"mode must be 'sim' or 'hw', not {mode!r}")
    if isinstance(plan, str):
        plan = get_plan(plan, seed=seed)
    session = plan.session()

    project = project_factory()
    plane = build_control_plane(project, session)
    manager = SwitchManager(project, control=plane)
    plane.supervisor.add(
        SupervisedManager("switch_manager", manager.heartbeat, manager.restart)
    )

    tsession = TelemetrySession(mode) if telemetry else None
    if tsession is not None:
        probe_faults(session, tsession)
        probe_resilience(plane, tsession)

    run = run_sim if mode == "sim" else run_hw
    report = SoakReport(mode=mode, plan=plan.name, seed=plan.seed, epochs=epochs)

    def run_traffic(stimuli: list[Stimulus]) -> int:
        result = run(project, stimuli, telemetry=tsession)
        return result.total_packets()

    def probe_delivers(service_mac: int) -> bool:
        """Blackhole check: a frame to a desired MAC must egress."""
        probe = _frame(MacAddr(_PROBER_MAC), MacAddr(service_mac), salt=0x77)
        # Inject opposite the pinned port so delivery crosses the table.
        pinned_bits = plane.store.get("mac", service_mac)
        ingress = 0 if pinned_bits != 1 else 1
        return run_traffic([Stimulus(PortRef("phys", ingress), probe)]) > 0

    for epoch in range(epochs):
        # 1. Control-plane faults for this epoch, drawn once, mode-free.
        if session.device_reset_faults():
            project.soft_reset()
            manager.wedge()
            report.resets += 1
        flapped = {
            i for i in range(4) if session.link_flap_faults()
        }

        # 2. Deterministic mutation schedule: pin one service MAC per
        # epoch through the manager (→ desired store → faulty face).
        service = _SERVICE_MAC_BASE + epoch
        manager.add_static_entry(str(MacAddr(service)), epoch % 4)

        # 3. One supervision tick: heartbeats, breaker-gated reconcile.
        healthy = plane.tick()
        if plane.degraded:
            report.degraded_epochs += 1

        # 4. An epoch of traffic; flapped ingress ports eat their frames.
        stimuli = []
        for i in range(4):
            frame = _frame(_host_mac(i), _host_mac((i + 1) % 4), salt=epoch)
            if i in flapped:
                report.flap_lost_frames += 1
                continue
            stimuli.append(Stimulus(PortRef("phys", i), frame))
        report.injected_frames += len(stimuli)
        report.forwarded_frames += run_traffic(stimuli)

        # 5. Invariants — only binding once the plane reports converged.
        if healthy:
            report.invariant_checks += 1
            missing = [
                d for d in plane.auditor.divergences() if d[1] == "set"
            ]
            if missing:
                report.invariant_failures.append(
                    f"epoch {epoch}: {len(missing)} desired entries missing "
                    f"from hardware after converged tick"
                )
            if not probe_delivers(_SERVICE_MAC_BASE):
                report.invariant_failures.append(
                    f"epoch {epoch}: probe to pinned service MAC blackholed"
                )

    # Cooldown: faults cease; the plane must converge and drain its queue.
    for face in plane.auditor.faces.values():
        face.fault_session = None
    for _ in range(COOLDOWN_TICKS):
        if plane.tick():
            report.converged = True
            break
    report.invariant_checks += 1
    leftover = [d for d in plane.auditor.divergences() if d[1] == "set"]
    if leftover:
        report.invariant_failures.append(
            f"cooldown: {len(leftover)} desired entries never reached hardware"
        )
    if report.converged and not probe_delivers(_SERVICE_MAC_BASE + epochs - 1):
        report.invariant_failures.append(
            "cooldown: probe to last pinned service MAC blackholed"
        )

    report.fault_counters = dict(session.report().counters)
    report.resilience_counters = plane.counters_snapshot()
    if tsession is not None:
        report.telemetry = tsession.snapshot()
    return report
