"""The harness: one test description, two execution targets.

A :class:`NetFpgaTest` names a project factory, the stimuli to inject
and the packets expected at each port.  ``run_test(test, mode)`` builds
a *fresh* project (so sim and hw runs cannot contaminate each other),
executes, and checks expectations; per-port packet order must match, but
cross-port interleaving is unspecified (as on real hardware).

An optional ``cpu_handler`` models the software slow path: packets that
arrive at DMA ports are handed to it and the frames it returns are
re-injected through the corresponding DMA source, iterating until the
system quiesces — the router's ARP/ICMP round trips run under both
modes this way.

``run_test(test, mode, faults=...)`` re-runs any existing test under a
named or explicit :class:`~repro.faults.plan.FaultPlan`.  Link faults
are applied to the stimuli on their way in — the same seeded decision
stream in both modes, so recovery counters are mode-identical — with
per-frame retransmission up to the plan's budget.  The harness then
asserts eventual delivery (exact expectations) or, when the plan allows
permanent loss, clean *counted* loss: each port's output must be an
ordered subsequence of its expectation and every missing frame is
accounted in the attached :class:`~repro.faults.plan.FaultReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.core.axis import StreamPacket, StreamSink, StreamSource
from repro.core.simulator import Simulator
from repro.faults.errors import NonQuiescent
from repro.faults.plan import FaultPlan, FaultReport, FaultSession, get_plan
from repro.projects.base import ALL_PORTS, PortRef, ReferencePipeline
from repro.telemetry.probes import PipelineProbes, probe_faults
from repro.telemetry.session import TelemetrySession, TelemetrySnapshot, make_session

#: cpu_handler(frame, phys_port_index) -> [(phys_port_index, frame), ...]
CpuHandler = Callable[[bytes, int], list[tuple[int, bytes]]]

#: Safety bound on sim length per round.
MAX_CYCLES = 200_000
#: Rounds of CPU reinjection before declaring non-quiescence.
MAX_CPU_ROUNDS = 8


@dataclass(frozen=True)
class Stimulus:
    """One injected packet."""

    port: PortRef
    frame: bytes


@dataclass
class HarnessResult:
    """Everything a check needs: per-port outputs and run metadata."""

    mode: str
    outputs: dict[PortRef, list[bytes]]
    cycles: int = 0
    cpu_rounds: int = 0
    #: Present when the run executed under a fault plan.
    fault_report: Optional[FaultReport] = None
    #: Present when the run executed with telemetry attached.
    telemetry: Optional[TelemetrySnapshot] = None

    def at(self, port: PortRef) -> list[bytes]:
        return self.outputs.get(port, [])

    def total_packets(self) -> int:
        return sum(len(v) for v in self.outputs.values())


@dataclass
class NetFpgaTest:
    """A unified test description (the ``.py`` test files of NetFPGA)."""

    name: str
    project_factory: Callable[[], ReferencePipeline]
    stimuli: list[Stimulus]
    expected: dict[PortRef, list[bytes]] = field(default_factory=dict)
    cpu_handler_factory: Optional[Callable[[ReferencePipeline], CpuHandler]] = None
    #: Ports with expectations are checked exactly; others must be empty
    #: unless listed here.
    ignore_ports: tuple[PortRef, ...] = ()


# ----------------------------------------------------------------------
# sim target
# ----------------------------------------------------------------------
def run_sim(
    project: ReferencePipeline,
    stimuli: list[Stimulus],
    cpu_handler: Optional[CpuHandler] = None,
    egress_pacing: Optional[Callable[[int], bool]] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> HarnessResult:
    """Execute against the cycle-driven kernel.

    ``egress_pacing(cycle) -> stall?`` throttles the physical-port sinks,
    modelling the MAC drain rate (e.g. ``lambda c: c % 5 != 0`` ≈ 10G on
    the 256-bit/200MHz pipeline).  Without it sinks are always ready, so
    the internal pipeline never congests — fine for functional tests,
    wrong for queueing experiments.

    ``telemetry`` (a ``sim``-mode :class:`TelemetrySession`) arms the
    kernel pipeline probes: one cycle hook, zero module changes.
    """
    sim = Simulator()
    sources = {p: StreamSource(f"tb_src_{p}", project.rx[p]) for p in ALL_PORTS}
    sinks = {
        p: StreamSink(
            f"tb_snk_{p}",
            project.tx[p],
            backpressure=egress_pacing if p.kind == "phys" else None,
        )
        for p in ALL_PORTS
    }
    for module in (*sources.values(), project, *sinks.values()):
        sim.add(module)
    if telemetry is not None:
        probes = PipelineProbes(project, telemetry)
        sim.add_cycle_hook(probes.on_cycle)

    for stim in stimuli:
        packet = StreamPacket(stim.frame).with_src_port(stim.port.bit)
        sources[stim.port].send(packet)

    consumed_dma: dict[PortRef, int] = {p: 0 for p in ALL_PORTS if p.kind == "dma"}
    cpu_rounds = 0

    def drain() -> None:
        quiet_streak = 0
        last_tx_beats = -1
        for _ in range(MAX_CYCLES):
            sim.step()
            tx_beats = sum(project.tx[p].beats_transferred for p in ALL_PORTS)
            if all(src.idle for src in sources.values()) and tx_beats == last_tx_beats:
                quiet_streak += 1
            else:
                quiet_streak = 0
            last_tx_beats = tx_beats
            # Quiescent: sources empty and no egress beat for a window
            # longer than any pacing gap — queued packets have flushed.
            if quiet_streak >= 256:
                return
        raise NonQuiescent(f"simulation did not drain within {MAX_CYCLES} cycles")

    drain()
    if cpu_handler is not None:
        for cpu_rounds in range(1, MAX_CPU_ROUNDS + 1):
            reinjected = 0
            for port in consumed_dma:
                fresh = sinks[port].packets[consumed_dma[port] :]
                consumed_dma[port] = len(sinks[port].packets)
                for packet in fresh:
                    for out_port, frame in cpu_handler(packet.data, port.index):
                        dma_port = PortRef("dma", out_port)
                        sources[dma_port].send(
                            StreamPacket(frame).with_src_port(dma_port.bit)
                        )
                        reinjected += 1
            if reinjected == 0:
                break
            drain()
        else:
            raise NonQuiescent(
                f"CPU slow path did not quiesce after {MAX_CPU_ROUNDS} "
                f"reinjection rounds"
            )

    outputs: dict[PortRef, list[bytes]] = {}
    for port, sink in sinks.items():
        if port.kind == "dma" and cpu_handler is not None:
            # DMA arrivals were consumed by the CPU model.
            outputs[port] = []
            continue
        outputs[port] = [packet.data for packet in sink.packets]
    return HarnessResult("sim", outputs, cycles=sim.cycle, cpu_rounds=cpu_rounds)


# ----------------------------------------------------------------------
# hw target (behavioural fast path)
# ----------------------------------------------------------------------
def run_hw(
    project: ReferencePipeline,
    stimuli: list[Stimulus],
    cpu_handler: Optional[CpuHandler] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> HarnessResult:
    """Execute against the behavioural model — the 'real device' stand-in.

    With ``telemetry`` (an ``hw``-mode session) attached, packet ingress
    and egress become trace events stamped in wall-clock nanoseconds —
    the domain a real device's software-visible events live in.
    """
    trace = telemetry.trace if telemetry is not None else None
    outputs: dict[PortRef, list[bytes]] = {p: [] for p in ALL_PORTS}
    work: list[tuple[PortRef, bytes]] = [(s.port, s.frame) for s in stimuli]
    cpu_rounds = 0
    for round_idx in range(MAX_CPU_ROUNDS + 1):
        next_work: list[tuple[PortRef, bytes]] = []
        for port, frame in work:
            if trace is not None:
                trace.emit("packet_in", str(port), bytes=len(frame))
            for out_port, out_frame in project.forward_behavioural(frame, port):
                if out_port.kind == "dma" and cpu_handler is not None:
                    for egress, reply in cpu_handler(out_frame, out_port.index):
                        next_work.append((PortRef("dma", egress), reply))
                else:
                    outputs[out_port].append(out_frame)
                    if trace is not None:
                        trace.emit("packet_out", str(out_port), bytes=len(out_frame))
        if not next_work:
            break
        work = next_work
        cpu_rounds = round_idx + 1
    else:
        raise NonQuiescent(
            f"CPU slow path did not quiesce after {MAX_CPU_ROUNDS} "
            f"reinjection rounds"
        )
    return HarnessResult("hw", outputs, cpu_rounds=cpu_rounds)


# ----------------------------------------------------------------------
# fault application (shared by both modes, hence mode-identical counters)
# ----------------------------------------------------------------------
def _apply_link_faults(
    session: FaultSession, stimuli: list[Stimulus]
) -> tuple[list[Stimulus], list[int]]:
    """Pass every stimulus through the plan's wire, with retransmission.

    Returns ``(delivered_stimuli, lost_indices)``.  The decision stream
    is a pure function of the plan's seed and the stimulus order, which
    both targets share — so a ``sim`` and an ``hw`` run of the same test
    under the same seed fault, retransmit and lose *identically*.
    """
    delivered: list[Stimulus] = []
    lost: list[int] = []
    for index, stim in enumerate(stimuli):
        if session.link_transfer():
            delivered.append(stim)
        else:
            lost.append(index)
    return delivered, lost


def _count_harness_traffic(
    tsession: TelemetrySession, stimuli: list[Stimulus], result: HarnessResult
) -> None:
    """Feed the cycle-independent packet/byte ledgers.

    Both targets pass through here with the *same* delivered stimuli
    (link faults are applied before the mode split) and their checked
    outputs — so these series form the sim/hw parity subset.
    """
    registry = tsession.registry
    pkts_in = registry.counter(
        "port_packets_in", "packets injected per port", labelnames=("port",)
    )
    bytes_in = registry.counter(
        "port_bytes_in", "bytes injected per port", labelnames=("port",)
    )
    for stim in stimuli:
        pkts_in.labels(str(stim.port)).inc()
        bytes_in.labels(str(stim.port)).inc(len(stim.frame))
    pkts_out = registry.counter(
        "port_packets_out", "packets delivered per port", labelnames=("port",)
    )
    bytes_out = registry.counter(
        "port_bytes_out", "bytes delivered per port", labelnames=("port",)
    )
    for port, frames in result.outputs.items():
        for frame in frames:
            pkts_out.labels(str(port)).inc()
            bytes_out.labels(str(port)).inc(len(frame))


def _is_subsequence(got: list[bytes], want: list[bytes]) -> bool:
    """True when ``got`` is ``want`` with zero or more frames removed."""
    it = iter(want)
    return all(any(g == w for w in it) for g in got)


# ----------------------------------------------------------------------
# unified entry
# ----------------------------------------------------------------------
def run_test(
    test: NetFpgaTest,
    mode: str,
    faults: Optional[Union[FaultPlan, str]] = None,
    telemetry: Union[bool, TelemetrySession, None] = False,
) -> HarnessResult:
    """Run one test in ``'sim'`` or ``'hw'`` mode and check expectations.

    ``faults`` re-runs the unchanged test under a fault plan (an explicit
    :class:`FaultPlan` or a registered name like ``"lossy-link"``).  The
    harness then demands eventual delivery — or clean, counted loss when
    the plan permits it — instead of wedging.

    ``telemetry=True`` attaches a session-scoped metrics registry and
    trace recorder; the result carries a
    :class:`~repro.telemetry.session.TelemetrySnapshot` whose
    cycle-independent subset (packet/byte totals per port, fed from the
    same delivered stimuli and checked outputs in both modes) must agree
    between ``sim`` and ``hw`` — the measurement-plane extension of
    experiment E11.  Pass an existing :class:`TelemetrySession` instead
    of ``True`` to pre-register series or keep the trace for export.
    """
    if mode not in ("sim", "hw"):
        raise ValueError("mode must be 'sim' or 'hw'")
    project = test.project_factory()
    cpu_handler = (
        test.cpu_handler_factory(project) if test.cpu_handler_factory else None
    )
    tsession = make_session(telemetry, mode)
    session: Optional[FaultSession] = None
    stimuli = test.stimuli
    lost: list[int] = []
    if faults is not None:
        plan = get_plan(faults) if isinstance(faults, str) else faults
        session = plan.session()
        if tsession is not None:
            probe_faults(session, tsession)
        stimuli, lost = _apply_link_faults(session, stimuli)
    if mode == "sim":
        result = run_sim(project, stimuli, cpu_handler, telemetry=tsession)
    else:
        result = run_hw(project, stimuli, cpu_handler, telemetry=tsession)
    if session is not None:
        result.fault_report = session.report()
    if tsession is not None:
        _count_harness_traffic(tsession, stimuli, result)
        result.telemetry = tsession.snapshot()

    for port in ALL_PORTS:
        if port in test.ignore_ports:
            continue
        got = result.at(port)
        want = test.expected.get(port, [])
        if not lost:
            if got != want:
                raise AssertionError(
                    f"[{test.name}/{mode}] port {port}: expected "
                    f"{len(want)} packets, got {len(got)}"
                    + _first_diff(want, got)
                )
        elif not _is_subsequence(got, want):
            # Counted loss: delivered frames must still be the expected
            # frames in the expected per-port order, just with the lost
            # stimuli's contributions missing.
            raise AssertionError(
                f"[{test.name}/{mode}] port {port}: output is not an "
                f"ordered subsequence of the expectation under fault plan "
                f"{result.fault_report.plan!r} ({len(lost)} stimuli lost)"
            )
    return result


def _first_diff(want: list[bytes], got: list[bytes]) -> str:
    for i, (w, g) in enumerate(zip(want, got)):
        if w != g:
            return f"; first mismatch at index {i}: want {w[:32].hex()}…, got {g[:32].hex()}…"
    return ""
