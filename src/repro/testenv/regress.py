"""The release regression: standard scenarios across every project.

NetFPGA releases run each project's unified tests before shipping; this
module encodes the equivalent sweep.  :func:`standard_scenarios` builds
the per-project :class:`~repro.testenv.harness.NetFpgaTest` descriptions
(forwarding behaviour differs per project, so expectations are computed
per design), and :class:`RegressionRunner` executes the full matrix in
both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame
from repro.projects.base import PortRef
from repro.projects.reference_nic import ReferenceNic
from repro.projects.reference_router import ReferenceRouter
from repro.projects.reference_switch import ReferenceSwitch, ReferenceSwitchLite
from repro.testenv.harness import NetFpgaTest, Stimulus, run_test


def _mac(i: int) -> MacAddr:
    return MacAddr(0x02_00_00_00_00_10 + i)


def _frame(src: int, dst: int, size: int = 96) -> bytes:
    return make_udp_frame(
        _mac(src),
        _mac(dst),
        Ipv4Addr(0x0A00_0000 + src),
        Ipv4Addr(0x0A00_0000 + dst),
        size=size,
    ).pack()


def standard_scenarios() -> list[NetFpgaTest]:
    """One canonical unified test per reference project."""
    tests: list[NetFpgaTest] = []

    # NIC: wire → host and host → wire on every port pair.
    nic_stimuli = [Stimulus(PortRef("phys", i), _frame(i, 10 + i)) for i in range(4)]
    nic_stimuli += [Stimulus(PortRef("dma", i), _frame(10 + i, i)) for i in range(4)]
    tests.append(
        NetFpgaTest(
            name="nic_port_host_bridge",
            project_factory=ReferenceNic,
            stimuli=nic_stimuli,
            expected={
                **{PortRef("dma", i): [_frame(i, 10 + i)] for i in range(4)},
                **{PortRef("phys", i): [_frame(10 + i, i)] for i in range(4)},
            },
        )
    )

    # Learning switch: unknown floods, learned unicast follows.
    flood_frame = _frame(1, 2)
    reply_frame = _frame(2, 1)
    tests.append(
        NetFpgaTest(
            name="switch_learn_and_forward",
            project_factory=ReferenceSwitch,
            stimuli=[
                Stimulus(PortRef("phys", 0), flood_frame),
                Stimulus(PortRef("phys", 2), reply_frame),
            ],
            expected={
                PortRef("phys", 0): [reply_frame],
                PortRef("phys", 1): [flood_frame],
                PortRef("phys", 2): [flood_frame],
                PortRef("phys", 3): [flood_frame],
            },
        )
    )

    # switch_lite: static pairs 0↔1, 2↔3.
    a, b = _frame(3, 4), _frame(4, 3)
    tests.append(
        NetFpgaTest(
            name="switch_lite_static_pairs",
            project_factory=ReferenceSwitchLite,
            stimuli=[
                Stimulus(PortRef("phys", 0), a),
                Stimulus(PortRef("phys", 3), b),
            ],
            expected={
                PortRef("phys", 1): [a],
                PortRef("phys", 2): [b],
            },
        )
    )

    # Router: a fully resolved forward between two connected subnets.
    def router_factory() -> ReferenceRouter:
        router = ReferenceRouter()
        # Host 10.0.1.2 lives behind port 1.
        router.tables.add_arp(Ipv4Addr.parse("10.0.1.2"), _mac(42))
        return router

    router = router_factory()  # a reference instance to compute expectation
    in_frame = make_udp_frame(
        _mac(7),
        router.tables.port_macs[0],
        Ipv4Addr.parse("10.0.0.9"),
        Ipv4Addr.parse("10.0.1.2"),
        size=96,
        ttl=9,
    ).pack()
    out_frame = (
        router_factory().forward_behavioural(in_frame, PortRef("phys", 0))[0][1]
    )
    tests.append(
        NetFpgaTest(
            name="router_forward_connected",
            project_factory=router_factory,
            stimuli=[Stimulus(PortRef("phys", 0), in_frame)],
            expected={PortRef("phys", 1): [out_frame]},
        )
    )
    return tests


@dataclass
class RegressionRunner:
    """Runs the matrix and accumulates a report."""

    modes: tuple[str, ...] = ("sim", "hw")
    results: list[tuple[str, str, bool, str]] = field(default_factory=list)

    def run(self, tests: list[NetFpgaTest] | None = None) -> bool:
        suite = tests if tests is not None else standard_scenarios()
        passed_all = True
        for test in suite:
            for mode in self.modes:
                try:
                    run_test(test, mode)
                    self.results.append((test.name, mode, True, ""))
                except (AssertionError, RuntimeError) as exc:
                    self.results.append((test.name, mode, False, str(exc)))
                    passed_all = False
        return passed_all

    def render(self) -> str:
        lines = [f"{'test':34s} {'mode':4s} result"]
        for name, mode, ok, detail in self.results:
            lines.append(
                f"{name:34s} {mode:4s} {'PASS' if ok else 'FAIL ' + detail}"
            )
        return "\n".join(lines)
