"""The unified test environment (§3, claim C6).

"The test environment provides unified tests for simulation and hardware
test, allowing simple validation of designs."  In NetFPGA, one test
description runs both against the Verilog simulator and against the
physical board.  Here the two targets are:

* ``sim``  — the cycle-driven kernel (:class:`repro.core.Simulator`);
* ``hw``   — the projects' behavioural fast path
  (:meth:`~repro.projects.base.ReferencePipeline.forward_behavioural`),
  standing in for the real device.

:class:`~repro.testenv.harness.NetFpgaTest` is the test description;
:func:`~repro.testenv.harness.run_test` executes it in either mode with
identical expectations, and :mod:`~repro.testenv.regress` sweeps the
standard scenarios across every reference project — the release
regression suite.
"""

from repro.testenv.harness import (
    HarnessResult,
    NetFpgaTest,
    Stimulus,
    run_hw,
    run_sim,
    run_test,
)
from repro.testenv.regress import RegressionRunner, standard_scenarios
from repro.testenv.soak import SoakReport, run_soak
from repro.testenv.topology import (
    Attachment,
    Delivery,
    Network,
    TopologyError,
)

__all__ = [
    "HarnessResult",
    "NetFpgaTest",
    "Stimulus",
    "run_hw",
    "run_sim",
    "run_test",
    "RegressionRunner",
    "standard_scenarios",
    "SoakReport",
    "run_soak",
    "Attachment",
    "Delivery",
    "Network",
    "TopologyError",
]
