"""Host-side software: "a driver and relevant applications" (§3).

* :mod:`driver` — the NIC driver: DMA descriptor rings, buffer
  management, batched doorbells, polling receive.
* :mod:`router_manager` — the reference router's management application:
  the software slow path (ARP, ICMP) plus routing-table operations.
* :mod:`switch_manager` — the switch management application: MAC-table
  inspection over the register interface.
* :mod:`openflow` — a minimal OpenFlow-style control plane used with the
  BlueSwitch data plane: messages, a datapath agent and a controller.
"""

from repro.host.driver import NetFpgaDriver
from repro.host.router_manager import RouterManager
from repro.host.firewall_manager import FirewallManager
from repro.host.switch_manager import SwitchManager

__all__ = ["NetFpgaDriver", "RouterManager", "SwitchManager", "FirewallManager"]
