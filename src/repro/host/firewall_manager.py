"""Firewall management application.

Rule lifecycle (ordered insert/delete, priority = slot order), policy
switches and statistics, all through the project's register interface
plus the shared TCAM handle — the same software/hardware seam as the
router and switch managers.
"""

from __future__ import annotations

from typing import Optional

from repro.packet.addresses import Ipv4Addr
from repro.projects.firewall import AclAction, AclRule, FirewallProject


class FirewallManager:
    """CLI-style operations against a :class:`FirewallProject`."""

    def __init__(self, project: FirewallProject):
        self.project = project
        self._rules: list[Optional[AclRule]] = [None] * project.firewall.acl.slots

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(self, slot: int, rule: AclRule) -> None:
        """Install ``rule`` at ``slot`` (lower slot = higher priority)."""
        self.project.firewall.acl.write_slot(slot, rule.to_tcam(slot))
        self._rules[slot] = rule

    def del_rule(self, slot: int) -> bool:
        if self._rules[slot] is None:
            return False
        self.project.firewall.acl.write_slot(slot, None)
        self._rules[slot] = None
        return True

    def list_rules(self) -> list[str]:
        out = []
        for slot, rule in enumerate(self._rules):
            if rule is None:
                continue
            parts = [f"[{slot}] {rule.action.value}"]
            if rule.proto is not None:
                parts.append(f"proto={rule.proto}")
            if rule.src_ip is not None:
                parts.append(f"src={Ipv4Addr(rule.src_ip)}/{rule.src_prefix}")
            if rule.dst_ip is not None:
                parts.append(f"dst={Ipv4Addr(rule.dst_ip)}/{rule.dst_prefix}")
            if rule.sport is not None:
                parts.append(f"sport={rule.sport}")
            if rule.dport is not None:
                parts.append(f"dport={rule.dport}")
            out.append(" ".join(parts))
        return out

    # Convenience constructors mirroring classic firewall CLI syntax.
    def deny(self, slot: int, **fields) -> None:
        self.add_rule(slot, AclRule(AclAction.DENY, **fields))

    def permit(self, slot: int, **fields) -> None:
        self.add_rule(slot, AclRule(AclAction.PERMIT, **fields))

    # ------------------------------------------------------------------
    # Policy and statistics
    # ------------------------------------------------------------------
    def set_default_policy(self, permit: bool) -> None:
        regs = self.project.firewall.registers
        self.project.interconnect.write(regs.offset_of("default_permit"), int(permit))

    def stats(self) -> dict[str, int]:
        regs = self.project.firewall.registers
        bus = self.project.interconnect
        return {
            name: bus.read(regs.offset_of(name))
            for name in (
                "permitted",
                "acl_denied",
                "syn_flood_dropped",
                "non_ip_bridged",
                "blocked_dst_count",
            )
        }

    def blocked_destinations(self) -> list[str]:
        return [
            str(Ipv4Addr(value))
            for value in self.project.firewall.detector.blocked_destinations()
        ]
