"""The reference router's management application — the software slow path.

Hardware punts exception traffic to the CPU over the ingress port's DMA
queue (see :mod:`repro.cores.router_lookup`); this class is the CPU side:

* **ARP**: answers requests for the router's interface addresses,
  learns from replies, originates requests for unresolved next hops and
  queues the data packets that wait on them;
* **ICMP**: echo reply for packets addressed to the router, Time
  Exceeded for expiring TTLs, Destination Unreachable for LPM misses;
* **table management**: the add/del/list operations the router CLI
  exposes, writing straight into the shared
  :class:`~repro.cores.router_lookup.RouterTables`.

``handle_cpu_packet`` returns the frames the CPU wants transmitted, as
``(phys_port_index, frame_bytes)`` — the caller (harness or DMA glue)
injects them into the pipeline's DMA ports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.control import ControlPlane

from repro.cores.lpm import LpmEntry
from repro.cores.router_lookup import RouterTables
from repro.packet.addresses import BROADCAST_MAC, Ipv4Addr, MacAddr
from repro.packet.arp import ARP_OP_REPLY, ARP_OP_REQUEST, ArpPacket
from repro.packet.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.packet.icmp import (
    ICMP_DEST_UNREACHABLE,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    IcmpPacket,
)
from repro.packet.ipv4 import IPPROTO_ICMP, Ipv4Packet

#: Cap on data packets parked behind one unresolved ARP entry.
PENDING_QUEUE_DEPTH = 16


class RouterManager:
    """CPU-side companion of :class:`~repro.projects.reference_router.ReferenceRouter`."""

    def __init__(self, tables: RouterTables, control: Optional["ControlPlane"] = None):
        self.tables = tables
        #: Resilient write path; when attached, table mutations go
        #: through the desired-state store so the auditor can restore
        #: them after a lost write or a soft device reset.
        self.control = control
        self.restarts = 0
        self._wedged = False
        self._pending: dict[int, list[tuple[int, bytes]]] = defaultdict(list)
        self.counters: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Table management (the router CLI operations)
    # ------------------------------------------------------------------
    def add_route(
        self, prefix: str, prefix_len: int, next_hop: str, port: int
    ) -> bool:
        entry = LpmEntry(
            prefix=Ipv4Addr.parse(prefix),
            prefix_len=prefix_len,
            next_hop=Ipv4Addr.parse(next_hop),
            port_bits=1 << (2 * port),
        )
        if self.control is not None:
            return self.control.mutate(
                "routes", (entry.prefix.value, entry.prefix_len), entry
            )
        return self.tables.add_route(entry)

    def del_route(self, prefix: str, prefix_len: int) -> bool:
        addr = Ipv4Addr.parse(prefix)
        if self.control is not None:
            return self.control.remove("routes", (addr.value, prefix_len))
        return self.tables.lpm.delete(addr, prefix_len)

    def list_routes(self) -> list[str]:
        return [
            f"{e.prefix}/{e.prefix_len} via {e.next_hop} port_bits={e.port_bits:#04x}"
            for e in self.tables.lpm.entries()
        ]

    def add_arp_entry(self, ip: str, mac: str) -> bool:
        return self._learn_arp(Ipv4Addr.parse(ip), MacAddr.parse(mac))

    def _learn_arp(self, ip: Ipv4Addr, mac: MacAddr) -> bool:
        """One write path for static and slow-path-learned bindings."""
        if self.control is not None:
            return self.control.mutate("arp", ip.value, mac.value)
        return self.tables.add_arp(ip, mac)

    def list_arp(self) -> list[str]:
        return [f"{Ipv4Addr(ip)} -> {MacAddr(mac)}" for ip, mac in self.tables.arp]

    # ------------------------------------------------------------------
    # Supervision surface
    # ------------------------------------------------------------------
    def heartbeat(self) -> bool:
        """Health probe: the LPM must answer and we must not be wedged."""
        if self._wedged:
            return False
        self.tables.lpm.lookup(Ipv4Addr(0))
        return True

    def wedge(self) -> None:
        """Mark the manager wedged (e.g. its device was soft-reset)."""
        self._wedged = True

    def restart(self) -> None:
        """Supervisor restart: drop parked packets, clear the wedge."""
        dropped = sum(len(q) for q in self._pending.values())
        if dropped:
            self.counters["pending_dropped"] += dropped
        self._pending.clear()
        self._wedged = False
        self.restarts += 1

    # ------------------------------------------------------------------
    # Slow path
    # ------------------------------------------------------------------
    def handle_cpu_packet(self, frame_bytes: bytes, port: int) -> list[tuple[int, bytes]]:
        """Process one punted frame from physical port ``port``.

        Returns frames to transmit as ``(phys_port_index, frame)``.
        """
        try:
            frame = EthernetFrame.parse(frame_bytes)
        except ValueError:
            self.counters["malformed"] += 1
            return []
        if frame.ethertype == ETHERTYPE_ARP:
            return self._handle_arp(frame, port)
        if frame.ethertype == ETHERTYPE_IPV4:
            return self._handle_ipv4(frame, port)
        self.counters["unhandled_ethertype"] += 1
        return []

    # -- ARP -------------------------------------------------------------
    def _handle_arp(self, frame: EthernetFrame, port: int) -> list[tuple[int, bytes]]:
        try:
            arp = ArpPacket.parse(frame.payload)
        except ValueError:
            self.counters["malformed"] += 1
            return []
        out: list[tuple[int, bytes]] = []
        if arp.op == ARP_OP_REQUEST:
            if arp.target_ip == self.tables.port_ips[port]:
                self.counters["arp_replied"] += 1
                reply = ArpPacket(
                    op=ARP_OP_REPLY,
                    sender_mac=self.tables.port_macs[port],
                    sender_ip=self.tables.port_ips[port],
                    target_mac=arp.sender_mac,
                    target_ip=arp.sender_ip,
                )
                out.append(
                    (
                        port,
                        EthernetFrame(
                            arp.sender_mac,
                            self.tables.port_macs[port],
                            ETHERTYPE_ARP,
                            reply.pack(),
                        ).pack(),
                    )
                )
        # Learn from both requests and replies (standard practice).
        if self.tables.arp.lookup(arp.sender_ip.value) != arp.sender_mac.value:
            self._learn_arp(arp.sender_ip, arp.sender_mac)
            self.counters["arp_learned"] += 1
            out.extend(self._drain_pending(arp.sender_ip))
        return out

    def resolve(self, next_hop: Ipv4Addr, port: int) -> list[tuple[int, bytes]]:
        """Originate an ARP request for ``next_hop`` out of ``port``."""
        self.counters["arp_requested"] += 1
        request = ArpPacket(
            op=ARP_OP_REQUEST,
            sender_mac=self.tables.port_macs[port],
            sender_ip=self.tables.port_ips[port],
            target_mac=MacAddr(0),
            target_ip=next_hop,
        )
        return [
            (
                port,
                EthernetFrame(
                    BROADCAST_MAC,
                    self.tables.port_macs[port],
                    ETHERTYPE_ARP,
                    request.pack(),
                ).pack(),
            )
        ]

    def _drain_pending(self, resolved: Ipv4Addr) -> list[tuple[int, bytes]]:
        """Release data packets that were waiting on an ARP resolution.

        Frames re-entering via DMA bypass the hardware lookup (the CPU
        has made the decision), so the software performs the forwarding
        rewrite itself: MACs, TTL, checksum.
        """
        out = []
        for egress, frame in self._pending.pop(resolved.value, []):
            rewritten = self._forward_in_software(frame, egress)
            if rewritten is not None:
                out.append((egress, rewritten))
        self.counters["pending_released"] += len(out)
        return out

    def _forward_in_software(self, frame_bytes: bytes, egress: int) -> Optional[bytes]:
        """The CPU's copy of the forwarding rewrite (MACs, TTL, checksum)."""
        try:
            frame = EthernetFrame.parse(frame_bytes)
            packet = Ipv4Packet.parse(frame.payload)
        except ValueError:
            self.counters["malformed"] += 1
            return None
        route = self.tables.lpm.lookup(packet.dst)
        if route is None or packet.ttl <= 1:
            return None
        next_hop = packet.dst if route.is_directly_connected else route.next_hop
        next_mac = self.tables.arp.lookup(next_hop.value)
        if next_mac is None:
            return None
        packet.ttl -= 1
        return EthernetFrame(
            MacAddr(next_mac),
            self.tables.port_macs[egress],
            ETHERTYPE_IPV4,
            packet.pack(),
        ).pack()

    # -- IPv4 ------------------------------------------------------------
    def _handle_ipv4(self, frame: EthernetFrame, port: int) -> list[tuple[int, bytes]]:
        try:
            packet = Ipv4Packet.parse(frame.payload)
        except ValueError:
            self.counters["malformed"] += 1
            return []

        if packet.dst.value in self.tables.ip_filter:
            return self._handle_local(frame, packet, port)
        if packet.ttl <= 1:
            self.counters["icmp_time_exceeded"] += 1
            return self._icmp_error(packet, port, ICMP_TIME_EXCEEDED, 0)

        # Otherwise: the hardware punted because of an LPM or ARP miss.
        route = self.tables.lpm.lookup(packet.dst)
        if route is None:
            self.counters["icmp_unreachable"] += 1
            return self._icmp_error(packet, port, ICMP_DEST_UNREACHABLE, 0)
        next_hop = packet.dst if route.is_directly_connected else route.next_hop
        if self.tables.arp.lookup(next_hop.value) is None:
            egress = self._port_of_bits(route.port_bits)
            queue = self._pending[next_hop.value]
            if len(queue) < PENDING_QUEUE_DEPTH:
                # Park the original frame; it re-enters via DMA once
                # resolution completes.
                queue.append((egress, frame.pack()))
                self.counters["pending_parked"] += 1
            else:
                self.counters["pending_dropped"] += 1
            return self.resolve(next_hop, egress)
        egress = self._port_of_bits(route.port_bits)
        rewritten = self._forward_in_software(frame.pack(), egress)
        if rewritten is None:
            return []
        self.counters["reinjected"] += 1
        return [(egress, rewritten)]

    def _handle_local(
        self, frame: EthernetFrame, packet: Ipv4Packet, port: int
    ) -> list[tuple[int, bytes]]:
        if packet.protocol != IPPROTO_ICMP:
            self.counters["local_delivered"] += 1
            return []
        try:
            icmp = IcmpPacket.parse(packet.payload)
        except ValueError:
            self.counters["malformed"] += 1
            return []
        if icmp.icmp_type != ICMP_ECHO_REQUEST:
            self.counters["local_delivered"] += 1
            return []
        self.counters["icmp_echo_replied"] += 1
        reply_ip = Ipv4Packet(
            src=packet.dst,
            dst=packet.src,
            protocol=IPPROTO_ICMP,
            payload=IcmpPacket.echo_reply_to(icmp).pack(),
            ttl=64,
        )
        reply_frame = EthernetFrame(
            frame.src, self.tables.port_macs[port], ETHERTYPE_IPV4, reply_ip.pack()
        )
        return [(port, reply_frame.pack())]

    def _icmp_error(
        self, original: Ipv4Packet, port: int, icmp_type: int, code: int
    ) -> list[tuple[int, bytes]]:
        """RFC 792 error: IP header + 8 bytes of the offending datagram."""
        quote = original.pack()[: original.header_length + 8]
        error_ip = Ipv4Packet(
            src=self.tables.port_ips[port],
            dst=original.src,
            protocol=IPPROTO_ICMP,
            payload=IcmpPacket(icmp_type, code, 0, quote).pack(),
            ttl=64,
        )
        # Destination MAC: the original sender is on this port's subnet
        # in the reference topology; resolve via ARP cache if we can.
        dst_mac_value = self.tables.arp.lookup(original.src.value)
        dst_mac = MacAddr(dst_mac_value) if dst_mac_value is not None else BROADCAST_MAC
        error_frame = EthernetFrame(
            dst_mac, self.tables.port_macs[port], ETHERTYPE_IPV4, error_ip.pack()
        )
        return [(port, error_frame.pack())]

    @staticmethod
    def _port_of_bits(port_bits: int) -> int:
        for i in range(4):
            if port_bits & (1 << (2 * i)):
                return i
        raise ValueError(f"no physical port in mask {port_bits:#x}")
