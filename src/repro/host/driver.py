"""The NetFPGA host driver model.

Manages the DMA descriptor rings of a :class:`~repro.board.sume.NetFpgaSume`
board exactly the way the real driver does:

* allocates per-slot TX/RX buffers in host memory;
* posts the full RX ring at attach time;
* batches TX descriptors and rings the doorbell once per batch (the
  batching knob experiment E10 sweeps);
* polls RX completions by scanning for the DONE flag, reposting buffers
  as they are consumed.

The driver is *self-healing* against the deterministic fault layer
(:mod:`repro.faults`): every blocking loop is bounded (raising
:class:`~repro.faults.errors.DriverTimeout` instead of spinning), MMIO
reads retry with exponential backoff, a ring watchdog detects and
repairs a wedged RX ring (a consumed descriptor whose completion
write-back was lost) and a lost TX doorbell is re-rung.  Every repair is
counted in :class:`RecoveryCounters`, exposable as a read-only register
block through :meth:`NetFpgaDriver.recovery_registers`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Optional

from repro.board.pcie import DmaDescriptor, FLAG_DONE, FLAG_VALID
from repro.board.sume import NetFpgaSume
from repro.core.axilite import RegisterFile
from repro.faults.errors import (
    DriverError,
    DriverTimeout,
    FaultInjected,
    MmioWriteError,
)

_TX_BUF_BASE = 0x0400_0000
_RX_BUF_BASE = 0x0800_0000
BUF_SIZE = 2048

#: Default bound on empty polls before a blocking receive gives up.
MAX_POLLS = 64
#: Default simulated time between polls of an idle ring.
POLL_INTERVAL_NS = 1_000.0
#: Empty polls over a detected completion gap before ring surgery.
WEDGE_PATIENCE = 3
#: How far past the head-of-line slot the watchdog scans for completions.
WATCHDOG_SCAN = 64
#: MMIO read retry budget and first backoff step.
MMIO_RETRIES = 5
MMIO_BACKOFF_NS = 1_000.0


@dataclass
class RecoveryCounters:
    """Per-fault recovery accounting — the driver's self-healing ledger."""

    mmio_retries: int = 0  # MMIO reads retried after an injected timeout
    mmio_failures: int = 0  # MMIO reads abandoned after the retry budget
    mmio_write_retries: int = 0  # verified writes re-issued after bad readback
    mmio_write_failures: int = 0  # verified writes abandoned after the budget
    rx_ring_recoveries: int = 0  # watchdog surgeries on a wedged RX ring
    rx_frames_lost: int = 0  # head-of-line slots skipped (frames lost)
    tx_doorbell_recoveries: int = 0  # lost doorbells detected and re-rung
    poll_timeouts: int = 0  # bounded waits that exhausted max_polls

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class NetFpgaDriver:
    """Software owner of the board's DMA rings."""

    def __init__(
        self,
        board: NetFpgaSume,
        project=None,
        mmio_retries: int = MMIO_RETRIES,
        mmio_backoff_ns: float = MMIO_BACKOFF_NS,
    ):
        self.board = board
        self.dma = board.dma
        self.memory = board.host_memory
        #: The design behind BAR0 — its AXI4-Lite interconnect serves
        #: the driver's register reads/writes.
        self.project = project
        self.mmio_retries = mmio_retries
        self.mmio_backoff_ns = mmio_backoff_ns
        self._tx_seq = 0  # absolute descriptor count ever posted
        self._rx_next = 0  # absolute next RX descriptor to poll
        self.tx_sent = 0
        self.rx_received = 0
        self.mmio_reads = 0
        self.mmio_writes = 0
        self.recovery = RecoveryCounters()
        #: Telemetry hook: ``hook(event)`` called as each self-healing
        #: repair happens ('rx_ring_recovery' | 'tx_doorbell_recovery' |
        #: 'mmio_retry').  None means unobserved.
        self.event_hook: Optional[Callable[[str], None]] = None
        self._attach()

    def _attach(self) -> None:
        """Post every RX buffer, like the driver's probe() path."""
        ring = self.dma.rx_ring
        for i in range(ring.entries):
            ring.write_desc(
                i, DmaDescriptor(_RX_BUF_BASE + (i % ring.entries) * BUF_SIZE, BUF_SIZE)
            )
        self.dma.post_rx_buffers(ring.entries)

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------
    def transmit(self, frames: list[tuple[bytes, int]]) -> int:
        """Send a batch of ``(frame, port)`` with one doorbell.

        Returns the number actually queued (bounded by ring space).
        """
        ring = self.dma.tx_ring
        queued = 0
        for frame, port in frames:
            if ring.space - queued <= 0:
                break
            if len(frame) > BUF_SIZE:
                raise ValueError(f"frame of {len(frame)}B exceeds {BUF_SIZE}B buffer")
            slot = self._tx_seq % ring.entries
            addr = _TX_BUF_BASE + slot * BUF_SIZE
            self.memory.write(addr, frame)
            ring.write_desc(
                self._tx_seq, DmaDescriptor(addr, len(frame), FLAG_VALID, port)
            )
            self._tx_seq += 1
            queued += 1
        if queued:
            self.dma.doorbell_tx(self._tx_seq)
            self.tx_sent += queued
        return queued

    def transmit_one(self, frame: bytes, port: int = 0) -> bool:
        return self.transmit([(frame, port)]) == 1

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def poll_receive(self) -> list[tuple[bytes, int]]:
        """Harvest completed RX descriptors; repost their buffers."""
        ring = self.dma.rx_ring
        out: list[tuple[bytes, int]] = []
        while True:
            desc = ring.read_desc(self._rx_next)
            if not desc.flags & FLAG_DONE:
                break
            out.append((self.memory.read(desc.addr, desc.length), desc.port))
            # Repost the buffer: clear DONE, restore full length.
            ring.write_desc(
                self._rx_next, DmaDescriptor(desc.addr, BUF_SIZE, FLAG_VALID)
            )
            self._rx_next += 1
            self.rx_received += 1
        if out:
            self.dma.post_rx_buffers(ring.tail + len(out))
        return out

    def _wait(self, interval_ns: float) -> None:
        """Let simulated time pass while the driver sits in a poll loop."""
        self.board.sim.run(until_ns=self.board.sim.now_ns + interval_ns)

    def _rx_gap(self) -> Optional[int]:
        """Distance to the first completion behind a stale head-of-line slot.

        Returns ``None`` when the ring is healthy (head-of-line DONE, or
        nothing completed at all); a positive gap means the ring is
        wedged: slot ``_rx_next`` will never complete but later slots
        already have — the signature of a lost completion write-back.
        """
        ring = self.dma.rx_ring
        if ring.read_desc(self._rx_next).flags & FLAG_DONE:
            return None
        for ahead in range(1, min(WATCHDOG_SCAN, ring.entries)):
            if ring.read_desc(self._rx_next + ahead).flags & FLAG_DONE:
                return ahead
        return None

    def recover_rx_ring(self) -> int:
        """Watchdog surgery: skip and repost wedged head-of-line slots.

        Every skipped slot is a frame the hardware consumed a descriptor
        for but whose completion never landed; the driver reposts the
        buffer and accounts the loss.  Returns the number of slots
        repaired (0 when the ring was healthy).
        """
        gap = self._rx_gap()
        if gap is None:
            return 0
        ring = self.dma.rx_ring
        for _ in range(gap):
            desc = ring.read_desc(self._rx_next)
            ring.write_desc(
                self._rx_next, DmaDescriptor(desc.addr, BUF_SIZE, FLAG_VALID)
            )
            self._rx_next += 1
            self.recovery.rx_frames_lost += 1
        self.dma.post_rx_buffers(ring.tail + gap)
        self.recovery.rx_ring_recoveries += 1
        if self.event_hook is not None:
            self.event_hook("rx_ring_recovery")
        return gap

    def receive_wait(
        self,
        min_frames: int = 1,
        max_polls: int = MAX_POLLS,
        poll_interval_ns: float = POLL_INTERVAL_NS,
        watchdog: bool = True,
    ) -> list[tuple[bytes, int]]:
        """Poll (in simulated time) until ``min_frames`` frames arrive.

        Bounded: after ``max_polls`` consecutive empty polls this raises
        :class:`DriverTimeout` instead of spinning forever on a ring with
        zero posted completions.  With ``watchdog`` on (the default), a
        wedged ring — head-of-line slot stale while completions pile up
        behind it — is repaired after :data:`WEDGE_PATIENCE` empty polls
        and the wait continues.
        """
        out: list[tuple[bytes, int]] = []
        empty_polls = 0
        gap_polls = 0
        while len(out) < min_frames:
            batch = self.poll_receive()
            if batch:
                out.extend(batch)
                empty_polls = 0
                gap_polls = 0
                continue
            if watchdog and self._rx_gap() is not None:
                gap_polls += 1
                if gap_polls >= WEDGE_PATIENCE:
                    self.recover_rx_ring()
                    gap_polls = 0
                    continue
            empty_polls += 1
            if empty_polls >= max_polls:
                self.recovery.poll_timeouts += 1
                raise DriverTimeout(
                    f"no RX completion after {max_polls} polls "
                    f"({len(out)}/{min_frames} frames harvested)"
                )
            self._wait(poll_interval_ns)
        return out

    # ------------------------------------------------------------------
    # TX watchdog
    # ------------------------------------------------------------------
    def flush_transmit(
        self,
        max_polls: int = MAX_POLLS,
        poll_interval_ns: float = POLL_INTERVAL_NS,
    ) -> None:
        """Wait until the engine has consumed every posted TX descriptor.

        Detects the lost-doorbell wedge: descriptors posted, engine idle,
        ring empty from the engine's point of view — and re-rings the
        doorbell.  Bounded by ``max_polls``; raises :class:`DriverTimeout`
        on exhaustion.
        """
        polls = 0
        while self.dma.tx_frames < self.tx_sent:
            if self.dma.tx_idle and self.dma.tx_ring.occupancy == 0:
                # The engine never saw our tail: the doorbell was lost.
                self.dma.doorbell_tx(self._tx_seq)
                self.recovery.tx_doorbell_recoveries += 1
                if self.event_hook is not None:
                    self.event_hook("tx_doorbell_recovery")
            polls += 1
            if polls > max_polls:
                self.recovery.poll_timeouts += 1
                raise DriverTimeout(
                    f"TX ring did not drain after {max_polls} polls "
                    f"({self.dma.tx_frames}/{self.tx_sent} frames completed)"
                )
            self._wait(poll_interval_ns)

    # ------------------------------------------------------------------
    # Interrupt-driven receive
    # ------------------------------------------------------------------
    def enable_interrupts(
        self,
        handler=None,
        coalesce_frames: int = 1,
        coalesce_ns: float = 0.0,
    ) -> None:
        """Switch from polling to MSI-driven receive.

        On each interrupt the driver harvests every completed descriptor
        and passes the batch to ``handler(frames)`` (``frames`` is the
        ``(bytes, port)`` list); without a handler the batches accumulate
        in :attr:`irq_frames`.  Coalescing parameters program the
        engine's moderation — the poll-vs-interrupt CPU/latency trade
        every NIC driver exposes.
        """
        self.irq_frames: list[tuple[bytes, int]] = []
        self.irqs_serviced = 0

        def service() -> None:
            self.irqs_serviced += 1
            batch = self.poll_receive()
            if handler is not None:
                handler(batch)
            else:
                self.irq_frames.extend(batch)

        self.dma.irq_coalesce_frames = max(1, coalesce_frames)
        self.dma.irq_coalesce_ns = coalesce_ns
        self.dma.msi_callback = service

    def disable_interrupts(self) -> None:
        self.dma.msi_callback = None

    # ------------------------------------------------------------------
    # Register access (BAR0 → the project's AXI4-Lite interconnect)
    # ------------------------------------------------------------------
    def reg_read(self, addr: int) -> int:
        """MMIO register read — pays the PCIe round trip.

        Non-posted reads can time out (the fault layer injects exactly
        that); the driver retries with exponential backoff up to
        ``mmio_retries`` times before raising :class:`DriverTimeout`.
        """
        if self.project is None:
            raise DriverError("no project attached behind BAR0")
        backoff_ns = self.mmio_backoff_ns
        for attempt in range(self.mmio_retries + 1):
            self.board.pcie.mmio_read()
            self.mmio_reads += 1
            try:
                return self.project.interconnect.read(addr)
            except FaultInjected:
                if attempt == self.mmio_retries:
                    break
                self.recovery.mmio_retries += 1
                if self.event_hook is not None:
                    self.event_hook("mmio_retry")
                self._wait(backoff_ns)
                backoff_ns *= 2
        self.recovery.mmio_failures += 1
        raise DriverTimeout(
            f"MMIO read at {addr:#x} timed out after "
            f"{self.mmio_retries + 1} attempts"
        )

    def reg_write(self, addr: int, value: int) -> None:
        """MMIO register write — posted, so there is nothing to retry.

        A lost or mangled posted write is silent; use
        :meth:`reg_write_verified` for table and control registers whose
        loss corrupts state.
        """
        if self.project is None:
            raise DriverError("no project attached behind BAR0")
        self.board.pcie.mmio_write()
        self.mmio_writes += 1
        self.project.interconnect.write(addr, value)

    def reg_write_verified(
        self,
        addr: int,
        value: int,
        verify: Optional[Callable[[], bool]] = None,
        retries: int = MMIO_RETRIES,
        backoff_ns: float = MMIO_BACKOFF_NS,
    ) -> None:
        """Posted write + read-back verification with bounded retries.

        Closes the posted-write blindness of :meth:`reg_write`: after
        each write the driver reads the register back (or calls
        ``verify`` for side-effecting command registers whose readback
        is not the written value) and re-issues the write with
        exponential backoff until it lands.  Raises
        :class:`~repro.faults.errors.MmioWriteError` once ``retries``
        re-issues have failed; every re-issue bumps
        ``recovery.mmio_write_retries``.
        """
        wait_ns = backoff_ns
        for attempt in range(retries + 1):
            self.reg_write(addr, value)
            try:
                if verify is not None:
                    landed = verify()
                else:
                    landed = self.reg_read(addr) == (value & 0xFFFFFFFF)
            except DriverTimeout:
                landed = False  # readback itself timed out: count as a miss
            if landed:
                return
            if attempt == retries:
                break
            self.recovery.mmio_write_retries += 1
            if self.event_hook is not None:
                self.event_hook("mmio_write_retry")
            self._wait(wait_ns)
            wait_ns *= 2
        self.recovery.mmio_write_failures += 1
        raise MmioWriteError(
            f"MMIO write at {addr:#x} never verified after "
            f"{retries + 1} attempts"
        )

    # ------------------------------------------------------------------
    # Recovery telemetry
    # ------------------------------------------------------------------
    def recovery_registers(self) -> RegisterFile:
        """The recovery ledger as a read-only register block.

        Live-backed: each read returns the counter's current value.  A
        project mounts it with
        :meth:`~repro.projects.base.ReferencePipeline.attach_recovery_registers`.
        """
        from repro.cores.stats import counters_register_file

        return counters_register_file(
            "driver_recovery",
            {
                name: (lambda n=name: getattr(self.recovery, n))
                for name in self.recovery.as_dict()
            },
        )
