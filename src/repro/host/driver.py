"""The NetFPGA host driver model.

Manages the DMA descriptor rings of a :class:`~repro.board.sume.NetFpgaSume`
board exactly the way the real driver does:

* allocates per-slot TX/RX buffers in host memory;
* posts the full RX ring at attach time;
* batches TX descriptors and rings the doorbell once per batch (the
  batching knob experiment E10 sweeps);
* polls RX completions by scanning for the DONE flag, reposting buffers
  as they are consumed.
"""

from __future__ import annotations

from repro.board.pcie import DmaDescriptor, FLAG_DONE, FLAG_VALID
from repro.board.sume import NetFpgaSume

_TX_BUF_BASE = 0x0400_0000
_RX_BUF_BASE = 0x0800_0000
BUF_SIZE = 2048


class NetFpgaDriver:
    """Software owner of the board's DMA rings."""

    def __init__(self, board: NetFpgaSume, project=None):
        self.board = board
        self.dma = board.dma
        self.memory = board.host_memory
        #: The design behind BAR0 — its AXI4-Lite interconnect serves
        #: the driver's register reads/writes.
        self.project = project
        self._tx_seq = 0  # absolute descriptor count ever posted
        self._rx_next = 0  # absolute next RX descriptor to poll
        self.tx_sent = 0
        self.rx_received = 0
        self.mmio_reads = 0
        self.mmio_writes = 0
        self._attach()

    def _attach(self) -> None:
        """Post every RX buffer, like the driver's probe() path."""
        ring = self.dma.rx_ring
        for i in range(ring.entries):
            ring.write_desc(
                i, DmaDescriptor(_RX_BUF_BASE + (i % ring.entries) * BUF_SIZE, BUF_SIZE)
            )
        self.dma.post_rx_buffers(ring.entries)

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------
    def transmit(self, frames: list[tuple[bytes, int]]) -> int:
        """Send a batch of ``(frame, port)`` with one doorbell.

        Returns the number actually queued (bounded by ring space).
        """
        ring = self.dma.tx_ring
        queued = 0
        for frame, port in frames:
            if ring.space - queued <= 0:
                break
            if len(frame) > BUF_SIZE:
                raise ValueError(f"frame of {len(frame)}B exceeds {BUF_SIZE}B buffer")
            slot = self._tx_seq % ring.entries
            addr = _TX_BUF_BASE + slot * BUF_SIZE
            self.memory.write(addr, frame)
            ring.write_desc(
                self._tx_seq, DmaDescriptor(addr, len(frame), FLAG_VALID, port)
            )
            self._tx_seq += 1
            queued += 1
        if queued:
            self.dma.doorbell_tx(self._tx_seq)
            self.tx_sent += queued
        return queued

    def transmit_one(self, frame: bytes, port: int = 0) -> bool:
        return self.transmit([(frame, port)]) == 1

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def poll_receive(self) -> list[tuple[bytes, int]]:
        """Harvest completed RX descriptors; repost their buffers."""
        ring = self.dma.rx_ring
        out: list[tuple[bytes, int]] = []
        while True:
            desc = ring.read_desc(self._rx_next)
            if not desc.flags & FLAG_DONE:
                break
            out.append((self.memory.read(desc.addr, desc.length), desc.port))
            # Repost the buffer: clear DONE, restore full length.
            ring.write_desc(
                self._rx_next, DmaDescriptor(desc.addr, BUF_SIZE, FLAG_VALID)
            )
            self._rx_next += 1
            self.rx_received += 1
        if out:
            self.dma.post_rx_buffers(ring.tail + len(out))
        return out

    # ------------------------------------------------------------------
    # Interrupt-driven receive
    # ------------------------------------------------------------------
    def enable_interrupts(
        self,
        handler=None,
        coalesce_frames: int = 1,
        coalesce_ns: float = 0.0,
    ) -> None:
        """Switch from polling to MSI-driven receive.

        On each interrupt the driver harvests every completed descriptor
        and passes the batch to ``handler(frames)`` (``frames`` is the
        ``(bytes, port)`` list); without a handler the batches accumulate
        in :attr:`irq_frames`.  Coalescing parameters program the
        engine's moderation — the poll-vs-interrupt CPU/latency trade
        every NIC driver exposes.
        """
        self.irq_frames: list[tuple[bytes, int]] = []
        self.irqs_serviced = 0

        def service() -> None:
            self.irqs_serviced += 1
            batch = self.poll_receive()
            if handler is not None:
                handler(batch)
            else:
                self.irq_frames.extend(batch)

        self.dma.irq_coalesce_frames = max(1, coalesce_frames)
        self.dma.irq_coalesce_ns = coalesce_ns
        self.dma.msi_callback = service

    def disable_interrupts(self) -> None:
        self.dma.msi_callback = None

    # ------------------------------------------------------------------
    # Register access (BAR0 → the project's AXI4-Lite interconnect)
    # ------------------------------------------------------------------
    def reg_read(self, addr: int) -> int:
        """MMIO register read — pays the PCIe round trip."""
        if self.project is None:
            raise RuntimeError("no project attached behind BAR0")
        self.board.pcie.mmio_read()
        self.mmio_reads += 1
        return self.project.interconnect.read(addr)

    def reg_write(self, addr: int, value: int) -> None:
        """MMIO register write — posted."""
        if self.project is None:
            raise RuntimeError("no project attached behind BAR0")
        self.board.pcie.mmio_write()
        self.mmio_writes += 1
        self.project.interconnect.write(addr, value)
