"""The platform command-line tools.

NetFPGA ships small host utilities (``nf_info``, register peek/poke,
test runners); this module is their equivalent over the simulated
platform, usable as ``python -m repro.host.cli <command>``:

==============  ========================================================
``info``        board inventory (the §2 subsystem table)
``selftest``    run the acceptance project's I/O self-test
``regress``     run the unified regression on sim/hw/both targets
``utilization`` report any project's resource use on any catalogued FPGA
``build``       synthesize a project into a checksummed artifact
``measure``     run an OSNT measurement session and analyse the capture
``linerate``    print the E2 rate-vs-frame-size table analytically
``platforms``   list the supported NetFPGA platforms (§1)
``mon``         forward to the ``nf-mon`` telemetry monitor
==============  ========================================================

Every command is a plain function returning an exit code, so tests (and
other tools) can call them directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.board.fpga import FpgaDevice, KINTEX7_325T, VIRTEX5_TX240T, VIRTEX7_690T, report_for_design
from repro.board.mac import effective_throughput_bps
from repro.board.sume import ALL_PLATFORMS, NetFpgaSume
from repro.utils.units import GBPS, format_rate

DEVICES: dict[str, FpgaDevice] = {
    "xc7v690t": VIRTEX7_690T,
    "xc5vtx240t": VIRTEX5_TX240T,
    "xc7k325t": KINTEX7_325T,
}


def _project_factories() -> dict[str, Callable[[], object]]:
    # Imported lazily: the CLI should start fast for `info`.
    from repro.projects.acceptance_test import AcceptanceTestProject
    from repro.projects.firewall import FirewallProject
    from repro.projects.osnt.gateware import OsntProject
    from repro.projects.reference_nic import ReferenceNic
    from repro.projects.reference_router import ReferenceRouter
    from repro.projects.reference_switch import ReferenceSwitch, ReferenceSwitchLite

    return {
        "reference_nic": ReferenceNic,
        "reference_switch": ReferenceSwitch,
        "reference_switch_lite": ReferenceSwitchLite,
        "reference_router": ReferenceRouter,
        "acceptance_test": AcceptanceTestProject,
        "firewall": FirewallProject,
        "osnt": OsntProject,
    }


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_info(_args: argparse.Namespace) -> int:
    board = NetFpgaSume()
    print("NetFPGA SUME board inventory:")
    for key, value in board.inventory():
        print(f"  {key:22s} {value}")
    print(f"  {'100g_capable':22s} {board.supports_100g()}")
    return 0


def cmd_platforms(_args: argparse.Namespace) -> int:
    print(f"{'platform':18s} {'fpga':12s} {'ports':16s} {'max I/O':12s} notes")
    for platform in ALL_PLATFORMS:
        ports = f"{platform.phys_ports}x{format_rate(platform.port_rate_bps)}"
        print(
            f"{platform.name:18s} {platform.fpga.name:12s} {ports:16s} "
            f"{format_rate(platform.max_io_bps):12s} {platform.notes}"
        )
    return 0


def cmd_selftest(_args: argparse.Namespace) -> int:
    from repro.projects.acceptance_test import IoSelfTest

    selftest = IoSelfTest()
    selftest.run_all()
    for result in selftest.results:
        status = "PASS" if result.passed else "FAIL"
        print(f"  {result.subsystem:14s} {status}  {result.detail}")
    if selftest.all_passed:
        print("self-test: ALL PASS")
        return 0
    print("self-test: FAILURES")
    return 1


def cmd_regress(args: argparse.Namespace) -> int:
    from repro.testenv.regress import RegressionRunner

    modes = ("sim", "hw") if args.mode == "both" else (args.mode,)
    runner = RegressionRunner(modes=modes)
    passed = runner.run()
    print(runner.render())
    print("regression: ALL PASS" if passed else "regression: FAILURES")
    return 0 if passed else 1


def cmd_utilization(args: argparse.Namespace) -> int:
    factories = _project_factories()
    if args.project not in factories:
        print(f"unknown project {args.project!r}; have {sorted(factories)}",
              file=sys.stderr)
        return 2
    device = DEVICES[args.device]
    report = report_for_design(factories[args.project](), device)
    print(report.render())
    if not report.fits:
        print("WARNING: design exceeds device capacity")
        return 1
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    """An OSNT measurement session: generate, capture, analyse."""
    from repro.board.mac import EthernetMacModel, Wire
    from repro.core.eventsim import EventSimulator
    from repro.packet.analysis import interarrival_stats, size_histogram, summarize
    from repro.packet.generator import TrafficSpec
    from repro.projects.osnt import GeneratorConfig, OsntGenerator, OsntMonitor

    sim = EventSimulator()
    tx = EthernetMacModel(sim, "gen", rate_bps=10 * GBPS)
    rx = EthernetMacModel(sim, "mon", rate_bps=10 * GBPS)
    Wire(sim, tx, rx, propagation_delay_ns=args.wire_ns)
    generator = OsntGenerator(sim, tx)
    monitor = OsntMonitor(rx)
    spec = (
        TrafficSpec.imix(flows=args.flows)
        if args.profile == "imix"
        else TrafficSpec.fixed(args.size, flows=args.flows)
    )
    generator.load_frames([f.pack() for f in spec.frames(args.count)])
    rate = args.rate * GBPS if args.rate else None
    generator.start(GeneratorConfig(rate_bps=rate))
    sim.run_until_idle()

    summary = summarize(monitor.records)
    gaps = interarrival_stats(monitor.records)
    latency = monitor.latency_summary()
    print(f"capture: {summary.packets} packets, "
          f"{format_rate(summary.mean_rate_bps)}, "
          f"mean size {summary.mean_size:.0f}B over {summary.duration_ns / 1e3:.1f} us")
    print(f"inter-arrival: min {gaps.min_ns:.0f} ns  mean {gaps.mean_ns:.0f} ns  "
          f"max {gaps.max_ns:.0f} ns  stddev {gaps.stddev_ns:.1f} ns")
    if latency["count"]:
        print(f"latency: mean {latency['mean']:.1f} ns  "
              f"jitter {latency['max'] - latency['min']:.1f} ns  "
              f"loss {monitor.stats.lost}")
    print("size distribution:")
    for label, count in size_histogram(monitor.records):
        if count:
            print(f"  {label:>10s}B : {count}")
    if args.pcap:
        from repro.packet.pcap import write_pcap

        write_pcap(args.pcap, monitor.records)
        print(f"wrote capture to {args.pcap}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    from repro.flow import BuildError, synthesize

    factories = _project_factories()
    if args.project not in factories:
        print(f"unknown project {args.project!r}; have {sorted(factories)}",
              file=sys.stderr)
        return 2
    try:
        artifact = synthesize(factories[args.project](), DEVICES[args.device])
    except BuildError as exc:
        print(f"build failed: {exc}", file=sys.stderr)
        return 1
    print(artifact.render())
    if args.output:
        artifact.save(args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_mon(args: argparse.Namespace) -> int:
    from repro.host import nfmon

    return nfmon.main(args.mon_args)


def cmd_linerate(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    rate = args.rate * GBPS
    print(f"{'frame B':8s} {'achieved':>12s} {'efficiency':>11s}")
    for size in sizes:
        if size < 64:
            print(f"unsupported frame size {size} (min 64)", file=sys.stderr)
            return 2
        achieved = effective_throughput_bps(size, rate)
        print(f"{size:<8d} {format_rate(achieved):>12s} {achieved / rate:>10.1%}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli", description="NetFPGA platform tools (simulated)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="board inventory").set_defaults(func=cmd_info)
    sub.add_parser("platforms", help="supported platforms").set_defaults(
        func=cmd_platforms
    )
    sub.add_parser("selftest", help="run the I/O self-test").set_defaults(
        func=cmd_selftest
    )

    regress = sub.add_parser("regress", help="run the unified regression")
    regress.add_argument("--mode", choices=("sim", "hw", "both"), default="both")
    regress.set_defaults(func=cmd_regress)

    utilization = sub.add_parser("utilization", help="project resource report")
    utilization.add_argument("--project", default="reference_router")
    utilization.add_argument("--device", choices=sorted(DEVICES), default="xc7v690t")
    utilization.set_defaults(func=cmd_utilization)

    build = sub.add_parser("build", help="synthesize a project to an artifact")
    build.add_argument("--project", default="reference_router")
    build.add_argument("--device", choices=sorted(DEVICES), default="xc7v690t")
    build.add_argument("--output", default=None, help="write the artifact JSON here")
    build.set_defaults(func=cmd_build)

    linerate = sub.add_parser("linerate", help="rate vs frame size table")
    linerate.add_argument("--rate", type=float, default=10.0, help="line rate in Gb/s")
    linerate.add_argument("--sizes", default="64,128,256,512,1024,1518")
    linerate.set_defaults(func=cmd_linerate)

    measure = sub.add_parser("measure", help="run an OSNT measurement session")
    measure.add_argument("--profile", choices=("fixed", "imix"), default="fixed")
    measure.add_argument("--size", type=int, default=512, help="frame size (fixed)")
    measure.add_argument("--count", type=int, default=500)
    measure.add_argument("--flows", type=int, default=8)
    measure.add_argument("--rate", type=float, default=None,
                         help="Gb/s (default: line rate)")
    measure.add_argument("--wire-ns", type=float, default=1000.0)
    measure.add_argument("--pcap", default=None, help="export the capture")
    measure.set_defaults(func=cmd_measure)

    mon = sub.add_parser("mon", help="telemetry monitor (see nf-mon --help)")
    mon.add_argument("mon_args", nargs=argparse.REMAINDER,
                     help="arguments forwarded to nf-mon")
    mon.set_defaults(func=cmd_mon)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    # Same exit-code contract as nf-mon: argparse's SystemExit becomes a
    # returned code (unknown subcommand/flag → 2, --help → 0).
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        if exc.code in (0, None):
            return 0
        return exc.code if isinstance(exc.code, int) else 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
