"""``nf-mon``: the platform monitoring tool.

The telemetry subsystem's command-line face, in the spirit of NetFPGA's
register peek/poke utilities but speaking the metrics registry instead
of raw offsets.  It runs one of the standard regression scenarios with a
telemetry session attached and exposes the measurement three ways::

    nf-mon dump  --scenario switch_learn_and_forward --format table
    nf-mon watch --scenario router_forward_connected --interval 128
    nf-mon trace --scenario router_forward_connected --output trace.json

``dump`` prints the end-of-run metrics (``table``, ``json`` or ``prom``
Prometheus text); ``watch`` streams interval rows while the kernel runs
(sim mode only — it rides the session's per-cycle callback); ``trace``
writes the Chrome ``trace_event`` JSON that ``chrome://tracing`` and
Perfetto load.  ``scenarios`` lists what can be monitored; ``soak`` and
``fabric`` run the chaos soak and the fabric workload engine.

Every command is a plain function returning an exit code, so tests call
them directly; the console entry point is :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.telemetry.session import TelemetrySession


def _scenarios():
    # Imported lazily so `nf-mon scenarios` starts fast.
    from repro.testenv.regress import standard_scenarios

    return {test.name: test for test in standard_scenarios()}


def _run_scenario(name: str, mode: str, session: TelemetrySession,
                  faults: Optional[str] = None):
    from repro.testenv.harness import run_test

    scenarios = _scenarios()
    if name not in scenarios:
        print(f"unknown scenario {name!r}; have {sorted(scenarios)}",
              file=sys.stderr)
        return None
    try:
        return run_test(scenarios[name], mode, faults=faults, telemetry=session)
    except ValueError as exc:
        # e.g. an unknown fault plan name — operator error, not a crash.
        print(str(exc), file=sys.stderr)
        return None


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_scenarios(_args: argparse.Namespace) -> int:
    for name, test in sorted(_scenarios().items()):
        print(f"  {name:28s} {len(test.stimuli)} stimuli, "
              f"{test.project_factory().name}")
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    session = TelemetrySession(args.mode)
    result = _run_scenario(args.scenario, args.mode, session, args.faults)
    if result is None:
        return 2
    if args.format == "json":
        text = session.registry.to_json(
            indent=2, mode=args.mode, scenario=args.scenario
        )
    elif args.format == "prom":
        text = session.registry.to_prometheus()
    else:
        snapshot = result.telemetry
        width = max(map(len, snapshot.counters), default=0)
        lines = [f"# {args.scenario} [{args.mode}] — "
                 f"{snapshot.trace_events} trace events"]
        for series in sorted(snapshot.counters):
            value = snapshot.counters[series]
            rendered = int(value) if float(value).is_integer() else round(value, 3)
            marker = " *" if series in snapshot.parity else ""
            lines.append(f"  {series:{width}s} {rendered}{marker}")
        lines.append("  (* = cycle-independent: must match across sim/hw)")
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    if args.mode != "sim":
        print("watch rides the kernel's cycle hook; only --mode sim",
              file=sys.stderr)
        return 2
    session = TelemetrySession("sim")
    registry = session.registry
    print(f"{'cycle':>8s} {'pkts_in':>8s} {'pkts_out':>9s} "
          f"{'oq_bytes':>9s} {'events':>7s}")

    def _sum(prefix: str) -> int:
        return int(sum(
            value for series, value in registry.snapshot().items()
            if series.startswith(prefix)
        ))

    rx_prefix = 'chan_packets_total{chan="rx_'
    tx_prefix = 'chan_packets_total{chan="tx_'

    def on_cycle(cycle: int) -> None:
        if cycle % args.interval:
            return
        print(f"{cycle:>8d} {_sum(rx_prefix):>8d} {_sum(tx_prefix):>9d} "
              f"{_sum('oq_occupancy_bytes'):>9d} {len(session.trace):>7d}")

    session.cycle_callback = on_cycle
    result = _run_scenario(args.scenario, "sim", session, args.faults)
    if result is None:
        return 2
    snapshot = result.telemetry
    print(f"done: {result.cycles} cycles, {result.total_packets()} packets, "
          f"{snapshot.trace_events} trace events "
          f"({snapshot.trace_dropped} dropped)")
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.testenv.soak import run_soak

    try:
        report = run_soak(
            args.mode, args.plan, seed=args.seed, epochs=args.epochs,
            telemetry=True,
        )
    except ValueError as exc:
        # Unknown plan name (or bad mode) — operator error, not a crash.
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(f"# soak {report.plan!r} seed={report.seed} "
              f"[{report.mode}] — {report.epochs} epochs")
        rows = [
            ("device resets", report.resets),
            ("flap-lost frames", report.flap_lost_frames),
            ("frames injected", report.injected_frames),
            ("frames forwarded", report.forwarded_frames),
            ("degraded epochs", report.degraded_epochs),
            ("invariant checks", report.invariant_checks),
        ]
        for label, value in rows:
            print(f"  {label:24s} {value}")
        print("  fault counters:")
        for name, value in sorted(report.fault_counters.items()):
            print(f"    {name:22s} {value}")
        print("  resilience counters:")
        for name, value in sorted(report.resilience_counters.items()):
            print(f"    {name:22s} {value}")
        for failure in report.invariant_failures:
            print(f"  INVARIANT VIOLATED: {failure}")
        print(f"  converged: {report.converged}")
    return 0 if report.converged and not report.invariant_failures else 1


def cmd_fabric(args: argparse.Namespace) -> int:
    from repro.fabric import get_topology, get_workload, run_sharded
    from repro.faults import get_plan

    try:
        spec = get_topology(args.topo)
        workload = get_workload(args.workload).with_seed(args.seed)
        plan = (get_plan(args.faults, seed=args.seed)
                if args.faults else None)
        chaos = (get_plan(args.chaos_shards, seed=args.seed)
                 if args.chaos_shards else None)
        report = run_sharded(
            spec, workload, plan,
            shards=args.shards, parallel=not args.inline,
            fastpath=not args.no_fastpath,
            batch=args.batch,
            supervised=not args.bare_pool,
            chaos=chaos, checkpoint=args.checkpoint,
        )
    except ValueError as exc:
        # Unknown topology/workload/plan preset, shards > flows, or a
        # checkpoint written by a different run — operator error.
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps(report.as_dict(per_flow=args.per_flow), indent=2))
    else:
        print(f"# fabric {report.topology} × {report.workload} "
              f"seed={report.seed} shards={report.shards}"
              + (f" faults={report.plan}" if report.plan else ""))
        rows = [
            ("flows", len(report.records)),
            ("packets attempted", report.attempted),
            ("packets delivered", report.delivered),
            ("lost on wire", sum(r.lost_wire for r in report.records)),
            ("lost to link flaps", sum(r.lost_flap for r in report.records)),
            ("hop-limit drops", sum(r.dropped_hop_limit for r in report.records)),
            ("blackholed", sum(r.blackholed for r in report.records)),
            ("misdelivered", report.misdelivered),
            ("retransmits", sum(r.retransmits for r in report.records)),
            ("bytes delivered", sum(r.bytes_delivered for r in report.records)),
            ("packets/sec", round(report.packets_per_second, 1)),
        ]
        for label, value in rows:
            print(f"  {label:24s} {value}")
        print("  hops histogram:")
        for hop, count in sorted(report.hops_hist.items()):
            print(f"    {hop:2d} hops {count:>8d}")
        print("  per-device forwarded:")
        for device, count in sorted(report.device_forwarded.items()):
            print(f"    {device:22s} {count}")
        if report.fastpath:
            print("  flow-cache stats:")
            for name, value in sorted(report.fastpath.items()):
                print(f"    {name:22s} {value}")
        if report.batch:
            print("  batch tier:")
            for name, value in sorted(report.batch.items()):
                print(f"    {name:22s} {value}")
        if report.supervision:
            print("  supervision:")
            for name, value in sorted(report.supervision.items()):
                print(f"    {name:22s} {value}")
        if args.per_flow:
            print(f"  {'flow':>6s} {'src':>5s} {'dst':>5s} {'try':>5s} "
                  f"{'ok':>5s} {'lost':>5s} {'hops≤':>5s}")
            for record in report.records:
                lost = (record.lost_wire + record.lost_flap
                        + record.blackholed + record.dropped_hop_limit)
                print(f"  {record.flow_id:>6d} {record.src:>5s} "
                      f"{record.dst:>5s} {record.attempted:>5d} "
                      f"{record.delivered:>5d} {lost:>5d} "
                      f"{record.hops_max:>5d}")
        print(f"  fingerprint: {report.fingerprint()}")
        print(f"  healthy: {report.healthy()}")
    return 0 if report.healthy() else 1


def cmd_int(args: argparse.Namespace) -> int:
    from repro.fabric import get_topology, get_workload, run_sharded
    from repro.faults import get_plan

    try:
        spec = get_topology(args.topo)
        workload = get_workload(args.workload).with_seed(args.seed)
        plan = (get_plan(args.faults, seed=args.seed)
                if args.faults else None)
        report = run_sharded(
            spec, workload, plan,
            shards=args.shards, parallel=not args.inline,
            fastpath=not args.no_fastpath, int_all=True,
        )
    except ValueError as exc:
        # Unknown topology/workload/plan preset — operator error.
        print(str(exc), file=sys.stderr)
        return 2
    summary = report.int_summary or {}
    # The attribution cross-check: the receiver's stamp-derived numbers
    # must agree with the device-side decision counters.
    reroutes_match = (
        sum(summary.get("reroutes", {}).values())
        == sum(report.device_reroutes.values())
    )
    blackholes_match = (
        summary.get("blackholes", 0)
        == sum(report.device_blackholed.values())
    )
    if args.format == "json":
        import json

        out = report.as_dict()
        out["int_reroutes_match"] = reroutes_match
        out["int_blackholes_match"] = blackholes_match
        print(json.dumps(out, indent=2))
    else:
        print(f"# int {report.topology} × {report.workload} "
              f"seed={report.seed} shards={report.shards}"
              + (f" faults={report.plan}" if report.plan else ""))
        rows = [
            ("flows", summary.get("flows", 0)),
            ("packets injected", summary.get("packets", 0)),
            ("packets delivered", summary.get("delivered", 0)),
            ("hop stamps", summary.get("stamps", 0)),
            ("stack overflows", summary.get("overflows", 0)),
            ("lost (receiver view)", summary.get("lost", 0)),
            ("  at dead links", summary.get("lost_link_down", 0)),
            ("  at the hop limit", summary.get("lost_hop_limit", 0)),
            ("  blackholed", summary.get("blackholes", 0)),
        ]
        for label, value in rows:
            print(f"  {label:24s} {value}")
        for section, title in (
            ("paths", "paths observed"),
            ("reroutes", "reroutes by device"),
            ("reroute_links", "reroutes by failed link"),
            ("drop_sites", "localized drop sites"),
            ("blackhole_paths", "last-known blackhole paths"),
            ("hop_latency", "per-hop latency (device:cycles)"),
        ):
            entries = summary.get(section, {})
            if entries:
                print(f"  {title}:")
                for key, count in sorted(entries.items()):
                    print(f"    {key:28s} {count}")
        print(f"  reroutes match devices:   {reroutes_match}")
        print(f"  blackholes match devices: {blackholes_match}")
        print(f"  fingerprint: {report.fingerprint()}")
        print(f"  healthy: {report.healthy()}")
    return 0 if (report.healthy() and reroutes_match
                 and blackholes_match) else 1


def cmd_frr(args: argparse.Namespace) -> int:
    from repro.frr import run_sweep

    try:
        report = run_sweep(
            args.topo, seed=args.seed, epochs=args.epochs,
            fail_epoch=args.fail_epoch, down_epochs=args.down_epochs,
            pairs_per_link=args.pairs_per_link,
            max_links=args.max_links,
            shards=args.shards, parallel=not args.inline,
        )
    except ValueError as exc:
        # Unknown topology preset or an inconsistent window — operator
        # error, not a crash.
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps(report.as_dict(per_link=args.per_link), indent=2))
    else:
        print(f"# frr sweep {report.topology} seed={report.seed} "
              f"fail@{report.fail_epoch} down={report.down_epochs} "
              f"epochs={report.epochs} shards={report.shards}")
        rows = [
            ("links swept", f"{len(report.swept())}/{len(report.links)}"),
            ("packets lost (FRR on)", report.packets_lost_frr_on),
            ("packets lost (FRR off)", report.packets_lost_frr_off),
            ("backup reroutes", report.reroutes),
            ("int attribution agrees", report.int_consistent()),
        ]
        for label, value in rows:
            print(f"  {label:24s} {value}")
        if args.per_link:
            print(f"  {'link':>16s} {'cross':>6s} {'prot':>5s} {'swept':>6s} "
                  f"{'lost_on':>8s} {'lost_off':>9s} {'ttr_on':>7s} "
                  f"{'ttr_off':>8s}")
            for link in sorted(report.links, key=lambda l: l.link):
                print(f"  {link.link:>16s} {link.crossing_pairs:>6d} "
                      f"{link.protected_pairs:>5d} {link.swept_pairs:>6d} "
                      f"{link.lost_frr_on:>8d} {link.lost_frr_off:>9d} "
                      f"{link.recover_epochs_frr_on:>7d} "
                      f"{link.recover_epochs_frr_off:>8d}")
        print(f"  fingerprint: {report.fingerprint()}")
        print(f"  healthy: {report.healthy()}")
    # --max-loss: a CI-style guard on the FRR benefit.  The FRR-on loss
    # may not exceed max_loss × the FRR-off loss (0.1 mirrors the CI
    # smoke job's on <= off/10 check).
    breach = (
        args.max_loss is not None
        and report.packets_lost_frr_on
        > args.max_loss * report.packets_lost_frr_off
    )
    if breach:
        print(
            f"FRR loss guard breached: {report.packets_lost_frr_on} lost "
            f"with FRR on > {args.max_loss} × {report.packets_lost_frr_off} "
            f"lost with FRR off", file=sys.stderr,
        )
    return 0 if report.healthy() and not breach else 1


def cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import ShellSession, interact, run_script

    try:
        session = ShellSession(
            topo=args.topo, workload=args.workload, seed=args.seed,
            plan=args.faults, frr=args.frr, int_all=args.int_all,
            fastpath=not args.no_fastpath, warp=not args.no_warp,
        )
    except ValueError as exc:
        # Unknown topology/workload/plan preset — operator error.
        print(str(exc), file=sys.stderr)
        return 2
    if args.script:
        try:
            with open(args.script, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return run_script(session, lines)
    return interact(session)


def cmd_commands(_args: argparse.Namespace) -> int:
    """The top-level listing: every subcommand and its one-liner."""
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        for choice in getattr(action, "_choices_actions", ()):
            print(f"  {choice.dest:12s} {choice.help}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    session = TelemetrySession(args.mode)
    result = _run_scenario(args.scenario, args.mode, session, args.faults)
    if result is None:
        return 2
    session.trace.write_chrome(args.output)
    print(f"wrote {len(session.trace)} events "
          f"({session.trace.dropped} dropped) to {args.output} "
          f"[{session.trace.domain} domain]")
    return 0


# ----------------------------------------------------------------------
def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="switch_learn_and_forward",
                        help="a standard regression scenario name")
    parser.add_argument("--mode", choices=("sim", "hw"), default="sim")
    parser.add_argument("--faults", default=None,
                        help="run under a registered fault plan")


def _sub(sub, name: str, help_text: str) -> argparse.ArgumentParser:
    """A subparser whose ``--help`` text carries the same one-liner the
    parent listing shows (argparse leaves ``description`` empty unless
    told, which made half the subcommands' ``--help`` blank)."""
    return sub.add_parser(name, help=help_text, description=help_text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nf-mon", description="NetFPGA platform telemetry monitor"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _sub(sub, "commands", "list every subcommand and what it does"
         ).set_defaults(func=cmd_commands)

    _sub(sub, "scenarios", "list monitorable scenarios").set_defaults(
        func=cmd_scenarios
    )

    dump = _sub(sub, "dump", "run a scenario and print its metrics")
    _add_run_arguments(dump)
    dump.add_argument("--format", choices=("table", "json", "prom"),
                      default="table")
    dump.add_argument("--output", default=None, help="write here instead of stdout")
    dump.set_defaults(func=cmd_dump)

    watch = _sub(sub, "watch", "stream interval rows while the kernel runs")
    _add_run_arguments(watch)
    watch.add_argument("--interval", type=int, default=256,
                       help="cycles between rows")
    watch.set_defaults(func=cmd_watch)

    trace = _sub(sub, "trace", "write a Chrome trace_event JSON file")
    _add_run_arguments(trace)
    trace.add_argument("--output", default="nf_trace.json")
    trace.set_defaults(func=cmd_trace)

    shell = _sub(sub, "shell", "interactive emulation shell over a live "
                               "fabric (REPL or --script replay)")
    shell.add_argument("--topo", default="leaf-spine",
                       help="a named fabric topology preset")
    shell.add_argument("--workload", default="uniform-small",
                       help="a named workload preset")
    shell.add_argument("--seed", type=int, default=0)
    shell.add_argument("--faults", default=None,
                       help="arm a registered fault plan before the run")
    shell.add_argument("--frr", action="store_true",
                       help="install loop-free backup next-hops")
    shell.add_argument("--int", dest="int_all", action="store_true",
                       help="upgrade every flow to in-band telemetry")
    shell.add_argument("--no-fastpath", action="store_true",
                       help="disable the flow-cache fast path")
    shell.add_argument("--no-warp", action="store_true",
                       help="walk idle cycles instead of compressing them")
    shell.add_argument("--script", default=None, metavar="FILE.nfsh",
                       help="replay a command file instead of prompting "
                            "(exit 0 clean, 1 failed expect, 2 operator "
                            "error)")
    shell.set_defaults(func=cmd_shell)

    soak = _sub(
        sub, "soak", "run the chaos soak under a control-plane fault plan"
    )
    soak.add_argument("--plan", default="ctrl-chaos",
                      help="a registered fault plan name")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--epochs", type=int, default=8)
    soak.add_argument("--mode", choices=("sim", "hw"), default="sim")
    soak.add_argument("--format", choices=("table", "json"), default="table")
    soak.set_defaults(func=cmd_soak)

    fabric = _sub(
        sub, "fabric", "run a fabric workload over a named topology"
    )
    fabric.add_argument("--topo", default="leaf-spine",
                        help="a named fabric topology preset")
    fabric.add_argument("--workload", default="uniform-small",
                        help="a named workload preset")
    fabric.add_argument("--seed", type=int, default=0)
    fabric.add_argument("--shards", type=int, default=1,
                        help="partition flows across this many workers")
    fabric.add_argument("--inline", action="store_true",
                        help="run shards sequentially in-process")
    fabric.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="the S27 batch tier (compiled per-flow "
                             "closures); --no-batch takes the "
                             "per-packet reference path")
    fabric.add_argument("--no-fastpath", action="store_true",
                        help="disable the flow-cache fast path (A/B "
                             "reference run; same fingerprint, slower)")
    fabric.add_argument("--faults", default=None,
                        help="run under a registered fault plan")
    fabric.add_argument("--chaos-shards", default=None, metavar="PLAN",
                        help="seed shard-executor crash chaos from this "
                             "fault plan (e.g. shard-chaos; operational "
                             "only, fingerprint unchanged)")
    fabric.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="persist accepted shard reports here and "
                             "resume from survivors on rerun")
    fabric.add_argument("--bare-pool", action="store_true",
                        help="bypass the supervised executor (legacy "
                             "bare pool; the E21 overhead reference)")
    fabric.add_argument("--format", choices=("table", "json"),
                        default="table")
    fabric.add_argument("--per-flow", action="store_true",
                        help="include the per-flow stats table")
    fabric.set_defaults(func=cmd_fabric)

    frr = _sub(
        sub, "frr", "sweep single-link failures, FRR-on vs FRR-off"
    )
    frr.add_argument("--topo", default="abilene",
                     help="a named fabric topology preset")
    frr.add_argument("--seed", type=int, default=0)
    frr.add_argument("--epochs", type=int, default=6,
                     help="sweep length in scheduler epochs")
    frr.add_argument("--fail-epoch", type=int, default=2,
                     help="epoch at which the swept link goes down")
    frr.add_argument("--down-epochs", type=int, default=2,
                     help="epochs the swept link stays down")
    frr.add_argument("--pairs-per-link", type=int, default=2,
                     help="crossing host pairs driven over each link")
    frr.add_argument("--max-links", type=int, default=None,
                     help="truncate the swept link list (smoke runs)")
    frr.add_argument("--shards", type=int, default=1,
                     help="partition flows across this many workers")
    frr.add_argument("--inline", action="store_true",
                     help="run shards sequentially in-process")
    frr.add_argument("--format", choices=("table", "json"), default="table")
    frr.add_argument("--per-link", action="store_true",
                     help="include the per-link results table")
    frr.add_argument("--max-loss", type=float, default=None,
                     help="fail (exit 1) when FRR-on loss exceeds this "
                          "fraction of FRR-off loss")
    frr.set_defaults(func=cmd_frr)

    int_cmd = _sub(
        sub, "int", "run an INT-enabled fabric workload and report the "
                    "receiver-side path/loss attribution"
    )
    int_cmd.add_argument("--topo", default="leaf-spine",
                         help="a named fabric topology preset")
    int_cmd.add_argument("--workload", default="uniform-int",
                         help="a named workload preset (all flows are "
                              "upgraded to INT regardless)")
    int_cmd.add_argument("--seed", type=int, default=0)
    int_cmd.add_argument("--shards", type=int, default=1,
                         help="partition flows across this many workers")
    int_cmd.add_argument("--inline", action="store_true",
                         help="run shards sequentially in-process")
    int_cmd.add_argument("--no-fastpath", action="store_true",
                         help="disable the flow-cache fast path (A/B "
                              "reference run; same fingerprint, slower)")
    int_cmd.add_argument("--faults", default=None,
                         help="run under a registered fault plan")
    int_cmd.add_argument("--format", choices=("table", "json"),
                         default="table")
    int_cmd.set_defaults(func=cmd_int)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    # Normalize argparse's SystemExit into a *returned* code so every
    # caller (tests, `repro-cli mon` forwarding, scripts) sees the same
    # contract: unknown subcommand/flag → 2, `--help` → 0.
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        if exc.code in (0, None):
            return 0
        return exc.code if isinstance(exc.code, int) else 2
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C during a long watch/soak is a normal way out, not a
        # traceback: match the shell convention of 128+SIGINT.
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
