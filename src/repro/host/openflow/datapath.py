"""The switch-side agent: applies control messages to the pipeline.

Two programming modes, matching the E6 experiment's arms:

* ``transactional=True`` (BlueSwitch): FlowMods are staged in the shadow
  banks and take effect only at ``CommitRequest`` — atomically.
* ``transactional=False`` (naive OpenFlow switch): each FlowMod mutates
  the live tables immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.control import ControlPlane

from repro.host.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    CommitRequest,
    FlowMod,
    FlowModCommand,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PacketOut,
    TableStatsReply,
    TableStatsRequest,
)
from repro.projects.blueswitch.pipeline import BlueSwitchPipeline

Message = Union[
    FlowMod,
    BarrierRequest,
    CommitRequest,
    PacketOut,
    FlowStatsRequest,
    TableStatsRequest,
]
Reply = Union[BarrierReply, FlowStatsReply, TableStatsReply]


class DatapathAgent:
    """Receives controller messages; owns a BlueSwitch pipeline."""

    def __init__(
        self,
        pipeline: BlueSwitchPipeline,
        transactional: bool = True,
        control: Optional["ControlPlane"] = None,
    ):
        self.pipeline = pipeline
        self.transactional = transactional
        #: Resilient write path: with a control plane attached, the
        #: intended flow configuration is mirrored into its
        #: desired-state store (naive mode per FlowMod, transactional
        #: mode at commit — intent is what was *committed*), so the
        #: auditor can restore flows a faulty write lost.
        self.control = control
        self._staged = 0
        self._staged_slots: set[tuple[int, int]] = set()
        self.applied_flow_mods = 0
        self.packet_in_handler: Optional[Callable[[PacketIn], None]] = None
        #: Frames emitted by PacketOut, collected for the test harness:
        #: ``(frame, port_bits)``.
        self.injected: list[tuple[bytes, int]] = []
        if transactional:
            # Start with coherent banks so deltas apply cleanly.
            self.pipeline.sync_shadow()

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Optional[Reply]:
        if isinstance(message, FlowMod):
            self._flow_mod(message)
            return None
        if isinstance(message, BarrierRequest):
            # All handling here is synchronous, so a barrier is trivially
            # satisfied — but the reply matters for controller pacing.
            return BarrierReply(xid=message.xid)
        if isinstance(message, CommitRequest):
            self._commit()
            return None
        if isinstance(message, PacketOut):
            self.injected.append((message.frame, message.port_bits))
            return None
        if isinstance(message, FlowStatsRequest):
            table = self.pipeline.tables[message.table_id]
            return FlowStatsReply(
                table_id=message.table_id,
                flows=tuple(table.flow_counts(self.pipeline.active_version)),
                xid=message.xid,
            )
        if isinstance(message, TableStatsRequest):
            rows = tuple(
                (
                    table.table_id,
                    table.banks[self.pipeline.active_version].occupancy(),
                    table.matches,
                    table.misses,
                )
                for table in self.pipeline.tables
            )
            return TableStatsReply(tables=rows, xid=message.xid)
        raise TypeError(f"unhandled message {message!r}")

    def _flow_mod(self, mod: FlowMod) -> None:
        entry = mod.entry if mod.command is FlowModCommand.ADD else None
        if self.transactional:
            self.pipeline.write_shadow(mod.table_id, mod.slot, entry)
            self._staged += 1
            self._staged_slots.add((mod.table_id, mod.slot))
        elif self.control is not None:
            # Resilient naive mode: the mutation goes through the
            # desired store and the (fault-instrumented) flow face.
            key = (mod.table_id, mod.slot)
            if entry is not None:
                self.control.mutate("flows", key, entry)
            else:
                self.control.remove("flows", key)
        else:
            self.pipeline.write_active(mod.table_id, mod.slot, entry)
            # Keep the shadow coherent so a later switch to transactional
            # mode starts from the live state.
            self.pipeline.write_shadow(mod.table_id, mod.slot, entry)
        self.applied_flow_mods += 1

    def _commit(self) -> None:
        if not self.transactional:
            raise RuntimeError("commit is only valid in transactional mode")
        # Counters of flows untouched by this transaction carry over:
        # the live counts move while writes are staged, so refresh them
        # in the shadow just before the flip (staged slots start at 0).
        active = self.pipeline.active_version
        shadow = self.pipeline.shadow_version
        for table in self.pipeline.tables:
            for slot in range(table.slots):
                if (table.table_id, slot) not in self._staged_slots:
                    table.hit_counts[shadow][slot] = table.hit_counts[active][slot]
        self.pipeline.commit()
        if self.control is not None:
            # In transactional mode, *committed* configuration is the
            # intent: record the staged slots' final contents so the
            # auditor can restore them if a later fault wipes a bank.
            bank = self.pipeline.active_version
            for table_id, slot in sorted(self._staged_slots):
                entry = self.pipeline.tables[table_id].read(bank, slot)
                if entry is not None:
                    self.control.store.set("flows", (table_id, slot), entry)
                else:
                    self.control.store.delete("flows", (table_id, slot))
        # Resynchronize the (now stale) shadow for the next transaction.
        self.pipeline.sync_shadow()
        self._staged = 0
        self._staged_slots.clear()

    # ------------------------------------------------------------------
    def process_packet(self, frame: bytes, in_port_bits: int) -> int:
        """Data-plane entry: classify; punt misses as PacketIn.

        Returns the output port mask (0 = dropped or punted).
        """
        result = self.pipeline.classify(frame, in_port_bits)
        if result.dropped and self.packet_in_handler is not None:
            self.packet_in_handler(PacketIn(frame, in_port_bits))
        return 0 if result.dropped else result.output_bits
