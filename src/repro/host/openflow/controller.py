"""Controllers: the SDN applications of the §3 scenario.

:class:`Controller` is the base transport: it talks to one
:class:`~repro.host.openflow.datapath.DatapathAgent` and offers both the
naive per-FlowMod API and the BlueSwitch transactional one.

:class:`LearningController` is a complete sample application — the
classic reactive learning switch written *as a control plane program*,
installing exact-match flows from PacketIn events.  It demonstrates the
"SDN researcher ... can write a control plane software application to
run on top of [BlueSwitch]" workflow with zero hardware knowledge.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.metadata import all_phys_ports_mask
from repro.cores.header_parser import parse_headers
from repro.host.openflow.datapath import DatapathAgent
from repro.host.openflow.messages import (
    BarrierRequest,
    CommitRequest,
    FlowMod,
    FlowModCommand,
    PacketIn,
    PacketOut,
)
from repro.projects.blueswitch.flow_table import (
    ActionOutput,
    FlowEntry,
    FlowMatch,
)


class Controller:
    """Base controller: message plumbing plus transactional updates."""

    def __init__(self, agent: DatapathAgent):
        self.agent = agent
        self._xids = itertools.count(1)
        agent.packet_in_handler = self.on_packet_in
        self.barriers_seen = 0

    # ------------------------------------------------------------------
    def send_flow_mod(
        self, table_id: int, slot: int, entry: Optional[FlowEntry]
    ) -> None:
        command = FlowModCommand.ADD if entry is not None else FlowModCommand.DELETE
        self.agent.handle(
            FlowMod(command, table_id, slot, entry, xid=next(self._xids))
        )

    def barrier(self) -> None:
        reply = self.agent.handle(BarrierRequest(xid=next(self._xids)))
        if reply is not None:
            self.barriers_seen += 1

    def commit(self) -> None:
        self.agent.handle(CommitRequest(xid=next(self._xids)))

    def push_update(
        self, writes: list[tuple[int, int, Optional[FlowEntry]]]
    ) -> None:
        """Install a multi-table update.

        In transactional mode this is the BlueSwitch sequence: stage all
        writes, barrier, commit — packets see old-or-new, never a mix.
        In naive mode the writes land one by one.
        """
        for table_id, slot, entry in writes:
            self.send_flow_mod(table_id, slot, entry)
        self.barrier()
        if self.agent.transactional:
            self.commit()

    def packet_out(self, frame: bytes, port_bits: int) -> None:
        self.agent.handle(PacketOut(frame, port_bits, xid=next(self._xids)))

    def flow_stats(self, table_id: int) -> list[tuple[int, int]]:
        """Per-flow match counters of ``table_id``'s active bank."""
        from repro.host.openflow.messages import FlowStatsRequest

        reply = self.agent.handle(FlowStatsRequest(table_id, xid=next(self._xids)))
        assert reply is not None
        return list(reply.flows)  # type: ignore[union-attr]

    def table_stats(self) -> list[tuple[int, int, int, int]]:
        """``[(table, active flows, matches, misses)]`` across the pipeline."""
        from repro.host.openflow.messages import TableStatsRequest

        reply = self.agent.handle(TableStatsRequest(xid=next(self._xids)))
        assert reply is not None
        return list(reply.tables)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def on_packet_in(self, event: PacketIn) -> None:
        """Override in applications; base controller ignores."""


class LearningController(Controller):
    """Reactive L2 learning as an SDN app on table 0.

    MAC locations are learned from PacketIn; known destinations get an
    exact-match flow installed (one slot per destination MAC, LRU-free
    round-robin slot allocation), unknown ones are flooded via PacketOut.
    """

    def __init__(self, agent: DatapathAgent, table_id: int = 0):
        super().__init__(agent)
        self.table_id = table_id
        self.mac_to_port: dict[int, int] = {}
        self._mac_slot: dict[int, int] = {}
        self._next_slot = 0
        self.flows_installed = 0
        self.floods = 0

    def _slot_for(self, dst_mac: int) -> int:
        slot = self._mac_slot.get(dst_mac)
        if slot is None:
            slot = self._next_slot
            table = self.agent.pipeline.tables[self.table_id]
            self._next_slot = (self._next_slot + 1) % table.slots
            self._mac_slot[dst_mac] = slot
        return slot

    def on_packet_in(self, event: PacketIn) -> None:
        parsed = parse_headers(event.frame[:64])
        if parsed.src_mac is None or parsed.dst_mac is None:
            return
        self.mac_to_port[parsed.src_mac.value] = event.in_port_bits

        out_bits = self.mac_to_port.get(parsed.dst_mac.value)
        if out_bits is None or parsed.dst_mac.is_multicast:
            self.floods += 1
            flood = all_phys_ports_mask(exclude=event.in_port_bits)
            self.packet_out(event.frame, flood)
            return
        # Install a dst-MAC exact flow, then forward the trigger packet.
        entry = FlowEntry(
            FlowMatch(eth_dst=parsed.dst_mac.value), (ActionOutput(out_bits),)
        )
        self.push_update(
            [(self.table_id, self._slot_for(parsed.dst_mac.value), entry)]
        )
        self.flows_installed += 1
        self.packet_out(event.frame, out_bits)
