"""A minimal OpenFlow-style control plane for the BlueSwitch data plane.

The paper's §3 names exactly this scenario: "an SDN researcher
interested in the control plane and lacking any hardware knowledge, can
use the BlueSwitch OpenFlow switch project as its data plane, and choose
to write a control plane software application to run on top of it."

This package is that seam: wire-format messages (:mod:`messages`), a
switch-side agent that applies them (:mod:`datapath`), and a controller
offering both naive and transactional (BlueSwitch-atomic) update APIs
(:mod:`controller`).
"""

from repro.host.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    CommitRequest,
    FlowMod,
    FlowModCommand,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PacketOut,
    TableStatsReply,
    TableStatsRequest,
)
from repro.host.openflow.datapath import DatapathAgent
from repro.host.openflow.controller import Controller, LearningController

__all__ = [
    "BarrierReply",
    "BarrierRequest",
    "CommitRequest",
    "FlowMod",
    "FlowModCommand",
    "FlowStatsReply",
    "FlowStatsRequest",
    "TableStatsReply",
    "TableStatsRequest",
    "PacketIn",
    "PacketOut",
    "DatapathAgent",
    "Controller",
    "LearningController",
]
