"""Control-channel messages.

A compact OpenFlow-inspired message set: enough to program the
BlueSwitch pipeline, carry packet-in/out, and express BlueSwitch's
transactional extension (``CommitRequest``).  Messages are plain frozen
dataclasses — the "wire format" of this model is Python objects, since
both ends live in one process; serialization fidelity is not what [2]
is about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.projects.blueswitch.flow_table import FlowEntry


class FlowModCommand(enum.Enum):
    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """Install or remove one flow in one (table, slot)."""

    command: FlowModCommand
    table_id: int
    slot: int
    entry: Optional[FlowEntry] = None  # required for ADD
    xid: int = 0

    def __post_init__(self) -> None:
        if self.command is FlowModCommand.ADD and self.entry is None:
            raise ValueError("ADD requires a flow entry")


@dataclass(frozen=True)
class BarrierRequest:
    """All preceding messages must complete before the reply."""

    xid: int = 0


@dataclass(frozen=True)
class BarrierReply:
    xid: int = 0


@dataclass(frozen=True)
class CommitRequest:
    """BlueSwitch extension: atomically activate all staged FlowMods."""

    xid: int = 0


@dataclass(frozen=True)
class PacketOut:
    """Controller-originated packet injection."""

    frame: bytes
    port_bits: int
    xid: int = 0


@dataclass(frozen=True)
class FlowStatsRequest:
    """Per-flow match counters of one table (active bank)."""

    table_id: int
    xid: int = 0


@dataclass(frozen=True)
class FlowStatsReply:
    """``flows`` = [(slot, matches)] for every installed flow."""

    table_id: int
    flows: tuple[tuple[int, int], ...]
    xid: int = 0


@dataclass(frozen=True)
class TableStatsRequest:
    xid: int = 0


@dataclass(frozen=True)
class TableStatsReply:
    """``tables`` = [(table_id, active_flows, matches, misses)]."""

    tables: tuple[tuple[int, int, int, int], ...]
    xid: int = 0


@dataclass(frozen=True)
class PacketIn:
    """Data-plane packet punted to the controller."""

    frame: bytes
    in_port_bits: int
    reason: str = "table_miss"
    xid: int = 0
