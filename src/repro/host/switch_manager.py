"""Switch management application.

Reads the learning switch's state over its register interface — counter
registers and the MAC table — and exposes the operations a switch CLI
offers.  Deliberately built *only* on the AXI4-Lite window plus the
shared CAM handle, the way the real management tools work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.packet.addresses import MacAddr
from repro.projects.base import STATS_REG_BASE
from repro.projects.reference_switch import ReferenceSwitch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.host.driver import NetFpgaDriver
    from repro.resilience.control import ControlPlane


class SwitchManager:
    """CLI-style operations against a :class:`ReferenceSwitch`.

    With a :class:`~repro.resilience.control.ControlPlane` attached,
    static entries write *through* the desired-state store, so the
    auditor can restore them after a lost write or soft reset.  With a
    driver attached, side-effecting control registers (``table_clear``)
    go through the verified-write path instead of a blind posted write.
    """

    def __init__(
        self,
        switch: ReferenceSwitch,
        control: Optional["ControlPlane"] = None,
        driver: Optional["NetFpgaDriver"] = None,
    ):
        self.switch = switch
        self.control = control
        self.driver = driver
        self.restarts = 0
        self._wedged = False
        self._axil = switch.interconnect
        self._opl_regs = switch.opl.registers  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def lookup_stats(self) -> dict[str, int]:
        """Hit/miss counters, read over the bus like ``rwaxi`` would."""
        return {
            "hits": self._axil.read(self._opl_regs.offset_of("lut_hits")),
            "floods": self._axil.read(self._opl_regs.offset_of("lut_misses")),
            "table_entries": self._axil.read(self._opl_regs.offset_of("table_size")),
        }

    def port_counters(self) -> dict[str, int]:
        """Per-port packet counters from the stats block."""
        out = {}
        for name, offset in self.switch.stats.registers.registers():
            if name.endswith("_packets"):
                out[name] = self._axil.read(STATS_REG_BASE + offset)
        return out

    def show_mac_table(self) -> list[tuple[str, int]]:
        """``[(mac, port_bits)]`` — the forwarding database dump."""
        return [
            (str(MacAddr(key)), port_bits)
            for key, port_bits in self.switch.mac_table
        ]

    def clear_mac_table(self) -> None:
        """Flush the FDB through the register interface.

        ``table_clear`` is a command register: a lost posted write means
        a table the operator believes empty silently is not — so with a
        driver attached the write is verified (the table really emptied)
        and retried under backoff.
        """
        addr = self._opl_regs.offset_of("table_clear")
        if self.driver is not None:
            self.driver.reg_write_verified(
                addr, 1, verify=lambda: len(self.switch.mac_table) == 0
            )
        else:
            self._axil.write(addr, 1)
        if self.control is not None:
            for key in list(self.control.store.table("mac")):
                self.control.store.delete("mac", key)

    def add_static_entry(self, mac: str, port_index: int) -> bool:
        """Pin a MAC to a physical port (static FDB entry)."""
        key = MacAddr.parse(mac).value
        port_bits = 1 << (2 * port_index)
        if self.control is not None:
            return self.control.mutate("mac", key, port_bits)
        return self.switch.mac_table.insert(key, port_bits)

    # ------------------------------------------------------------------
    # Supervision surface
    # ------------------------------------------------------------------
    def heartbeat(self) -> bool:
        """Health probe: a register read must succeed and we must not be
        wedged.  An injected MMIO fault raises here, which the
        supervisor counts as a failed heartbeat."""
        if self._wedged:
            return False
        self._axil.read(self._opl_regs.offset_of("lut_hits"))
        return True

    def wedge(self) -> None:
        """Mark the manager wedged (its device handles went stale)."""
        self._wedged = True

    def restart(self) -> None:
        """Re-resolve device handles — the supervisor's restart action."""
        self._axil = self.switch.interconnect
        self._opl_regs = self.switch.opl.registers  # type: ignore[attr-defined]
        self._wedged = False
        self.restarts += 1
