"""Switch management application.

Reads the learning switch's state over its register interface — counter
registers and the MAC table — and exposes the operations a switch CLI
offers.  Deliberately built *only* on the AXI4-Lite window plus the
shared CAM handle, the way the real management tools work.
"""

from __future__ import annotations

from repro.packet.addresses import MacAddr
from repro.projects.base import STATS_REG_BASE
from repro.projects.reference_switch import ReferenceSwitch


class SwitchManager:
    """CLI-style operations against a :class:`ReferenceSwitch`."""

    def __init__(self, switch: ReferenceSwitch):
        self.switch = switch
        self._axil = switch.interconnect
        self._opl_regs = switch.opl.registers  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def lookup_stats(self) -> dict[str, int]:
        """Hit/miss counters, read over the bus like ``rwaxi`` would."""
        return {
            "hits": self._axil.read(self._opl_regs.offset_of("lut_hits")),
            "floods": self._axil.read(self._opl_regs.offset_of("lut_misses")),
            "table_entries": self._axil.read(self._opl_regs.offset_of("table_size")),
        }

    def port_counters(self) -> dict[str, int]:
        """Per-port packet counters from the stats block."""
        out = {}
        for name, offset in self.switch.stats.registers.registers():
            if name.endswith("_packets"):
                out[name] = self._axil.read(STATS_REG_BASE + offset)
        return out

    def show_mac_table(self) -> list[tuple[str, int]]:
        """``[(mac, port_bits)]`` — the forwarding database dump."""
        return [
            (str(MacAddr(key)), port_bits)
            for key, port_bits in self.switch.mac_table
        ]

    def clear_mac_table(self) -> None:
        """Flush the FDB through the register interface."""
        self._axil.write(self._opl_regs.offset_of("table_clear"), 1)

    def add_static_entry(self, mac: str, port_index: int) -> bool:
        """Pin a MAC to a physical port (static FDB entry)."""
        return self.switch.mac_table.insert(
            MacAddr.parse(mac).value, 1 << (2 * port_index)
        )
