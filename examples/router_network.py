#!/usr/bin/env python
"""The reference IPv4 router with its software slow path.

Demonstrates the full hardware/software split of the reference router
project: the data plane forwards in the pipeline, while ARP resolution,
ICMP echo and TTL expiry are punted to the CPU and handled by
:class:`~repro.host.router_manager.RouterManager` — then re-injected
through the DMA path, all inside one unified-harness run.

Topology (the default demo tables):

    host A 10.0.0.9 ── nf0 [10.0.0.1] ROUTER nf1 [10.0.1.1] ── host B 10.0.1.2
"""

from repro.host.router_manager import RouterManager
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.packet.generator import make_arp_request, make_udp_frame
from repro.packet.icmp import IcmpPacket
from repro.packet.ipv4 import IPPROTO_ICMP, Ipv4Packet
from repro.projects.base import PortRef
from repro.projects.reference_router import ReferenceRouter
from repro.testenv.harness import Stimulus, run_sim

HOST_A_MAC = MacAddr.parse("02:aa:00:00:00:01")
HOST_A_IP = Ipv4Addr.parse("10.0.0.9")
HOST_B_MAC = MacAddr.parse("02:bb:00:00:00:02")
HOST_B_IP = Ipv4Addr.parse("10.0.1.2")


def main() -> None:
    router = ReferenceRouter()
    manager = RouterManager(router.tables)

    # Host A resolves its gateway, pings it, then sends data to host B.
    # Host B's MAC is *not* pre-populated: the router must ARP for it.
    manager.add_arp_entry(str(HOST_A_IP), str(HOST_A_MAC))

    gw0 = router.tables.port_ips[0]
    arp_req = make_arp_request(HOST_A_MAC, HOST_A_IP, gw0).pack()

    ping = EthernetFrame(
        router.tables.port_macs[0],
        HOST_A_MAC,
        ETHERTYPE_IPV4,
        Ipv4Packet(
            HOST_A_IP, gw0, IPPROTO_ICMP,
            IcmpPacket.echo_request(ident=7, seq=1, payload=b"netfpga!").pack(),
        ).pack(),
    ).pack()

    data = make_udp_frame(
        HOST_A_MAC, router.tables.port_macs[0], HOST_A_IP, HOST_B_IP, size=200, ttl=32
    ).pack()

    # Host B answers the router's ARP request — modelled by pre-answering
    # into a second round: we inject host B's ARP reply after the data
    # packet so the parked frame gets released.
    from repro.packet.arp import ARP_OP_REPLY, ArpPacket
    from repro.packet.ethernet import ETHERTYPE_ARP

    arp_reply_b = EthernetFrame(
        router.tables.port_macs[1],
        HOST_B_MAC,
        ETHERTYPE_ARP,
        ArpPacket(
            op=ARP_OP_REPLY,
            sender_mac=HOST_B_MAC,
            sender_ip=HOST_B_IP,
            target_mac=router.tables.port_macs[1],
            target_ip=router.tables.port_ips[1],
        ).pack(),
    ).pack()

    stimuli = [
        Stimulus(PortRef("phys", 0), arp_req),
        Stimulus(PortRef("phys", 0), ping),
        Stimulus(PortRef("phys", 0), data),
        Stimulus(PortRef("phys", 1), arp_reply_b),
    ]

    print("Running router + software slow path in the simulation kernel...")
    result = run_sim(router, stimuli, cpu_handler=manager.handle_cpu_packet)
    print(f"  {result.cycles} cycles, {result.cpu_rounds} CPU round(s)\n")

    print("Traffic seen back at host A (nf0):")
    for frame_bytes in result.at(PortRef("phys", 0)):
        frame = EthernetFrame.parse(frame_bytes)
        kind = {0x0806: "ARP", 0x0800: "IPv4"}.get(frame.ethertype, hex(frame.ethertype))
        print(f"  {kind:5s} {frame.src} -> {frame.dst} ({len(frame_bytes)}B)")

    print("Traffic delivered towards host B (nf1):")
    for frame_bytes in result.at(PortRef("phys", 1)):
        frame = EthernetFrame.parse(frame_bytes)
        kind = {0x0806: "ARP", 0x0800: "IPv4"}.get(frame.ethertype, hex(frame.ethertype))
        detail = ""
        if frame.ethertype == ETHERTYPE_IPV4:
            packet = Ipv4Packet.parse(frame.payload)
            detail = f" ip {packet.src}->{packet.dst} ttl={packet.ttl}"
        print(f"  {kind:5s} {frame.src} -> {frame.dst}{detail}")

    print("\nSlow-path counters:", dict(manager.counters))
    print("Hardware counters  :", router.opl.counters)
    print("\nRouting table:")
    for route in manager.list_routes():
        print(f"  {route}")


if __name__ == "__main__":
    main()
