#!/usr/bin/env python
"""Rapid prototyping: the paper's §3 modularity story, executed.

Two researcher personas from the paper:

1. "a researcher may choose to explore aspects of hardware-based
   scheduling, and thus add a new scheduling module to the existing
   reference router design" — we swap the router's output-queue
   scheduler between FIFO, strict priority and DRR.  *Nothing else in
   the project changes*, and the traffic outcome shows each policy's
   signature.

2. A researcher adds a brand-new module to the pipeline — here a
   trivially small "packet tracer" core written inline below — without
   touching any existing block: the blocks compose over the standard
   AXI4-Stream interfaces.
"""

from repro.core.axis import AxiStreamChannel, StreamPacket
from repro.core.module import Module, Resources
from repro.cores.output_queues import QueueConfig, classify_by_dscp
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame
from repro.projects.base import PortRef, ReferencePipeline
from repro.cores.lookups import LearningSwitchLookup
from repro.projects.reference_router import ReferenceRouter, default_router_tables
from repro.cores.router_lookup import RouterLookup
from repro.testenv.harness import Stimulus, run_sim


# ----------------------------------------------------------------------
# Persona 1: swap the scheduler, touch nothing else
# ----------------------------------------------------------------------
def make_router_with_scheduler(scheduler: str) -> ReferenceRouter:
    """The one-line change: same router, different queueing discipline."""
    tables = default_router_tables()
    tables.add_arp(Ipv4Addr.parse("10.0.1.2"), MacAddr(0x02_BB_00_00_00_02))
    router = ReferenceRouter.__new__(ReferenceRouter)
    router.tables = tables
    config = (
        QueueConfig()
        if scheduler == "fifo"
        else QueueConfig(classes=4, capacity_bytes=16 * 1024, scheduler=scheduler)
    )
    ReferencePipeline.__init__(
        router,
        f"router_{scheduler}",
        lambda n, s, m: RouterLookup(n, s, m, tables),
        config,
        classify=None if scheduler == "fifo" else classify_by_dscp(4),
    )
    return router


def traffic_mix() -> list[Stimulus]:
    """Two ingress ports converge on one egress: congestion at nf1.

    An EF-marked (DSCP 46) small flow enters nf0 while a best-effort
    bulk flow enters nf2; both route to nf1, so the egress queue backs
    up and the scheduler's policy becomes visible in departure order.
    """
    tables = default_router_tables()
    stimuli = []
    for i in range(12):
        gold = make_udp_frame(
            MacAddr(0x02_AA_00_00_00_01), tables.port_macs[0],
            Ipv4Addr.parse("10.0.0.9"), Ipv4Addr.parse("10.0.1.2"),
            size=96, ttl=16,
        )
        bulk = make_udp_frame(
            MacAddr(0x02_AA_00_00_00_03), tables.port_macs[2],
            Ipv4Addr.parse("10.0.2.7"), Ipv4Addr.parse("10.0.1.2"),
            size=1024, ttl=16,
        )
        # Mark the small flow EF (DSCP 46); the bulk flow stays DSCP 0.
        gold_ip = bytearray(gold.pack())
        gold_ip[15] = 46 << 2  # IP TOS byte (offset 14+1)
        _fix_ip_checksum(gold_ip)
        stimuli.append(Stimulus(PortRef("phys", 0), bytes(gold_ip)))
        stimuli.append(Stimulus(PortRef("phys", 2), bulk.pack()))
    return stimuli


def _fix_ip_checksum(frame: bytearray) -> None:
    from repro.packet.checksum import internet_checksum

    frame[24:26] = b"\x00\x00"
    frame[24:26] = internet_checksum(bytes(frame[14:34])).to_bytes(2, "big")


def persona_1() -> None:
    print("Persona 1: swapping the router's scheduler module")
    print(f"{'scheduler':10s} {'small-flow mean pos':>20s} {'large-flow mean pos':>20s}")
    for scheduler in ("fifo", "strict", "drr"):
        router = make_router_with_scheduler(scheduler)
        # Pace the egress sinks at ~1/5 beat rate: the 10G MAC drain on
        # the 51 Gb/s internal pipeline.  Congestion now forms at nf1.
        result = run_sim(router, traffic_mix(), egress_pacing=lambda c: c % 5 != 0)
        out = result.at(PortRef("phys", 1))
        small_pos = [i for i, f in enumerate(out) if len(f) < 200]
        large_pos = [i for i, f in enumerate(out) if len(f) >= 200]
        mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")
        print(f"{scheduler:10s} {mean(small_pos):20.1f} {mean(large_pos):20.1f}")
    print("  -> strict priority pulls the EF flow ahead; FIFO keeps arrival order.\n")


# ----------------------------------------------------------------------
# Persona 2: add a new module without touching existing ones
# ----------------------------------------------------------------------
class PacketTracer(Module):
    """A researcher's new core: logs (cycle, length) per packet in flight.

    Nothing more than the two standard channel interfaces and ~50 lines —
    the point is what it does *not* require: no changes to the arbiter,
    lookup, queues, or software.
    """

    def __init__(self, name: str, s_axis: AxiStreamChannel, m_axis: AxiStreamChannel):
        super().__init__(name)
        self.s_axis = s_axis
        self.m_axis = m_axis
        self.log: list[tuple[int, int]] = []
        self._cycle = 0
        self._bytes = 0

    def comb(self) -> None:
        self.s_axis.set_ready(bool(self.m_axis.tready))
        self.m_axis.drive(self.s_axis.beat if bool(self.s_axis.tvalid) else None)

    def tick(self) -> None:
        if self.m_axis.fire:
            beat = self.m_axis.beat
            self._bytes += len(beat.data)
            if beat.last:
                self.log.append((self._cycle, self._bytes))
                self._bytes = 0
        self._cycle += 1

    def resources(self) -> Resources:
        return Resources(luts=90, ffs=110)


class TracedSwitch(ReferencePipeline):
    """The reference switch with the tracer spliced after the lookup."""

    def __init__(self):
        def make_opl(name, s_axis, m_axis):
            # Splice: lookup -> tracer -> (original output channel).
            inner = AxiStreamChannel(f"{name}.traced")
            lookup = LearningSwitchLookup(name, s_axis, inner)
            self.tracer = PacketTracer(f"{name}.tracer", inner, m_axis)
            lookup.submodule(self.tracer)
            return lookup

        super().__init__("traced_switch", make_opl)


def persona_2() -> None:
    print("Persona 2: splicing a new module into the reference switch")
    switch = TracedSwitch()
    stimuli = [
        Stimulus(
            PortRef("phys", i % 4),
            make_udp_frame(
                MacAddr(0x02_00_00_00_00_20 + i), MacAddr(0x02_00_00_00_00_30 + i),
                Ipv4Addr(0x0A000000 + i), Ipv4Addr(0x0A000100 + i),
                size=64 + 32 * i,
            ).pack(),
        )
        for i in range(6)
    ]
    run_sim(switch, stimuli)
    print("  tracer log (cycle, bytes):", switch.tracer.log)
    print("  -> a new research module, zero changes to the reference blocks.")


if __name__ == "__main__":
    persona_1()
    persona_2()
