#!/usr/bin/env python
"""Quickstart: run a reference project out of the box (§3, first claim).

"First, NetFPGA offers ready-made reference and contributed projects,
providing full implementation and an executable application.  The user
can run these projects, with no further development or modification
required."

This script instantiates the reference learning switch, pushes traffic
through the cycle-accurate pipeline, and reads the results back the way
a NetFPGA user would: through the management application's register
reads and the board's utilization report.
"""

from repro.board.fpga import report_for_design
from repro.host.switch_manager import SwitchManager
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame
from repro.projects.base import PortRef
from repro.projects.reference_switch import ReferenceSwitch
from repro.testenv.harness import Stimulus, run_sim


def main() -> None:
    switch = ReferenceSwitch()

    # Four hosts, one per port.
    macs = [MacAddr.parse(f"02:00:00:00:00:0{i + 1}") for i in range(4)]
    ips = [Ipv4Addr.parse(f"192.168.0.{i + 1}") for i in range(4)]

    def frame(src: int, dst: int) -> bytes:
        return make_udp_frame(macs[src], macs[dst], ips[src], ips[dst], size=128).pack()

    # Every host talks to its neighbour; the first packet of each pair
    # floods (unknown destination), the reverse traffic is unicast.
    stimuli = []
    for src, dst in [(0, 1), (1, 0), (2, 3), (3, 2), (0, 1), (2, 3)]:
        stimuli.append(Stimulus(PortRef("phys", src), frame(src, dst)))

    print("Running the reference switch in the simulation kernel...")
    result = run_sim(switch, stimuli)
    print(f"  completed in {result.cycles} cycles "
          f"({result.cycles * 5} ns of datapath time)")
    for port in sorted(result.outputs, key=str):
        if result.outputs[port]:
            print(f"  {port}: received {len(result.outputs[port])} packets")

    # The management application's view, over the register interface.
    manager = SwitchManager(switch)
    print("\nSwitch state (read via AXI4-Lite, like `rwaxi`):")
    print(f"  lookup stats : {manager.lookup_stats()}")
    print("  MAC table    :")
    for mac, port_bits in manager.show_mac_table():
        print(f"    {mac} -> port_bits {port_bits:#04x}")

    # The synthesis-style utilization report (claim C4).
    print("\n" + report_for_design(switch).render())


if __name__ == "__main__":
    main()
