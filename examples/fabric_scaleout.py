#!/usr/bin/env python
"""Fabric scale-out: a datacenter workload sharded across processes.

§1's pitch is evaluation "comparable to the subsystems of the most
massive datacenter networks" — which needs two things a single board
never does: real multipath topologies and workloads with thousands of
concurrent flows.  This example builds the k=4 fat-tree (20 switches,
16 hosts), runs a seeded incast workload over it under a link-fault
plan, then re-runs the same workload sharded 4 ways across a process
pool and shows the two delivery fingerprints are byte-identical: the
parallelism is free of observable effect.

Run it::

    PYTHONPATH=src python examples/fabric_scaleout.py
"""

from repro.fabric import (
    WorkloadSpec,
    get_topology,
    get_workload,
    run_sharded,
)
from repro.faults import get_plan


def main() -> None:
    spec = get_topology("fat-tree-4")
    topology = spec.build()
    print(topology.describe())
    print(f"learning phase installed {topology.learn()} static FDB entries\n")

    # An incast wave under a lossy plan: the worst-case datacenter
    # pattern, with wire drops and link flaps drawn deterministically.
    workload = get_workload("incast-64").with_seed(42)
    plan = get_plan("flaky-fabric", seed=42)

    single = run_sharded(spec, workload, plan, shards=1)
    print(f"single process: {single.attempted} packets attempted, "
          f"{single.delivered} delivered, {single.lost} lost "
          f"({sum(r.lost_flap for r in single.records)} to link flaps), "
          f"{single.packets_per_second:.0f} pkts/s")
    print(f"  fingerprint {single.fingerprint()}")

    sharded = run_sharded(spec, workload, plan, shards=4)
    print(f"4-way sharded: {sharded.attempted} packets attempted, "
          f"{sharded.delivered} delivered, "
          f"{sharded.packets_per_second:.0f} pkts/s")
    print(f"  fingerprint {sharded.fingerprint()}")

    assert single.fingerprint() == sharded.fingerprint()
    print("\nfingerprints identical: sharding changed the wall clock, "
          "not the result")

    # Scale the flow count up: same contract, bigger run.
    big = WorkloadSpec("uniform", flows=1000, seed=7,
                       packets_per_flow=4, window_ticks=1024)
    report = run_sharded(spec, big, shards=4)
    print(f"\n1000-flow uniform sweep: {report.attempted} packets, "
          f"hops histogram {report.hops_hist}, healthy={report.healthy()}")


if __name__ == "__main__":
    main()
