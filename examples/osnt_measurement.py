#!/usr/bin/env python
"""OSNT: open-source network test and measurement (reference [1]).

"A different class of researchers are interested in test and
measurement, and do not wish to develop new devices..." (§3).  This
example is that workflow: an OSNT generator replays a synthetic trace at
several configured rates towards a device under test (here: a wire with
2 µs of propagation — a long fibre spool), and an OSNT monitor captures
with timestamps, reporting achieved rate, latency and loss, then writes
the capture out as a standard pcap file.
"""

import os
import tempfile

from repro.board.mac import EthernetMacModel, Wire
from repro.core.eventsim import EventSimulator
from repro.packet.generator import TrafficSpec
from repro.packet.pcap import read_pcap, write_pcap
from repro.projects.osnt import GeneratorConfig, OsntGenerator, OsntMonitor
from repro.utils.units import GBPS, format_rate


def measure(rate_bps: float | None, frames: int = 400) -> None:
    sim = EventSimulator()
    tx_mac = EthernetMacModel(sim, "osnt_tx", rate_bps=10 * GBPS)
    rx_mac = EthernetMacModel(sim, "osnt_rx", rate_bps=10 * GBPS)
    Wire(sim, tx_mac, rx_mac, propagation_delay_ns=2_000.0)  # ~400 m fibre

    generator = OsntGenerator(sim, tx_mac)
    monitor = OsntMonitor(rx_mac, snap_bytes=None)

    spec = TrafficSpec.fixed(size=512, flows=16, seed=42)
    generator.load_frames([f.pack() for f in spec.frames(frames)])
    generator.start(GeneratorConfig(rate_bps=rate_bps))
    sim.run_until_idle()

    label = "line rate" if rate_bps is None else format_rate(rate_bps)
    lat = monitor.latency_summary()
    print(f"  configured {label:>12s}: "
          f"achieved {format_rate(monitor.mean_rate_bps() * (512 + 20) / 512):>12s}  "
          f"latency mean {lat['mean']:7.1f} ns "
          f"(min {lat['min']:.1f}, max {lat['max']:.1f})  "
          f"loss {monitor.stats.lost}")
    return monitor


def main() -> None:
    print("OSNT rate sweep (512B frames, 10G link, 2 us wire):")
    monitor = None
    for rate in (1 * GBPS, 2.5 * GBPS, 5 * GBPS, 9 * GBPS, None):
        monitor = measure(rate)

    # Export the last capture as pcap and read it back.
    path = os.path.join(tempfile.gettempdir(), "osnt_capture.pcap")
    count = write_pcap(path, monitor.records)
    reread = read_pcap(path)
    print(f"\nWrote {count} captured frames to {path} "
          f"(round-trip read back: {len(reread)} records, "
          f"first stamp {reread[0].timestamp_ns} ns)")


if __name__ == "__main__":
    main()
