#!/usr/bin/env python
"""A multi-device network built from NetFPGA projects (§1 motivation).

"the wider community requires accessible evaluation, experimentation and
demonstration environments with specification comparable to the
subsystems of the most massive datacenter networks" — evaluation means
*networks* of devices.  This example wires five project instances into a
small two-subnet fabric and runs a conversation across it:

    hostA ── s1 ══ r1 ══ s2 ── hostB        (10.0.0/24 | 10.0.1/24)
             │                  │
           hostC              hostD

Every device is an unmodified reference project; the router runs its
real software slow path (ARP resolution on demand).
"""

from repro.host.router_manager import RouterManager
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.arp import ARP_OP_REPLY, ArpPacket
from repro.packet.ethernet import ETHERTYPE_ARP, EthernetFrame
from repro.packet.generator import make_udp_frame
from repro.packet.ipv4 import Ipv4Packet
from repro.projects.reference_router import ReferenceRouter
from repro.projects.reference_switch import ReferenceSwitch
from repro.testenv.topology import Network

HOST_A = (MacAddr.parse("02:aa:00:00:00:01"), Ipv4Addr.parse("10.0.0.9"))
HOST_B = (MacAddr.parse("02:bb:00:00:00:02"), Ipv4Addr.parse("10.0.1.2"))


def build() -> tuple[Network, ReferenceRouter, RouterManager]:
    net = Network()
    net.add_device("s1", ReferenceSwitch())
    router = ReferenceRouter()
    manager = RouterManager(router.tables)
    net.add_device("r1", router, cpu_handler=manager.handle_cpu_packet)
    net.add_device("s2", ReferenceSwitch())
    net.link("s1", 3, "r1", 0)
    net.link("r1", 1, "s2", 0)
    return net, router, manager


def main() -> None:
    net, router, manager = build()
    print(net.describe())

    # The router knows its hosts via ARP (host A static; host B will be
    # resolved on demand through the fabric).
    manager.add_arp_entry(str(HOST_A[1]), str(HOST_A[0]))

    print("\n1. host A sends to host B (other subnet, ARP cold):")
    data = make_udp_frame(
        HOST_A[0], router.tables.port_macs[0], HOST_A[1], HOST_B[1],
        size=200, ttl=12,
    ).pack()
    deliveries = net.inject("s1", 0, data)
    for delivery in deliveries:
        frame = EthernetFrame.parse(delivery.frame)
        kind = {0x806: "ARP", 0x800: "IPv4"}.get(frame.ethertype, "?")
        print(f"   {delivery.at.device}.{delivery.at.port} <- {kind} "
              f"({delivery.hops} hops) dst={frame.dst}")
    print(f"   router punted for ARP: {manager.counters.get('arp_requested', 0)} request(s)")

    print("\n2. host B answers the router's ARP; the parked packet releases:")
    arp_reply = EthernetFrame(
        router.tables.port_macs[1], HOST_B[0], ETHERTYPE_ARP,
        ArpPacket(ARP_OP_REPLY, HOST_B[0], HOST_B[1],
                  router.tables.port_macs[1], router.tables.port_ips[1]).pack(),
    ).pack()
    deliveries = net.inject("s2", 1, arp_reply)
    for delivery in deliveries:
        frame = EthernetFrame.parse(delivery.frame)
        if frame.ethertype == 0x800:
            packet = Ipv4Packet.parse(frame.payload)
            print(f"   {delivery.at.device}.{delivery.at.port} <- data "
                  f"{packet.src}->{packet.dst} ttl={packet.ttl} "
                  f"dst_mac={frame.dst}")

    print("\n3. steady state: the same flow again, all hardware now:")
    manager.counters.clear()
    deliveries = net.inject("s1", 0, data)
    routed = [d for d in deliveries if d.at.device == "s2"]
    print(f"   delivered at s2 edge ports: "
          f"{[str(d.at.port) for d in routed]}")
    print(f"   software involvement this time: {dict(manager.counters) or 'none'}")
    print(f"\nfabric totals: {net.forwarded_hops} port-to-port hops, "
          f"{len(net.deliveries)} edge deliveries")


if __name__ == "__main__":
    main()
