#!/usr/bin/env python
"""Network security on NetFPGA (§1: the 1G-CML's stated niche).

A transparent firewall — assembled entirely from the platform's block
library — protecting a server segment:

* ACL: permit web traffic to the server, deny a blacklisted subnet,
  default-deny inbound;
* SYN-flood defence: automatic per-destination blocking when the bare-SYN
  rate trips the threshold, with legitimate established traffic passing
  throughout the attack.
"""

from repro.board.fpga import KINTEX7_325T, report_for_design
from repro.host.firewall_manager import FirewallManager
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.packet.ipv4 import Ipv4Packet
from repro.packet.tcp import FLAG_ACK, FLAG_SYN, TcpSegment
from repro.projects.base import PortRef
from repro.projects.firewall import FirewallProject, SynFloodDetector
from repro.testenv.harness import Stimulus, run_hw

SERVER_IP = Ipv4Addr.parse("192.168.1.10")
BAD_SUBNET = Ipv4Addr.parse("203.0.113.0")


def tcp(src_ip: str, dst: Ipv4Addr, dport: int, flags: int, sport: int = 40000) -> bytes:
    source = Ipv4Addr.parse(src_ip)
    seg = TcpSegment(sport, dport, flags=flags)
    packet = Ipv4Packet(source, dst, 6, seg.pack(source, dst))
    return EthernetFrame(
        MacAddr.parse("02:00:00:00:00:02"), MacAddr.parse("02:00:00:00:00:01"),
        ETHERTYPE_IPV4, packet.pack(),
    ).pack()


def main() -> None:
    firewall = FirewallProject(
        default_permit=False,
        detector=SynFloodDetector(threshold=20, window_packets=10_000),
    )
    manager = FirewallManager(firewall)
    # Classic ordered policy: block the bad subnet, allow web, deny rest.
    manager.deny(0, src_ip=BAD_SUBNET.value, src_prefix=24)
    manager.permit(1, proto=6, dst_ip=SERVER_IP.value, dport=80)
    manager.permit(2, proto=6, dst_ip=SERVER_IP.value, dport=443)
    print("Installed policy:")
    for line in manager.list_rules():
        print(f"  {line}")
    print("  [default] deny")

    print("\nPhase 1: normal traffic mix")
    stimuli = [
        Stimulus(PortRef("phys", 0), tcp("198.51.100.7", SERVER_IP, 80, FLAG_SYN)),
        Stimulus(PortRef("phys", 0), tcp("198.51.100.7", SERVER_IP, 443, FLAG_ACK)),
        Stimulus(PortRef("phys", 0), tcp("203.0.113.66", SERVER_IP, 80, FLAG_SYN)),  # bad net
        Stimulus(PortRef("phys", 0), tcp("198.51.100.7", SERVER_IP, 22, FLAG_SYN)),  # ssh: default deny
    ]
    result = run_hw(firewall, stimuli)
    print(f"  passed to server side: {len(result.at(PortRef('phys', 1)))} of 4")
    print(f"  stats: {manager.stats()}")

    print("\nPhase 2: SYN flood from a botnet (300 spoofed sources)")
    flood = [
        Stimulus(PortRef("phys", 0),
                 tcp(f"198.51.{i % 250}.{(i * 7) % 250 + 1}", SERVER_IP, 80,
                     FLAG_SYN, sport=1024 + i))
        for i in range(300)
    ]
    # A legitimate established connection keeps talking during the attack.
    flood[150] = Stimulus(
        PortRef("phys", 0), tcp("198.51.100.7", SERVER_IP, 80, FLAG_ACK)
    )
    result = run_hw(firewall, flood)
    stats = manager.stats()
    print(f"  SYNs dropped by the detector : {stats['syn_flood_dropped']}")
    print(f"  blocked destinations         : {manager.blocked_destinations()}")
    print(f"  delivered during the attack  : "
          f"{len(result.at(PortRef('phys', 1)))} "
          f"(threshold leak + the established flow)")

    print("\nFit on the 1G-CML's Kintex-7 (the board §1 recommends for this):")
    print(report_for_design(firewall, KINTEX7_325T).render())


if __name__ == "__main__":
    main()
