#!/usr/bin/env python
"""Embedded management: the soft-core processor running real firmware.

§3: "The software portion contains embedded code (for a soft-core
processor), a driver and relevant applications."  This example is the
embedded-code path: assemble a management program, inspect its
disassembly, and run it *inside the FPGA* against a live reference
project's register map — the same registers host software reads over
PCIe, read here over the internal AXI4-Lite bus.
"""

from repro.projects.base import PortRef
from repro.projects.reference_nic import ReferenceNic
from repro.soft import COUNTER_SUM, SoftCore, assemble, disassemble_program
from repro.soft.cpu import SCRATCH_BASE
from repro.testenv.harness import Stimulus, run_sim

from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame


def main() -> None:
    # 1. Put traffic through a reference NIC so the counters move.
    nic = ReferenceNic()
    stimuli = []
    for i in range(4):
        frame = make_udp_frame(
            MacAddr(0x02_00_00_00_00_10 + i), MacAddr(0x02_00_00_00_00_20 + i),
            Ipv4Addr(0x0A00_0000 + i), Ipv4Addr(0x0A00_0100 + i), size=128,
        ).pack()
        for _ in range(i + 1):  # 1,2,3,4 packets on ports 0..3
            stimuli.append(Stimulus(PortRef("phys", i), frame))
    result = run_sim(nic, stimuli)
    print(f"datapath: pushed {len(stimuli)} packets in {result.cycles} cycles")

    # 2. Assemble the management firmware and show its listing.
    image = assemble(COUNTER_SUM)
    print(f"\nfirmware: {len(image)} instructions")
    for line in disassemble_program(image)[:6]:
        print(f"  {line}")
    print("  ...")

    # 3. Run it on the soft core, attached to the project's own bus.
    cpu = SoftCore(nic.interconnect, image)
    retired = cpu.run()
    total = cpu._load(SCRATCH_BASE)
    print(f"\nsoft core: retired {retired} instructions, "
          f"summed rx counters = {total} packets")
    assert total == len(stimuli)

    # 4. Cross-check against the host-software view of the same registers.
    host_view = sum(
        nic.stats.packets[f"rx_{p}"] for p in nic.ports
    )
    print(f"host view of the same registers  = {host_view} packets")
    print("embedded and host software agree." if total == host_view else "MISMATCH!")


if __name__ == "__main__":
    main()
