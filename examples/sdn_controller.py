#!/usr/bin/env python
"""Control-plane research on the BlueSwitch data plane (§3 scenario).

"an SDN researcher interested in the control plane and lacking any
hardware knowledge, can use the BlueSwitch OpenFlow switch project as
its data plane, and choose to write a control plane software application
to run on top of it."

Part 1 runs exactly that: a reactive learning controller as an OpenFlow
application (PacketIn → FlowMod → PacketOut), with zero knowledge of the
tables' hardware representation.

Part 2 shows why BlueSwitch exists: the same multi-table policy update
applied naively vs. transactionally under live traffic, counting packets
that matched neither the old nor the new configuration.
"""

from repro.core.metadata import phys_port_bit
from repro.host.openflow import Controller, DatapathAgent, LearningController
from repro.packet.addresses import Ipv4Addr, MacAddr
from repro.packet.generator import make_udp_frame
from repro.projects.blueswitch import (
    ActionGoto,
    ActionOutput,
    BlueSwitchPipeline,
    FlowEntry,
    FlowMatch,
    UpdateWrite,
    run_update_experiment,
)

MACS = [MacAddr(0x02_0F_00_00_00_00 + i) for i in range(4)]
IPS = [Ipv4Addr.parse(f"172.16.0.{i + 1}") for i in range(4)]


def frame(src: int, dst: int) -> bytes:
    return make_udp_frame(MACS[src], MACS[dst], IPS[src], IPS[dst], size=128).pack()


def part1_learning_controller() -> None:
    print("Part 1: reactive learning controller on BlueSwitch")
    agent = DatapathAgent(BlueSwitchPipeline(num_tables=1, slots_per_table=32))
    controller = LearningController(agent)

    # host0 -> host1: table miss, controller floods and learns host0.
    # host1 -> host0: still a miss for host1's location? No — controller
    # learned host0, so it installs a flow and forwards.
    conversation = [(0, 1), (1, 0), (0, 1), (1, 0), (2, 0), (0, 2)]
    hw_forwarded = 0
    for src, dst in conversation:
        out = agent.process_packet(frame(src, dst), phys_port_bit(src))
        if out:
            hw_forwarded += 1
    print(f"  packets fully handled in hardware : {hw_forwarded}")
    print(f"  controller floods (PacketOut)     : {controller.floods}")
    print(f"  flows installed                   : {controller.flows_installed}")
    print(f"  learned locations                 : "
          f"{ {str(MacAddr(m)): bits for m, bits in controller.mac_to_port.items()} }")


def build_policy_pipeline() -> BlueSwitchPipeline:
    """A 3-table policy: classify → filter → forward."""
    pipe = BlueSwitchPipeline(num_tables=3, slots_per_table=32)
    pipe.write_active(0, 0, FlowEntry(FlowMatch(eth_type=0x0800), (ActionGoto(1),)))
    pipe.write_active(1, 0, FlowEntry(
        FlowMatch(ip_dst=IPS[1].value), (ActionGoto(2),)))
    pipe.write_active(2, 0, FlowEntry(
        FlowMatch(ip_proto=17), (ActionOutput(phys_port_bit(1)),)))
    return pipe


def part2_consistent_update() -> None:
    print("\nPart 2: multi-table policy update under traffic")
    # New policy: dst host1 traffic shifts to port 3, and the filter
    # tightens — a classic two-table coupled change.
    plan = [
        UpdateWrite(1, 0, FlowEntry(
            FlowMatch(ip_dst=IPS[1].value), (ActionOutput(phys_port_bit(3)),))),
        UpdateWrite(2, 0, None),
    ]
    traffic = [(frame(0, 1), phys_port_bit(0))] * 400

    for mode in ("naive", "consistent"):
        report = run_update_experiment(
            build_policy_pipeline(), plan, traffic,
            mode=mode, stage_cycles=6, update_start=150,
        )
        print(f"  {mode:10s}: old={report.old_consistent:3d} "
              f"new={report.new_consistent:3d} "
              f"misforwarded={report.misforwarded:3d} "
              f"({report.misforward_rate:.1%}) over {report.update_cycles} "
              f"update cycle(s)")
    print("  -> BlueSwitch's atomic commit keeps every packet consistent.")


def main() -> None:
    part1_learning_controller()
    part2_consistent_update()


if __name__ == "__main__":
    main()
