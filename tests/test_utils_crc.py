"""CRC-32 correctness: known vectors plus the Ethernet residue property."""

from hypothesis import given, strategies as st

from repro.utils.crc import CRC32_INIT, crc32_ethernet, crc32_update


class TestKnownVectors:
    def test_check_string(self):
        # The canonical CRC-32 check value.
        assert crc32_ethernet(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32_ethernet(b"") == 0x00000000

    def test_single_zero_byte(self):
        assert crc32_ethernet(b"\x00") == 0xD202EF8D

    def test_matches_zlib(self):
        import zlib

        data = bytes(range(256))
        assert crc32_ethernet(data) == zlib.crc32(data)


class TestIncremental:
    def test_update_composes(self):
        data = b"the quick brown fox"
        split = 7
        state = crc32_update(CRC32_INIT, data[:split])
        state = crc32_update(state, data[split:])
        assert state ^ 0xFFFFFFFF == crc32_ethernet(data)

    @given(st.binary(max_size=128), st.binary(max_size=128))
    def test_update_composes_property(self, a, b):
        state = crc32_update(crc32_update(CRC32_INIT, a), b)
        assert state ^ 0xFFFFFFFF == crc32_ethernet(a + b)


class TestEthernetResidue:
    """Appending the FCS little-endian must verify at a receiver."""

    @given(st.binary(min_size=1, max_size=512))
    def test_receiver_check(self, frame):
        fcs = crc32_ethernet(frame)
        wire = frame + fcs.to_bytes(4, "little")
        body, received_fcs = wire[:-4], wire[-4:]
        assert crc32_ethernet(body).to_bytes(4, "little") == received_fcs

    @given(st.binary(min_size=4, max_size=256), st.integers(0, 2047))
    def test_bit_flip_detected(self, frame, flip_bit):
        flip_bit %= len(frame) * 8
        fcs = crc32_ethernet(frame)
        corrupted = bytearray(frame)
        corrupted[flip_bit // 8] ^= 1 << (flip_bit % 8)
        assert crc32_ethernet(bytes(corrupted)) != fcs
