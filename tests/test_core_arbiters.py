"""Arbitration primitives: round robin, strict priority, DRR."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arbiter import DeficitRoundRobin, RoundRobinArbiter, StrictPriorityArbiter


class TestRoundRobin:
    def test_rotates_after_grant(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([True, True, True]) == 0
        arb.advance(0)
        assert arb.grant([True, True, True]) == 1
        arb.advance(1)
        assert arb.grant([True, True, True]) == 2
        arb.advance(2)
        assert arb.grant([True, True, True]) == 0

    def test_skips_idle_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, False, True, False]) == 2

    def test_no_requests(self):
        arb = RoundRobinArbiter(2)
        assert arb.grant([False, False]) is None

    def test_grant_without_advance_is_stable(self):
        arb = RoundRobinArbiter(2)
        assert arb.grant([True, True]) == 0
        assert arb.grant([True, True]) == 0  # pure query, no state change

    def test_fairness_under_full_load(self):
        arb = RoundRobinArbiter(4)
        for _ in range(400):
            granted = arb.grant([True] * 4)
            arb.advance(granted)
        assert arb.grants == [100, 100, 100, 100]

    @given(st.lists(st.lists(st.booleans(), min_size=3, max_size=3), min_size=1, max_size=200))
    def test_work_conserving_property(self, request_rounds):
        """Whenever anyone requests, someone is granted."""
        arb = RoundRobinArbiter(3)
        for requests in request_rounds:
            granted = arb.grant(requests)
            if any(requests):
                assert granted is not None and requests[granted]
                arb.advance(granted)
            else:
                assert granted is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)
        arb = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arb.grant([True])
        with pytest.raises(ValueError):
            arb.advance(5)


class TestStrictPriority:
    def test_always_lowest_index(self):
        arb = StrictPriorityArbiter(3)
        for _ in range(10):
            granted = arb.grant([True, True, True])
            assert granted == 0
            arb.advance(granted)

    def test_starvation_by_design(self):
        arb = StrictPriorityArbiter(2)
        grants = []
        for _ in range(50):
            granted = arb.grant([True, True])
            grants.append(granted)
            arb.advance(granted)
        assert all(g == 0 for g in grants)

    def test_lower_priorities_served_when_high_idle(self):
        arb = StrictPriorityArbiter(3)
        assert arb.grant([False, False, True]) == 2


class TestDeficitRoundRobin:
    def test_equal_packets_equal_service(self):
        drr = DeficitRoundRobin(2, quantum_bytes=100)
        for _ in range(100):
            drr.next_queue([100, 100])
        assert abs(drr.grants[0] - drr.grants[1]) <= 1

    def test_byte_fairness_with_mixed_sizes(self):
        # Queue 0 sends 100B packets, queue 1 sends 1000B packets.
        # Byte-fair service means ~10x as many small packets.
        drr = DeficitRoundRobin(2, quantum_bytes=500)
        for _ in range(550):
            drr.next_queue([100, 1000])
        bytes0 = drr.grants[0] * 100
        bytes1 = drr.grants[1] * 1000
        assert bytes0 == pytest.approx(bytes1, rel=0.1)

    def test_jumbo_larger_than_quantum_still_served(self):
        drr = DeficitRoundRobin(2, quantum_bytes=1500)
        served = drr.next_queue([9000, None])
        assert served == 0  # accumulates rounds, never reports starvation

    def test_idle_resets_deficit(self):
        drr = DeficitRoundRobin(2, quantum_bytes=100)
        drr.next_queue([100, None])
        assert drr.next_queue([None, None]) is None
        assert drr.deficit == [0, 0]

    def test_empty_queue_skipped(self):
        drr = DeficitRoundRobin(3, quantum_bytes=100)
        grants = [drr.next_queue([None, 50, None]) for _ in range(5)]
        assert grants == [1] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(0)
        with pytest.raises(ValueError):
            DeficitRoundRobin(2, quantum_bytes=0)
        drr = DeficitRoundRobin(2)
        with pytest.raises(ValueError):
            drr.next_queue([100])

    @settings(max_examples=50)
    @given(
        sizes=st.lists(
            st.tuples(st.integers(60, 1500), st.integers(60, 1500)),
            min_size=20,
            max_size=100,
        )
    )
    def test_served_queue_is_nonempty_property(self, sizes):
        drr = DeficitRoundRobin(2, quantum_bytes=1500)
        for a, b in sizes:
            served = drr.next_queue([a, b])
            assert served in (0, 1)
