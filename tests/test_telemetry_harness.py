"""Telemetry through the unified test environment.

The acceptance bar for S19: ``run_test(test, mode, telemetry=True)``
returns identical cycle-independent counter snapshots for the ``sim``
and ``hw`` targets on the reference switch, and the trace a session
collects exports as valid Chrome ``trace_event`` JSON.
"""

import json

import pytest

from repro.projects.base import ALL_PORTS, PortRef, TELEMETRY_REG_BASE
from repro.projects.reference_switch import ReferenceSwitch
from repro.telemetry import TelemetrySession
from repro.testenv.harness import NetFpgaTest, Stimulus, run_test

from tests.conftest import udp_frame

pytestmark = pytest.mark.telemetry


def _switch_test() -> NetFpgaTest:
    """Learn-then-forward on the reference switch (the E11 workload)."""
    flood = udp_frame(src=1, dst=2)
    reply = udp_frame(src=2, dst=1)
    return NetFpgaTest(
        name="switch_telemetry",
        project_factory=ReferenceSwitch,
        stimuli=[
            Stimulus(PortRef("phys", 0), flood),
            Stimulus(PortRef("phys", 2), reply),
        ],
        expected={
            PortRef("phys", 0): [reply],
            PortRef("phys", 1): [flood],
            PortRef("phys", 2): [flood],
            PortRef("phys", 3): [flood],
        },
    )


class TestRunTestTelemetry:
    def test_snapshot_attached_only_when_requested(self):
        assert run_test(_switch_test(), "sim").telemetry is None
        result = run_test(_switch_test(), "sim", telemetry=True)
        assert result.telemetry is not None
        assert result.telemetry.mode == "sim"

    def test_sim_hw_parity_on_reference_switch(self):
        sim = run_test(_switch_test(), "sim", telemetry=True)
        hw = run_test(_switch_test(), "hw", telemetry=True)
        assert sim.telemetry.cycle_independent() == hw.telemetry.cycle_independent()
        sim.telemetry.assert_parity(hw.telemetry)  # and the helper agrees

    def test_parity_counts_are_the_checked_traffic(self):
        result = run_test(_switch_test(), "sim", telemetry=True)
        parity = result.telemetry.parity
        assert parity['port_packets_in{port="nf0"}'] == 1
        assert parity['port_packets_in{port="nf2"}'] == 1
        for egress in ("nf1", "nf3"):
            assert parity[f'port_packets_out{{port="{egress}"}}'] == 1
        frame_len = len(udp_frame(src=1, dst=2))
        assert parity['port_bytes_in{port="nf0"}'] == frame_len

    def test_divergent_snapshots_fail_loudly(self):
        sim = run_test(_switch_test(), "sim", telemetry=True)
        hw = run_test(_switch_test(), "hw", telemetry=True)
        hw.telemetry.parity['port_packets_in{port="nf0"}'] = 999
        with pytest.raises(AssertionError, match="port_packets_in"):
            sim.telemetry.assert_parity(hw.telemetry)

    def test_kernel_series_marked_cycle_dependent(self):
        result = run_test(_switch_test(), "sim", telemetry=True)
        snapshot = result.telemetry
        assert any(s.startswith("chan_packets_total") for s in snapshot.counters)
        assert not any(s.startswith("chan_") for s in snapshot.parity)

    def test_mode_mismatched_session_rejected(self):
        with pytest.raises(ValueError):
            run_test(_switch_test(), "hw", telemetry=TelemetrySession("sim"))
        with pytest.raises(TypeError):
            run_test(_switch_test(), "sim", telemetry="yes")

    def test_faults_telemetry_compose(self):
        session = TelemetrySession("sim")
        result = run_test(
            _switch_test(), "sim", faults="oq-pressure", telemetry=session
        )
        assert result.fault_report is not None
        spikes = result.fault_report.counters.get("oq_spikes", 0)
        snap = result.telemetry
        assert snap.get('faults_injected_total{site="oq"}') == spikes


class TestTraceExport:
    @pytest.mark.parametrize("mode", ["sim", "hw"])
    def test_run_trace_is_valid_chrome_json(self, mode, tmp_path):
        session = TelemetrySession(mode)
        run_test(_switch_test(), mode, telemetry=session)
        path = tmp_path / f"trace_{mode}.json"
        session.trace.write_chrome(str(path))
        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        assert len(events) > 1
        for event in events:
            assert event["ph"] in ("M", "i", "C")
            assert isinstance(event["ts"], (int, float))
            assert event["pid"] == 0
        kinds = {e.get("cat") for e in events}
        assert "packet_in" in kinds
        assert "packet_out" in kinds


class TestRegisterWindow:
    def test_registry_mounts_behind_the_interconnect(self):
        session = TelemetrySession("sim")
        run_test(_switch_test(), "sim", telemetry=session)
        project = ReferenceSwitch()
        project.attach_telemetry_registers(session.registry)
        # Offsets are deterministic, so a freshly built block is a map
        # of the mounted one.
        offset = session.registry.register_file().offset_of(
            "port_packets_in_port_nf0"
        )
        assert project.interconnect.read(TELEMETRY_REG_BASE + offset) == 1

    def test_window_is_distinct_from_stats_and_recovery(self):
        from repro.projects.base import RECOVERY_REG_BASE, STATS_REG_BASE

        assert TELEMETRY_REG_BASE not in (STATS_REG_BASE, RECOVERY_REG_BASE)
        assert TELEMETRY_REG_BASE == 0x0003_0000
