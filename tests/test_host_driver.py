"""The host driver against the board DMA complex."""

import pytest

from repro.board.sume import NetFpgaSume
from repro.host.driver import BUF_SIZE, NetFpgaDriver

from tests.conftest import udp_frame


@pytest.fixture
def board_and_driver():
    board = NetFpgaSume()
    driver = NetFpgaDriver(board)
    return board, driver


class TestTransmit:
    def test_frames_reach_the_board(self, board_and_driver):
        board, driver = board_and_driver
        seen = []
        board.dma.tx_callback = lambda frame, port: seen.append((frame, port))
        frames = [(udp_frame(src=i + 1, size=256), i % 4) for i in range(8)]
        assert driver.transmit(frames) == 8
        board.sim.run_until_idle()
        assert seen == frames

    def test_batching_one_doorbell(self, board_and_driver):
        board, driver = board_and_driver
        board.dma.tx_callback = lambda f, p: None
        before = board.pcie.transactions
        driver.transmit([(udp_frame(size=128), 0)] * 16)
        board.sim.run_until_idle()
        # 1 doorbell + 1 descriptor fetch + 16 buffer reads.
        assert board.pcie.transactions - before == 18

    def test_ring_full_partial_send(self, board_and_driver):
        board, driver = board_and_driver
        entries = board.dma.tx_ring.entries
        frames = [(udp_frame(size=64), 0)] * (entries + 10)
        queued = driver.transmit(frames)
        assert queued == entries

    def test_oversize_frame_rejected(self, board_and_driver):
        _, driver = board_and_driver
        with pytest.raises(ValueError):
            driver.transmit([(b"\x00" * (BUF_SIZE + 1), 0)])

    def test_transmit_one(self, board_and_driver):
        board, driver = board_and_driver
        got = []
        board.dma.tx_callback = lambda f, p: got.append(p)
        assert driver.transmit_one(udp_frame(), port=3)
        board.sim.run_until_idle()
        assert got == [3]


class TestReceive:
    def test_poll_returns_frames_in_order(self, board_and_driver):
        board, driver = board_and_driver
        frames = [udp_frame(src=i + 1, size=200) for i in range(5)]
        for i, frame in enumerate(frames):
            assert board.dma.receive(frame, port=i % 4)
        board.sim.run_until_idle()
        received = driver.poll_receive()
        assert [f for f, _ in received] == frames
        assert [p for _, p in received] == [0, 1, 2, 3, 0]

    def test_poll_empty(self, board_and_driver):
        _, driver = board_and_driver
        assert driver.poll_receive() == []

    def test_buffers_recycled(self, board_and_driver):
        board, driver = board_and_driver
        entries = board.dma.rx_ring.entries
        # Push more frames than the ring has entries, polling in between.
        for wave in range(3):
            for _ in range(entries // 2):
                assert board.dma.receive(udp_frame(size=128))
            board.sim.run_until_idle()
            got = driver.poll_receive()
            assert len(got) == entries // 2
        assert driver.rx_received == 3 * (entries // 2)
        assert board.dma.rx_dropped_no_desc == 0

    def test_drop_when_host_stops_polling(self, board_and_driver):
        board, driver = board_and_driver
        entries = board.dma.rx_ring.entries
        for _ in range(entries + 50):
            board.dma.receive(udp_frame(size=64))
        board.sim.run_until_idle()
        assert board.dma.rx_dropped_no_desc == 50


class TestLoopback:
    def test_host_to_host_through_wire_echo(self, board_and_driver):
        """Driver TX → board → (wire echo) → board → driver RX."""
        board, driver = board_and_driver
        board.dma.tx_callback = lambda frame, port: board.dma.receive(frame, port)
        frames = [(udp_frame(src=i + 1, size=300), i % 4) for i in range(6)]
        driver.transmit(frames)
        board.sim.run_until_idle()
        received = driver.poll_receive()
        assert received == frames
