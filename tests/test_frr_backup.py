"""Backup next-hop computation: loop-free alternates over the learned
BFS forwarding trees, installation into the backup CAM column, and the
end-to-end delivery guarantee under any single link failure."""

from __future__ import annotations

import pytest

from repro.fabric import FabricError, abilene, fat_tree
from repro.frr import backup_coverage, compute_backups, install_backups
from repro.frr.backup import _bfs
from repro.frr.sweep import _crossing_pairs, _forwarding_trees
from repro.packet.generator import make_udp_frame

pytestmark = pytest.mark.frr


def _frame(src, dst) -> bytes:
    return make_udp_frame(
        src.mac, dst.mac, src.ip, dst.ip, 1000, 2000, size=64
    ).pack()


@pytest.fixture(scope="module")
def abilene_topo():
    topo = abilene()
    topo.learn()
    return topo


class TestComputeBackups:
    def test_requires_learning_first(self):
        with pytest.raises(FabricError):
            install_backups(abilene())

    def test_install_is_idempotent(self, abilene_topo):
        abilene_topo.install_backups()
        sizes = {
            name: len(abilene_topo.network.device(name).backup_table)
            for name in abilene_topo.network.device_names()
        }
        abilene_topo.install_backups()
        assert sizes == {
            name: len(abilene_topo.network.device(name).backup_table)
            for name in abilene_topo.network.device_names()
        }
        assert sum(sizes.values()) > 0

    def test_coverage_is_a_meaningful_fraction(self, abilene_topo):
        coverage = backup_coverage(abilene_topo)
        assert 0.5 < coverage <= 1.0

    def test_abilene_protected_fraction_is_pinned(self, abilene_topo):
        # Abilene's sparse ring-like graph protects exactly 78 of the
        # 110 protectable (switch, host) pairs — ~71%.  The value is a
        # pure function of the topology and the BFS trees, so any drift
        # means the backup computation changed behaviour.
        assert len(compute_backups(abilene_topo)) == 78
        assert backup_coverage(abilene_topo) == pytest.approx(78 / 110)

    def test_fat_tree_coverage(self):
        topo = fat_tree(k=4)
        topo.learn()
        assert backup_coverage(topo) > 0.0

    def test_backup_avoids_primary_port_and_peer(self, abilene_topo):
        """A backup must leave by a different port than the primary and
        must not point at the primary next-hop (the far side of the
        link being protected against)."""
        topo = abilene_topo
        backups = compute_backups(topo)
        assert backups
        trees = _forwarding_trees(topo)
        for (device, dst), backup_port in backups.items():
            parent = trees[dst][device]
            assert parent is not None  # the root edge switch has no backup
            neighbors = topo.network.neighbors(device)
            primary_ports = [p for p, (peer, _) in neighbors.items()
                             if peer == parent]
            assert backup_port not in primary_ports
            peer, _ = neighbors[backup_port]
            assert peer != parent

    def test_backup_neighbor_is_loop_free(self, abilene_topo):
        """The LFA condition, checked against independently recomputed
        distances: the backup neighbor's distance to the destination
        never exceeds the rerouting node's by more than one, and at +1
        its own primary parent is not the rerouting node."""
        topo = abilene_topo
        backups = compute_backups(topo)
        for (device, dst), backup_port in backups.items():
            root = topo.hosts[dst].device
            dist, parent = _bfs(topo.network, root)
            peer, _ = topo.network.neighbors(device)[backup_port]
            assert dist[peer] <= dist[device] + 1
            if dist[peer] == dist[device] + 1:
                assert parent[peer] != device


class TestSingleFailureDelivery:
    def test_every_abilene_link_survivable_for_protected_pairs(self):
        """Kill each link in turn: every protected crossing pair still
        delivers, exactly once, with no hop-limit storm — the loop
        freedom proof, executed."""
        topo = abilene()
        topo.learn()
        topo.install_backups()
        net = topo.network
        trees = _forwarding_trees(topo)
        backups = compute_backups(topo)
        exercised = 0
        for a_dev, _, b_dev, _ in topo.links():
            _, protected = _crossing_pairs(topo, trees, backups,
                                           a_dev, b_dev)
            net.set_link_state(a_dev, b_dev, up=False)
            for src_name, dst_name, _ in protected[:2]:
                src = topo.hosts[src_name]
                dst = topo.hosts[dst_name]
                before = len(net.deliveries)
                net.inject(src.device, src.port, _frame(src, dst))
                landed = net.deliveries[before:]
                assert [(d.at.device, d.at.port.index) for d in landed] \
                    == [(dst.device, dst.port)]
                exercised += 1
            net.set_link_state(a_dev, b_dev, up=True)
        assert net.dropped_hop_limit == 0
        assert exercised >= len(topo.links())  # every link was swept

    def test_fat_tree_spot_check(self):
        topo = fat_tree(k=4)
        topo.learn()
        topo.install_backups()
        net = topo.network
        trees = _forwarding_trees(topo)
        backups = compute_backups(topo)
        for a_dev, _, b_dev, _ in topo.links():
            _, protected = _crossing_pairs(topo, trees, backups,
                                           a_dev, b_dev)
            if not protected:
                continue
            src_name, dst_name, _ = protected[0]
            src = topo.hosts[src_name]
            dst = topo.hosts[dst_name]
            net.set_link_state(a_dev, b_dev, up=False)
            before = len(net.deliveries)
            net.inject(src.device, src.port, _frame(src, dst))
            landed = net.deliveries[before:]
            assert [(d.at.device, d.at.port.index) for d in landed] \
                == [(dst.device, dst.port)]
            net.set_link_state(a_dev, b_dev, up=True)
            break
        else:  # pragma: no cover - fat-tree(4) always has protected pairs
            pytest.fail("no protected crossing pair found")
        assert net.dropped_hop_limit == 0
