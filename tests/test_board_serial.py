"""Serial link bank, SFP+ bring-up, encodings."""

import pytest

from repro.board.serial import (
    ENC_64B66B,
    ENC_8B10B,
    MAX_LANE_RATE_BPS,
    SerialLink,
    SerialLinkBank,
    SfpCage,
)
from repro.utils.units import GBPS


class TestSerialLink:
    def test_allocate_release(self):
        link = SerialLink(0, "qth")
        link.allocate("user", 10 * GBPS)
        assert link.in_use and link.allocated_to == "user"
        link.release()
        assert not link.in_use

    def test_double_allocation_rejected(self):
        link = SerialLink(0, "qth")
        link.allocate("a", 1 * GBPS)
        with pytest.raises(RuntimeError):
            link.allocate("b", 1 * GBPS)

    def test_rate_ceiling(self):
        link = SerialLink(0, "qth")
        with pytest.raises(ValueError):
            link.allocate("too_fast", 14 * GBPS)


class TestBank:
    def test_lane_budget_matches_board(self):
        bank = SerialLinkBank()
        assert len(bank) == 30  # §2: "30 serial links"
        assert len(bank.available("sfp")) == 4
        assert len(bank.available("pcie")) == 8
        assert len(bank.available("sata")) == 2
        assert len(bank.available("qth")) == 16

    def test_aggregate_headline(self):
        bank = SerialLinkBank()
        # 30 x 13.1G = 393G raw: comfortably past the 100G claim.
        assert bank.aggregate_capacity_bps() == pytest.approx(30 * 13.1 * GBPS)

    def test_group_allocation_and_exhaustion(self):
        bank = SerialLinkBank()
        lanes = bank.allocate("caui", 10, 10.3125 * GBPS, group="qth")
        assert len(lanes) == 10
        assert len(bank.available("qth")) == 6
        with pytest.raises(RuntimeError):
            bank.allocate("more", 7, 10 * GBPS, group="qth")

    def test_inventory(self):
        bank = SerialLinkBank()
        bank.allocate("x", 2, 5 * GBPS, group="qth")
        inventory = bank.inventory()
        assert inventory["qth"]["in_use"] == 2
        assert inventory["sfp"]["lanes"] == 4


class TestEncodings:
    def test_payload_fractions(self):
        assert ENC_8B10B.payload_rate(10 * GBPS) == pytest.approx(8 * GBPS)
        assert ENC_64B66B.payload_rate(10.3125 * GBPS) == pytest.approx(10 * GBPS)

    def test_sfp_cage_brings_up_exactly_10g(self):
        bank = SerialLinkBank()
        cage = SfpCage(index=0, link=bank.available("sfp")[0])
        assert cage.bring_up() == pytest.approx(10 * GBPS)
        assert bank.available("sfp")[0].index != cage.link.index
