"""FPGA capacity model and utilization reports."""

import pytest

from repro.board.fpga import (
    CapacityError,
    FpgaDevice,
    KINTEX7_325T,
    VIRTEX5_TX240T,
    VIRTEX7_690T,
    report_for_design,
)
from repro.core.module import Module, Resources


class Block(Module):
    def __init__(self, name, resources):
        super().__init__(name)
        self._resources = resources

    def resources(self):
        return self._resources


class TestUtilization:
    def test_percentages(self):
        report = VIRTEX7_690T.utilization(Resources(luts=43_320, ffs=86_640, brams=147))
        assert report.lut_pct == pytest.approx(10.0)
        assert report.ff_pct == pytest.approx(10.0)
        assert report.bram_pct == pytest.approx(10.0)
        assert report.fits

    def test_over_capacity(self):
        report = VIRTEX7_690T.utilization(Resources(luts=500_000))
        assert not report.fits
        with pytest.raises(CapacityError):
            report.check()

    def test_check_returns_self_when_fitting(self):
        report = VIRTEX7_690T.utilization(Resources(luts=10))
        assert report.check() is report

    def test_rows_and_render(self):
        report = VIRTEX7_690T.utilization(Resources(luts=100, ffs=200, brams=3, dsps=1))
        rows = dict((r[0], r[3]) for r in report.rows())
        assert set(rows) == {"LUT", "FF", "BRAM36", "DSP48"}
        assert "xc7v690t" in report.render()

    def test_zero_dsp_device(self):
        tiny = FpgaDevice("tiny", luts=100, ffs=100, brams=10, dsps=0)
        assert tiny.utilization(Resources(luts=1)).dsp_pct == 0.0


class TestDeviceCatalogue:
    def test_sume_device_is_largest(self):
        assert VIRTEX7_690T.luts > KINTEX7_325T.luts > VIRTEX5_TX240T.luts

    def test_report_for_design_aggregates_tree(self):
        top = Block("top", Resources(luts=100))
        top.submodule(Block("a", Resources(luts=50, brams=2)))
        top.submodule(Block("b", Resources(ffs=70)))
        report = report_for_design(top)
        assert report.used.luts == 150
        assert report.used.ffs == 70
        assert report.used.brams == 2

    def test_reference_designs_fit_690t(self):
        from repro.projects import (
            ReferenceNic,
            ReferenceRouter,
            ReferenceSwitch,
            ReferenceSwitchLite,
        )

        for factory in (ReferenceNic, ReferenceSwitchLite, ReferenceSwitch, ReferenceRouter):
            report = report_for_design(factory())
            report.check()
            # Reference designs are small relative to the 690T (§2).
            assert report.lut_pct < 25.0

    def test_utilization_ordering_across_projects(self):
        """C4: richer lookup stages cost more logic."""
        from repro.projects import (
            ReferenceRouter,
            ReferenceSwitch,
            ReferenceSwitchLite,
        )

        lite = report_for_design(ReferenceSwitchLite()).used.luts
        switch = report_for_design(ReferenceSwitch()).used.luts
        router = report_for_design(ReferenceRouter()).used.luts
        assert lite < switch < router
