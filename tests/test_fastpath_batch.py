"""The S27 batch tier: compiled flow closures and coalesced dispatch.

Three contracts under test.  **Counter identity**: a warm
``inject_batch(n)`` must move every observable counter exactly as far
as ``n`` sequential ``inject`` calls — per-device OPL packets, drops
and named counters, network loss tallies, forwarded hops and template
deliveries.  **Invalidation**: any wiring or table mutation between
batches must split the batch at the generation boundary (stale closure
→ ``None`` → the caller re-warms through the real pipeline).
**Fingerprint invariance**: the FabricReport and INT fingerprints are
byte-identical across {batch on/off} × {cache on/off} × {1/2/4
shards}, with and without fault plans and link schedules — batching is
an execution strategy, never an observable.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.fabric import get_topology, run_sharded
from repro.fabric.scheduler import FlowEngine, LinkSchedule, run_flows
from repro.fabric.workload import WorkloadSpec
from repro.faults import CtrlFaultSpec, FaultPlan, LinkStateSpec, get_plan
from repro.host.nfmon import main as nfmon_main
from repro.projects.reference_switch import ReferenceSwitch
from repro.testenv.topology import Network

from .conftest import udp_frame

pytestmark = pytest.mark.fastpath


def two_switch_fabric() -> Network:
    net = Network()
    net.add_device("s1", ReferenceSwitch())
    net.add_device("s2", ReferenceSwitch())
    net.link("s1", 3, "s2", 0)
    return net


def counter_state(net: Network) -> tuple:
    """Every batch-replayed observable, as one comparable value."""
    return (
        {name: dict(net.device(name).opl.counters)
         for name in net.device_names()},
        net.dropped_hop_limit,
        net.dropped_link_down,
        net.forwarded_hops,
    )


# ----------------------------------------------------------------------
# Network layer: inject_batch counter identity and invalidation
# ----------------------------------------------------------------------
class TestInjectBatch:
    def test_warm_batch_equals_sequential_injects(self):
        batched, serial = two_switch_fabric(), two_switch_fabric()
        frame = udp_frame(1, 2)
        for net in (batched, serial):
            net.inject("s1", 0, frame)  # learn
            net.inject("s1", 0, frame)  # fill + warm the walk
        result = batched.inject_batch("s1", 0, frame, 6)
        assert result is not None and result.count == 6
        for _ in range(6):
            serial.inject("s1", 0, frame)
        assert counter_state(batched) == counter_state(serial)
        assert batched.batch_stats()["replayed_packets"] == 6

    def test_cold_flow_returns_none_and_counts_the_miss(self):
        net = two_switch_fabric()
        assert net.inject_batch("s1", 0, udp_frame(1, 2), 4) is None
        assert net.batch_stats()["cold_misses"] == 1
        assert counter_state(net) == counter_state(two_switch_fabric())

    def test_mutation_between_batches_splits_at_the_boundary(self):
        net = two_switch_fabric()
        frame = udp_frame(1, 2)
        net.inject("s1", 0, frame)
        net.inject("s1", 0, frame)
        assert net.inject_batch("s1", 0, frame, 3) is not None
        net.set_link_state("s1", "s2", False)
        net.set_link_state("s1", "s2", True)
        assert net.inject_batch("s1", 0, frame, 3) is None
        assert net.batch_stats()["splits"] == 1
        # One real inject re-warms; the next batch compiles again.
        net.inject("s1", 0, frame)
        assert net.inject_batch("s1", 0, frame, 3) is not None
        assert net.batch_stats()["compiled"] == 2

    def test_set_batch_off_clears_and_declines(self):
        net = two_switch_fabric()
        frame = udp_frame(1, 2)
        net.inject("s1", 0, frame)
        net.inject("s1", 0, frame)
        assert net.inject_batch("s1", 0, frame, 2) is not None
        net.set_batch(False)
        assert net.batch_stats()["entries"] == 0
        assert net.inject_batch("s1", 0, frame, 2) is None

    def test_count_must_be_positive(self):
        net = two_switch_fabric()
        with pytest.raises(ValueError):
            net.inject_batch("s1", 0, udp_frame(1, 2), 0)


# ----------------------------------------------------------------------
# Property: batched == cached == uncached under random churn
# ----------------------------------------------------------------------
class TestChurnProperty:
    def test_random_interleaving_of_batches_and_churn(self):
        """Random walks of traffic, FDB writes and link flaps: the
        batched, cached and uncached fabrics agree counter-for-counter
        after every step."""
        rng = random.Random(2701)
        batched = two_switch_fabric()
        cached = two_switch_fabric()
        cached.set_batch(False)
        plain = two_switch_fabric()
        plain.set_fastpath(False)
        fabrics = (batched, cached, plain)
        pairs = ((1, 2), (2, 1), (3, 4), (4, 3))
        flows = [udp_frame(a, b) for a, b in pairs]
        ports = {1: ("s1", 0), 2: ("s2", 1), 3: ("s1", 1), 4: ("s2", 2)}
        took_batch = 0
        for _ in range(120):
            op = rng.random()
            if op < 0.55:  # a burst of one flow
                index = rng.randrange(len(flows))
                device, port = ports[pairs[index][0]]
                frame, count = flows[index], rng.randrange(1, 6)
                result = batched.inject_batch(device, port, frame, count)
                if result is None:
                    for _ in range(count):
                        batched.inject(device, port, frame)
                else:
                    took_batch += 1
                for net in (cached, plain):
                    for _ in range(count):
                        net.inject(device, port, frame)
            elif op < 0.8:  # link churn
                up = rng.random() < 0.5
                for net in fabrics:
                    net.set_link_state("s1", "s2", up)
            else:  # FDB churn
                mac = f"02:00:00:00:00:{rng.randrange(9, 99):02x}"
                port = rng.randrange(4)
                for net in fabrics:
                    net.device("s2").install_static_mac(mac, port)
            assert counter_state(batched) == counter_state(cached)
            assert counter_state(batched) == counter_state(plain)
        assert took_batch > 0
        assert batched.batch_stats()["splits"] > 0


# ----------------------------------------------------------------------
# Engine: fingerprint identity across the whole grid
# ----------------------------------------------------------------------
class TestEngineFingerprint:
    WORKLOAD = WorkloadSpec(flows=48, packets_per_flow=8, seed=7)

    def _run(self, **kw):
        return run_flows(get_topology("leaf-spine").build(),
                         self.WORKLOAD, kw.pop("plan", None), **kw)

    def test_clean_run_batch_on_off_and_cache_on_off(self):
        runs = [self._run(batch=batch, fastpath=fastpath)
                for batch in (True, False) for fastpath in (True, False)]
        prints = {run.fingerprint() for run in runs}
        assert len(prints) == 1
        assert runs[0].batch["segment_packets"] > 0
        assert runs[0].batch["replayed_packets"] > 0
        # batch needs the flow cache; without it the tier stands down
        assert runs[1].batch.get("replayed_packets", 0) == 0

    def test_datapath_plan_disables_the_tier_but_not_identity(self):
        plan = get_plan("flaky-fabric", seed=3)
        on = self._run(plan=plan)
        off = self._run(plan=plan, batch=False)
        assert on.fingerprint() == off.fingerprint()
        assert on.batch.get("replayed_packets", 0) == 0

    def test_flap_plan_keeps_batching_within_epochs(self):
        plan = FaultPlan("flap-only", seed=9,
                         ctrl=CtrlFaultSpec(flap_rate=0.2))
        on = self._run(plan=plan)
        off = self._run(plan=plan, batch=False)
        assert on.fingerprint() == off.fingerprint()
        assert on.batch["replayed_packets"] > 0

    def test_seeded_link_cuts_split_batches_identically(self):
        plan = FaultPlan("cuts", seed=5,
                         link_state=LinkStateSpec(down_rate=0.05,
                                                  max_down_epochs=3))
        on = self._run(plan=plan)
        off = self._run(plan=plan, batch=False)
        assert on.fingerprint() == off.fingerprint()
        assert on.records == off.records

    def test_link_schedule_splits_at_the_boundary(self):
        schedule = LinkSchedule(events=(("spine0", "leaf0", 1, 4),))
        workload = WorkloadSpec(flows=40, packets_per_flow=12, seed=0)
        topo = get_topology("leaf-spine")
        on = run_flows(topo.build(), workload, link_schedule=schedule)
        off = run_flows(topo.build(), workload, link_schedule=schedule,
                        batch=False)
        assert on.fingerprint() == off.fingerprint()
        assert on.batch["splits"] > 0

    def test_shard_grid_one_fingerprint(self):
        spec = get_topology("leaf-spine")
        prints = {
            run_sharded(spec, self.WORKLOAD, shards=shards, parallel=False,
                        batch=batch, fastpath=fastpath).fingerprint()
            for shards in (1, 2, 4)
            for batch in (True, False)
            for fastpath in (True, False)
        }
        assert len(prints) == 1

    def test_shard_reports_carry_summed_batch_stats(self):
        spec = get_topology("leaf-spine")
        merged = run_sharded(spec, self.WORKLOAD, shards=4, parallel=False)
        single = run_sharded(spec, self.WORKLOAD, shards=1)
        assert merged.batch["replayed_packets"] == \
            single.batch["replayed_packets"]
        assert merged.batch_enabled is True


# ----------------------------------------------------------------------
# INT: batched replays keep receiver-side sequences gapless
# ----------------------------------------------------------------------
class TestIntBatched:
    WORKLOAD = WorkloadSpec(flows=32, packets_per_flow=10, seed=13)

    def test_batched_int_run_is_gapless_at_the_collector(self):
        topology = get_topology("leaf-spine").build()
        engine = FlowEngine(topology, self.WORKLOAD, int_all=True)
        engine.run()
        report = engine.report()
        assert report.batch["replayed_packets"] > 0
        summary = report.int_summary
        assert summary["lost"] == 0
        assert summary["delivered"] == summary["packets"] > 0
        for state in engine.collector._flows.values():
            seqs = sorted(state.sent)
            assert seqs == list(range(len(seqs)))  # gapless assignment
            assert state.received == set(state.sent)  # gapless arrival

    def test_int_summary_identical_batch_on_off(self):
        spec = get_topology("leaf-spine")
        on = run_sharded(spec, self.WORKLOAD, shards=2, parallel=False,
                         int_all=True)
        off = run_sharded(spec, self.WORKLOAD, shards=2, parallel=False,
                          int_all=True, batch=False)
        assert on.int_summary == off.int_summary
        assert on.fingerprint() == off.fingerprint()


# ----------------------------------------------------------------------
# nf-mon: the operator's A/B switch
# ----------------------------------------------------------------------
class TestNfmonBatch:
    def test_fabric_prints_batch_tier_stats(self, capsys):
        assert nfmon_main(["fabric", "--topo", "leaf-spine",
                           "--workload", "uniform-small"]) == 0
        out = capsys.readouterr().out
        assert "batch tier:" in out
        assert "replayed_packets" in out

    def test_no_batch_flag_same_fingerprint(self, capsys):
        args = ["fabric", "--topo", "leaf-spine",
                "--workload", "uniform-small", "--format", "json"]
        assert nfmon_main(args) == 0
        with_batch = json.loads(capsys.readouterr().out)
        assert nfmon_main(args + ["--no-batch"]) == 0
        without = json.loads(capsys.readouterr().out)
        assert with_batch["fingerprint"] == without["fingerprint"]
        assert with_batch["batch"]["replayed_packets"] > 0
        assert without["batch"].get("replayed_packets", 0) == 0
