"""Output queues: routing, replication, drops, and the three schedulers."""

import pytest

from repro.core.axis import AxiStreamChannel, StreamPacket, StreamSink, StreamSource
from repro.core.metadata import phys_port_bit
from repro.core.simulator import Simulator
from repro.cores.output_queues import OutputQueues, QueueConfig, classify_by_dscp

from tests.conftest import udp_frame


def _build(config=QueueConfig(), classify=None, n_ports=4, backpressure=None):
    sim = Simulator()
    s_axis = AxiStreamChannel("in")
    source = StreamSource("src", s_axis)
    ports = [(phys_port_bit(i), AxiStreamChannel(f"out{i}")) for i in range(n_ports)]
    oq = OutputQueues("oq", s_axis, ports, config=config, classify=classify)
    sinks = [
        StreamSink(f"snk{i}", ch, backpressure=backpressure)
        for i, (_, ch) in enumerate(ports)
    ]
    for module in (source, oq, *sinks):
        sim.add(module)
    return sim, source, oq, sinks


def _send(source, frame, dst_bits, tuser_extra=0):
    packet = StreamPacket(frame).with_dst_port(dst_bits)
    source.send(packet)


class TestRouting:
    def test_unicast(self):
        sim, source, oq, sinks = _build()
        _send(source, udp_frame(), phys_port_bit(2))
        sim.run_until(lambda: sinks[2].packets, max_cycles=1000)
        assert [len(s.packets) for s in sinks] == [0, 0, 1, 0]

    def test_multicast_replicates(self):
        sim, source, oq, sinks = _build()
        dst = phys_port_bit(0) | phys_port_bit(1) | phys_port_bit(3)
        _send(source, udp_frame(size=200), dst)
        sim.run_until(
            lambda: sum(len(s.packets) for s in sinks) == 3, max_cycles=2000
        )
        assert [len(s.packets) for s in sinks] == [1, 1, 0, 1]
        # The replicas are byte-identical.
        assert sinks[0].packets[0].data == sinks[3].packets[0].data

    def test_unroutable_counted(self):
        sim, source, oq, sinks = _build()
        _send(source, udp_frame(), 0)
        sim.step(50)
        assert oq.unroutable == 1

    def test_per_port_order_preserved(self):
        sim, source, oq, sinks = _build()
        frames = [udp_frame(src=i + 1, size=64 + 16 * i) for i in range(6)]
        for frame in frames:
            _send(source, frame, phys_port_bit(1))
        sim.run_until(lambda: len(sinks[1].packets) == 6, max_cycles=5000)
        assert [p.data for p in sinks[1].packets] == frames


class TestDropOnFull:
    def test_drops_when_capacity_exceeded(self):
        config = QueueConfig(capacity_bytes=2048)
        # Sink jammed: queue can hold ~2 x 1000B packets, rest drop.
        sim, source, oq, sinks = _build(config=config, backpressure=lambda c: True)
        for _ in range(6):
            _send(source, udp_frame(size=1000), phys_port_bit(0))
        sim.run_until(lambda: source.idle, max_cycles=10_000)
        sim.step(100)
        stats = oq.port_stats()[0]
        assert stats["dropped"] >= 3
        assert stats["enqueued"] + stats["dropped"] == 6

    def test_input_never_backpressured(self):
        sim, source, oq, sinks = _build(
            config=QueueConfig(capacity_bytes=1024), backpressure=lambda c: True
        )
        for _ in range(10):
            _send(source, udp_frame(size=512), phys_port_bit(0))
        cycles = 0
        while not source.idle and cycles < 5000:
            sim.step()
            cycles += 1
        # Input drained at full speed despite jammed output.
        assert source.idle

    def test_high_watermark(self):
        sim, source, oq, sinks = _build(backpressure=lambda c: c < 100)
        for _ in range(3):
            _send(source, udp_frame(size=500), phys_port_bit(0))
        sim.run_until(lambda: len(sinks[0].packets) == 3, max_cycles=5000)
        assert oq.port_stats()[0]["high_watermark"] >= 900


def _frame_with_dscp(size, dscp):
    from repro.packet.checksum import internet_checksum

    frame = bytearray(udp_frame(size=size))
    frame[15] = dscp << 2
    frame[24:26] = b"\x00\x00"
    frame[24:26] = internet_checksum(bytes(frame[14:34])).to_bytes(2, "big")
    return bytes(frame)


class TestSchedulers:
    def _run_classes(self, scheduler):
        config = QueueConfig(classes=4, capacity_bytes=64 * 1024, scheduler=scheduler)
        sim, source, oq, sinks = _build(
            config=config,
            classify=classify_by_dscp(4),
            backpressure=lambda c: c < 400,  # hold output so queues fill
        )
        # Interleave low-priority bulk and high-priority small frames.
        for _ in range(8):
            _send(source, _frame_with_dscp(600, 0), phys_port_bit(0))
            _send(source, _frame_with_dscp(80, 46), phys_port_bit(0))
        sim.run_until(lambda: len(sinks[0].packets) == 16, max_cycles=30_000)
        return [len(p.data) for p in sinks[0].packets]

    def test_strict_priority_reorders(self):
        sizes = self._run_classes("strict")
        small_positions = [i for i, s in enumerate(sizes) if s < 200]
        large_positions = [i for i, s in enumerate(sizes) if s >= 200]
        assert max(small_positions) < max(large_positions)
        # All smalls that were queued at release come out first.
        assert small_positions[0] < large_positions[0] or sizes[0] >= 200

    def test_drr_interleaves_by_bytes(self):
        sizes = self._run_classes("drr")
        # DRR must serve both classes in the first half of departures.
        first_half = sizes[: len(sizes) // 2]
        assert any(s < 200 for s in first_half)
        assert any(s >= 200 for s in first_half)

    def test_fifo_keeps_arrival_order(self):
        config = QueueConfig()
        sim, source, oq, sinks = _build(config=config, backpressure=lambda c: c < 200)
        frames = [udp_frame(size=100 + 50 * i) for i in range(5)]
        for frame in frames:
            _send(source, frame, phys_port_bit(0))
        sim.run_until(lambda: len(sinks[0].packets) == 5, max_cycles=10_000)
        assert [p.data for p in sinks[0].packets] == frames

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            QueueConfig(scheduler="wfq")
        with pytest.raises(ValueError):
            QueueConfig(scheduler="fifo", classes=2)
        with pytest.raises(ValueError):
            QueueConfig(classes=0)

    def test_classify_by_dscp_bands(self):
        classify = classify_by_dscp(4)
        high = StreamPacket(_frame_with_dscp(100, 63))
        low = StreamPacket(_frame_with_dscp(100, 0))
        assert classify(high) == 0
        assert classify(low) == 3

    def test_classify_non_ip_gets_lowest(self):
        classify = classify_by_dscp(4)
        assert classify(StreamPacket(b"\x00" * 60)) == 3

    def test_class_out_of_range_rejected(self):
        sim, source, oq, sinks = _build(
            config=QueueConfig(classes=2, scheduler="strict"),
            classify=lambda p: 7,
        )
        _send(source, udp_frame(), phys_port_bit(0))
        with pytest.raises(ValueError):
            sim.step(20)
