"""Link flaps must not corrupt the learning switch's forwarding state.

A flapped link loses the frames in flight — that is the physical
reality — but the MAC table must come through untouched: entries learned
before the flap keep their port bindings, and a host that reappears
(same port or moved) is re-learned from its next frame exactly as if the
flap never happened.
"""

import pytest

from repro.faults import CtrlFaultSpec, FaultPlan
from repro.projects.base import PortRef
from repro.projects.reference_switch import ReferenceSwitch
from repro.testenv.harness import Stimulus, run_sim

from tests.conftest import mac, udp_frame

pytestmark = pytest.mark.faults


def _learn_all(switch):
    """One frame from each host i on phys port i: four learned entries."""
    stimuli = [
        Stimulus(PortRef("phys", i), udp_frame(src=i + 1, dst=((i + 1) % 4) + 1))
        for i in range(4)
    ]
    run_sim(switch, stimuli)
    return dict(switch.mac_table)


class TestLinkFlap:
    def test_flap_does_not_corrupt_table(self):
        switch = ReferenceSwitch()
        learned = _learn_all(switch)
        assert len(learned) == 4

        # Port 1's link flaps: its epoch of traffic is simply lost.
        # Everyone else keeps talking, including *to* the dark host.
        survivors = [
            Stimulus(PortRef("phys", i), udp_frame(src=i + 1, dst=2))
            for i in (0, 2, 3)
        ]
        run_sim(switch, survivors)
        assert dict(switch.mac_table) == learned

    def test_host_relearned_after_link_returns(self):
        switch = ReferenceSwitch()
        learned = _learn_all(switch)
        # Link back up, host 2 (on phys 1) speaks again: same binding.
        run_sim(switch, [Stimulus(PortRef("phys", 1), udp_frame(src=2, dst=1))])
        assert dict(switch.mac_table) == learned

    def test_moved_host_relearned_on_new_port(self):
        switch = ReferenceSwitch()
        learned = _learn_all(switch)
        # The flap was a cable move: host 2 comes back on phys 3.
        run_sim(switch, [Stimulus(PortRef("phys", 3), udp_frame(src=2, dst=1))])
        after = dict(switch.mac_table)
        assert after[mac(2).value] == 1 << 6  # re-learned on the new port
        del after[mac(2).value], learned[mac(2).value]
        assert after == learned  # nobody else was disturbed

    def test_plan_driven_flaps_preserve_table_and_determinism(self):
        """Flap draws from a seeded plan: lost traffic, intact state —
        and the same seed flaps the same (epoch, port) pairs."""
        plan = FaultPlan(
            name="flappy", seed=4, ctrl=CtrlFaultSpec(flap_rate=0.4)
        )
        schedules = []
        for _run in range(2):
            session = plan.session()
            switch = ReferenceSwitch()
            learned = _learn_all(switch)
            schedule = []
            for epoch in range(4):
                flapped = {
                    i for i in range(4) if session.link_flap_faults()
                }
                schedule.append(sorted(flapped))
                stimuli = [
                    Stimulus(
                        PortRef("phys", i),
                        udp_frame(src=i + 1, dst=((i + 1) % 4) + 1),
                    )
                    for i in range(4)
                    if i not in flapped
                ]
                run_sim(switch, stimuli)
                assert dict(switch.mac_table) == learned
            schedules.append(schedule)
            assert session.report().counters["ctrl_flaps"] > 0
        assert schedules[0] == schedules[1]
