"""The build flow: synthesis checks, artifacts, programming."""

import pytest

from repro.board.fpga import FpgaDevice, VIRTEX5_TX240T, VIRTEX7_690T
from repro.board.sume import NetFpgaSume
from repro.flow import (
    BuildError,
    ProgramError,
    load_artifact,
    program,
    synthesize,
)
from repro.projects.firewall import FirewallProject
from repro.projects.reference_nic import ReferenceNic
from repro.projects.reference_router import ReferenceRouter
from repro.projects.reference_switch import ReferenceSwitch, ReferenceSwitchLite


ALL_PROJECTS = (
    ReferenceNic,
    ReferenceSwitch,
    ReferenceSwitchLite,
    ReferenceRouter,
    FirewallProject,
)


class TestSynthesize:
    @pytest.mark.parametrize("factory", ALL_PROJECTS)
    def test_every_project_builds(self, factory):
        artifact = synthesize(factory())
        assert artifact.verify()
        assert artifact.total["luts"] > 0
        assert artifact.utilization_pct["luts"] < 100
        assert len(artifact.modules) > 3
        assert artifact.ports  # the 8 logical ports
        assert artifact.decision_latencies  # one OPL at least

    def test_hierarchical_report_covers_tree(self):
        project = ReferenceRouter()
        artifact = synthesize(project)
        paths = {m.path for m in artifact.modules}
        assert project.name in paths
        assert any("arbiter" in p for p in paths)
        assert any(".oq" in p for p in paths)

    def test_capacity_failure(self):
        tiny = FpgaDevice("tiny", luts=100, ffs=100, brams=1, dsps=0)
        with pytest.raises(BuildError, match="does not fit"):
            synthesize(ReferenceNic(), device=tiny)

    def test_timing_failure(self):
        with pytest.raises(BuildError, match="timing"):
            synthesize(ReferenceRouter(), timing_budget_cycles=4)

    def test_address_map_recorded(self):
        artifact = synthesize(ReferenceSwitch())
        names = [name for _, _, name in artifact.address_map]
        assert any("stats" in name for name in names)

    def test_render(self):
        text = synthesize(ReferenceNic()).render()
        assert "xc7v690t" in text and "LUT" in text


class TestArtifactRoundTrip:
    def test_json_roundtrip(self, tmp_path):
        artifact = synthesize(ReferenceSwitch())
        path = str(tmp_path / "switch.bit.json")
        artifact.save(path)
        loaded = load_artifact(path)
        assert loaded == artifact

    def test_tampered_artifact_rejected(self, tmp_path):
        artifact = synthesize(ReferenceNic())
        path = str(tmp_path / "nic.bit.json")
        artifact.save(path)
        text = open(path).read().replace('"reference_nic"', '"evil_nic"')
        open(path, "w").write(text)
        with pytest.raises(BuildError, match="checksum"):
            load_artifact(path)

    def test_wrong_format_version(self, tmp_path):
        artifact = synthesize(ReferenceNic())
        path = str(tmp_path / "nic.bit.json")
        artifact.save(path)
        text = open(path).read().replace('"format_version": 1', '"format_version": 99')
        open(path, "w").write(text)
        with pytest.raises(BuildError, match="format"):
            load_artifact(path)


class TestProgram:
    def test_program_onto_board(self):
        board = NetFpgaSume()
        idle_before = board.power.total_power_w
        artifact = synthesize(ReferenceRouter())
        report = program(board, artifact)
        assert board.loaded_artifact is artifact
        assert report.static_power_delta_w > 0
        assert board.power.total_power_w > idle_before

    def test_device_mismatch_rejected(self):
        board = NetFpgaSume()
        artifact = synthesize(ReferenceNic(), device=VIRTEX5_TX240T)
        with pytest.raises(ProgramError, match="targets"):
            program(board, artifact)

    def test_corrupted_artifact_rejected(self):
        board = NetFpgaSume()
        artifact = synthesize(ReferenceNic())
        artifact.checksum = "00000000"
        with pytest.raises(ProgramError, match="checksum"):
            program(board, artifact)

    def test_reprogram_replaces(self):
        board = NetFpgaSume()
        program(board, synthesize(ReferenceNic()))
        second = synthesize(ReferenceSwitch())
        program(board, second)
        assert board.loaded_artifact.project == "reference_switch"
