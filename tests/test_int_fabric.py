"""INT at fabric scale: shard/fastpath fingerprint identity, receiver-vs-
device attribution equality (E19/E20), probe_int, and the nf-mon face."""

from __future__ import annotations

import json

import pytest

from repro.fabric import get_topology, get_workload, run_sharded
from repro.fabric.workload import WorkloadSpec, generate_flows
from repro.frr.sweep import run_sweep
from repro.host.nfmon import main as nfmon_main
from repro.telemetry import TelemetrySession, probe_int

pytestmark = pytest.mark.int


def _run(topo="leaf-spine", workload="uniform-int", seed=7, **kwargs):
    topology = get_topology(topo)
    spec = get_workload(workload).with_seed(seed)
    return run_sharded(topology, spec, parallel=False, **kwargs)


class TestFabricIntegration:
    def test_int_summary_populated_and_lossless(self):
        report = _run()
        summary = report.int_summary
        assert summary is not None
        assert summary["packets"] == summary["delivered"] > 0
        assert summary["stamps"] > summary["packets"]  # multi-hop paths
        assert summary["lost"] == summary["blackholes"] == 0
        # Leaf-to-leaf flows cross the spine; same-leaf flows stamp once.
        assert any(">" in path for path in summary["paths"])

    def test_int_summary_in_fingerprint(self):
        report = _run()
        with_int = report.signature()
        report.int_summary = None
        assert report.signature() != with_int

    def test_shards_and_fastpath_preserve_fingerprint(self):
        base = _run().signature()
        assert _run(shards=3).signature() == base
        assert _run(fastpath=False).signature() == base

    def test_int_all_promotes_every_flow(self):
        report = _run(workload="uniform-small", int_all=True)
        assert report.int_summary is not None
        assert report.int_summary["flows"] == len(report.records)

    def test_plain_workload_has_no_summary(self):
        report = _run(workload="uniform-small")
        assert report.int_summary is None

    def test_hop_latency_uses_decision_cycles(self):
        summary = _run().int_summary
        assert summary["hop_latency"]
        for key in summary["hop_latency"]:
            device, _, cycles = key.rpartition(":")
            assert device and int(cycles) > 0


class TestWorkloadStability:
    def test_int_ratio_zero_leaves_flows_bit_identical(self):
        # Adding the int_enabled draw must not perturb pre-INT workloads.
        plain = WorkloadSpec("uniform", flows=32, packets_per_flow=2,
                             window_ticks=64, seed=11)
        ratioed = WorkloadSpec("uniform", flows=32, packets_per_flow=2,
                               window_ticks=64, seed=11, int_ratio=0.0)
        hosts = [f"h{i}" for i in range(16)]
        assert generate_flows(hosts, plain) == generate_flows(hosts, ratioed)

    def test_int_ratio_is_a_key_suffix(self):
        spec = WorkloadSpec("uniform", flows=8, packets_per_flow=1,
                            window_ticks=32, int_ratio=0.5)
        assert ",int=0.5" in spec.key
        plain = WorkloadSpec("uniform", flows=8, packets_per_flow=1,
                             window_ticks=32)
        assert ",int=" not in plain.key

    def test_bad_int_ratio_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("uniform", flows=8, packets_per_flow=1,
                         window_ticks=32, int_ratio=1.5)


class TestSweepAttribution:
    def test_receiver_attribution_equals_device_counters(self):
        """E19's core claim: the collector's receiver-side counts exactly
        match the in-fabric device counters, link by link."""
        report = run_sweep("leaf-spine", seed=3, max_links=2)
        assert report.int_enabled
        assert report.int_consistent()
        assert report.healthy()
        for link in report.links:
            assert link.int_reroutes == link.reroutes
            assert link.int_blackholes_off == link.blackholed_frr_off
            assert link.int_loss_curve_on == link.loss_curve_on

    def test_failed_link_named_by_receiver(self):
        report = run_sweep("leaf-spine", seed=3, max_links=1)
        (link,) = report.links
        if link.reroutes:
            a, b = link.link.split("~")
            device_a = a.rsplit(":", 1)[0]
            device_b = b.rsplit(":", 1)[0]
            assert "~".join(sorted((device_a, device_b))) \
                in link.int_failed_links

    def test_int_disabled_sweep_skips_attribution(self):
        report = run_sweep("leaf-spine", seed=3, max_links=1,
                           int_enabled=False)
        assert not report.int_enabled
        assert report.int_consistent()  # vacuously
        assert report.healthy()


@pytest.mark.telemetry
class TestProbeInt:
    def test_series_mirror_the_summary(self):
        report = _run()
        session = TelemetrySession("sim")
        probe_int(report, session)
        snap = session.registry.snapshot()
        summary = report.int_summary
        assert snap['int_packets_total{outcome="delivered"}'] == \
            summary["delivered"]
        assert snap['int_packets_total{outcome="packets"}'] == \
            summary["packets"]

    def test_series_are_parity_safe(self):
        sim, hw = TelemetrySession("sim"), TelemetrySession("hw")
        probe_int(_run(), sim)
        probe_int(_run(), hw)
        assert any(name.startswith("int_packets_total")
                   for name in sim.snapshot().parity)
        sim.snapshot().assert_parity(hw.snapshot())

    def test_plain_report_is_a_noop(self):
        session = TelemetrySession("sim")
        probe_int(_run(workload="uniform-small"), session)
        assert not session.registry.snapshot()


# ----------------------------------------------------------------------
# nf-mon int / nf-mon frr --max-loss
# ----------------------------------------------------------------------
class TestNfmonInt:
    def test_table_output_and_exit_code(self, capsys):
        assert nfmon_main(["int", "--topo", "leaf-spine"]) == 0
        out = capsys.readouterr().out
        assert "stamps" in out
        assert "reroutes match devices" in out
        assert "healthy: True" in out

    def test_json_output_parses_and_matches(self, capsys):
        assert nfmon_main(["int", "--topo", "leaf-spine",
                           "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["healthy"] is True
        assert data["int_reroutes_match"] is True
        assert data["int_blackholes_match"] is True

    def test_shards_do_not_change_the_fingerprint(self, capsys):
        assert nfmon_main(["int", "--seed", "4", "--format", "json"]) == 0
        one = json.loads(capsys.readouterr().out)
        assert nfmon_main(["int", "--seed", "4", "--shards", "2",
                           "--inline", "--format", "json"]) == 0
        two = json.loads(capsys.readouterr().out)
        assert one["fingerprint"] == two["fingerprint"]

    def test_unknown_topology_is_operator_error(self, capsys):
        assert nfmon_main(["int", "--topo", "nope"]) == 2
        assert "unknown fabric topology" in capsys.readouterr().err


class TestNfmonFrrMaxLoss:
    def test_generous_budget_passes(self, capsys):
        assert nfmon_main(["frr", "--topo", "leaf-spine", "--max-links", "1",
                           "--max-loss", "0.9"]) == 0
        assert "int attribution agrees" in capsys.readouterr().out

    def test_breached_budget_exits_nonzero(self, capsys):
        # FRR-on loss can never be negative, so a zero budget trips
        # whenever any rerouted packet is lost; pick a sweep with loss.
        code = nfmon_main(["frr", "--topo", "leaf-spine",
                           "--max-links", "2", "--max-loss", "-1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "loss guard breached" in captured.err
